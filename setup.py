"""Legacy setup shim.

The execution environment ships a setuptools without wheel/PEP-660
support, so installs go through this classic ``setup.py`` (use
``python setup.py develop`` for an offline editable install; plain
``pip install -e .`` needs the wheel package).  Package metadata lives
here; ``pyproject.toml`` carries tooling configuration (ruff) only, so
the two never conflict.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LBICA: A Load Balancer for I/O Cache Architectures (DATE 2019) — "
        "full trace-driven reproduction"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "lbica-experiments=repro.experiments.cli:main",
            "repro=repro.__main__:main",
        ]
    },
)
