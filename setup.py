"""Legacy setup shim.

The execution environment ships a setuptools without wheel/PEP-660
support, so editable installs go through this classic ``setup.py`` (all
metadata lives in ``pyproject.toml``; values are duplicated here only to
keep ``pip install -e .`` working offline).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LBICA: A Load Balancer for I/O Cache Architectures (DATE 2019) — "
        "full trace-driven reproduction"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "lbica-experiments=repro.experiments.cli:main",
            "repro=repro.__main__:main",
        ]
    },
)
