"""Discrete-event simulation engine.

This package provides the timing substrate every other subsystem runs on:

- :mod:`repro.sim.events` — the :class:`~repro.sim.events.Event` record and
  its deterministic ordering rules.
- :mod:`repro.sim.engine` — the :class:`~repro.sim.engine.Simulator` event
  loop (a binary-heap calendar queue).
- :mod:`repro.sim.rng` — named, seeded random streams so that every
  stochastic component (device jitter, workload arrivals, address patterns)
  is independently reproducible from one root seed.

Time is measured in **microseconds** (floats) throughout the project.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.rng import RngRegistry

__all__ = ["Simulator", "Event", "RngRegistry"]
