"""Event records for the discrete-event simulator.

An :class:`Event` couples a firing time with a callback.  Events compare by
``(time, seq)`` where ``seq`` is a monotonically increasing sequence number
assigned by the simulator; this makes the ordering of simultaneous events
deterministic (FIFO in scheduling order), which in turn makes whole
simulations bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Event"]


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`
    (or ``schedule_at``) rather than directly.  An event can be cancelled
    with :meth:`cancel`; cancelled events stay in the heap but are skipped
    when popped (lazy deletion), which keeps cancellation O(1).

    Attributes:
        time: Absolute simulation time (µs) at which the event fires.
        seq: Tie-breaking sequence number (scheduling order).
        fn: The callback to invoke.
        args: Positional arguments passed to ``fn``.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled)."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        # Exact equality is the intent here: only *bit-identical* times
        # defer to the scheduling sequence number, which is what makes
        # simultaneous-event ordering deterministic.
        if self.time != other.time:  # simlint: ignore[SL003] exact tie-break
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.3f}, seq={self.seq}, fn={name}, {state})"
