"""Bitwise replication of ``numpy.random.Generator`` scalar draws.

The arrival pre-generator (:mod:`repro.workloads.base`) wants to draw a
whole chunk of arrivals in one go, but the golden fingerprints pin the
*exact* scalar draw sequence of the open-loop path: ``rng.random()``,
``rng.integers(...)``, and ``rng.exponential(...)`` interleave in a
data-dependent order (the write-fraction draw decides which pattern
samples next), so no vectorized numpy call can reproduce the stream.

What *can* be batched is the raw entropy.  :class:`RawDraws` prefetches
blocks of 64-bit PCG64 output (``BitGenerator.random_raw``) and decodes
the same transformations numpy applies to them:

- ``random()`` — 53-bit mantissa fill: ``(word >> 11) * 2**-53``.
- ``integers(low, high)`` — Lemire rejection sampling; spans up to
  ``2**32`` consume buffered 32-bit half-words (low half first, high
  half carried), larger spans consume whole words.
- ``standard_exponential()`` / ``exponential(scale)`` — the 256-bucket
  ziggurat, with numpy's exact ``ke``/``we``/``fe`` tables embedded
  below and the ``log1p`` tail branch.

Because every decode is bit-for-bit the draw the ``Generator`` would
have made, a chunk can be *rolled back*: :meth:`RawDraws.park` rewinds
the real bit generator to any recorded draw position (state snapshot +
``advance`` + half-word carry restore), after which scalar draws
continue as if the pre-generation never happened.

Trust, but verify: :func:`replication_verified` cross-checks a scripted
mix of draws against a live ``Generator`` once per process and the
callers fall back to scalar draws if the installed numpy disagrees (a
different bit generator, changed ziggurat constants, a new bounded-
integer algorithm).  The check costs ~15 ms once and turns a silent
fingerprint divergence into a plain performance regression.
"""

from __future__ import annotations

import base64
import math
import struct
from typing import Any

__all__ = ["RawDraws", "replication_verified"]

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF
_SPAN32 = 1 << 32
_INV53 = 2.0**-53

#: numpy's ``ziggurat_exp_r`` — the rightmost ziggurat bucket edge.
_ZIG_R = 7.69711747013104972


def _u64_table(blob: str) -> tuple[int, ...]:
    return struct.unpack("<256Q", base64.b64decode(blob))


def _f64_table(blob: str) -> tuple[float, ...]:
    return struct.unpack("<256d", base64.b64decode(blob))


# The exponential-ziggurat tables (``ke_double`` / ``we_double`` /
# ``fe_double`` in numpy's ``distributions.c``), embedded as packed
# little-endian base64 so the decode path has no runtime dependency on
# numpy internals.  replication_verified() guards against drift.
_KE = _u64_table((
    "xpckJxRSHAAAAAAAAAAAAH4xnNdbfRMAEDw/jvVuGACusA4yt5saAHxEGfcn0RsAGmWIDx2V"
    "HAByOVwt/hsdALIYa9Vbfh0AcCwX3TTJHQDInazfCQQeADZ41HF7Mx4Aord8F4taHgBsBG8J"
    "QnseAD6uCK8Nlx4AnvBOsfWuHgBWZbQHvcMeAM6Zh/D21R4AiFZurhTmHgDQHDbKbvQeAKTU"
    "3XZLAR8AtpanE+MMHwB69/FpYxcfAHAlRQzyIB8AdKhRGa4pHwAyVbmPsTEfAAbBV1ESOR8A"
    "TGlu6+I/HwD6iNcyM0YfAA46Hb8QTB8AIjNcTIdRHwDA7MMJoVYfAJaZCdlmWx8AjNAQguBf"
    "HwByV0TdFGQfAHiWhfYJaB8A5gIrKsVrHwD05DI9S28fADrxkHGgch8A1glNl8h1HwDAXAQb"
    "x3gfAPQ/QRKfex8Aip8HRlN+HwA4EeI75oAfAGKRrT1agx8AErlWYLGFHwBiQrKJ7YcfAPp0"
    "k3UQih8ArDk9uhuMHwBK0EXMEI4fABY+AQLxjx8A4FiDlr2RHwDYr0esd5MfANpki08glR8A"
    "kjhjeLiWHwCSiJYMQZgfAIC6RuG6mR8AAH9pvCabHwB6cRtWhZwfAALYz1nXnR8AzqFhZx2f"
    "HwDANgkUWKAfADgzOuuHoR8A/MRrb62iHwCCBs4ayaMfAKJq7l/bpB8AfAlNquSlHwCCZ+Re"
    "5aYfAMQepdzdpx8AdKjmfM6oHwDuX86Tt6kfAFi4rXCZqh8AMoJYXnSrHwCEBXSjSKwfAOif"
    "v4IWrR8AwIJXO96tHwBsHfIIoK4fAH6wGCRcrx8AEnpbwhKwHwD034EWxLAfAPrxtlBwsR8A"
    "OpaynheyHwBKqN8rurIfABhOfyFYsx8ADL7JpvGzHwDWrAzhhrQfAPyTx/MXtR8Aqv3FAKW1"
    "HwBY/jcoLrYfAAoByYizth8AmAe1PzW3HwCofdxos7cfAAi61h4uuB8A9kcDe6W4HwB0D5qV"
    "GbkfAARyuoWKuR8AJm95Yfi5HwCG4u49Y7ofABbsQS/Luh8ARJG0SDC7HwDipK6ckrsfAJ4C"
    "yDzyux8AlCnSOU+8HwDUQOGjqbwfAJ6PVIoBvR8AnHLe+1a9HwBq1osGqr0fAEA/y7f6vR8A"
    "3mRzHEm+HwBeaclAlb4fACixhjDfvh8AdGHe9ia/HwDiioKebL8fAMQEqTGwvx8AsP0PuvG/"
    "HwCIRQJBMcAfALJUW89uwB8AJhSLbarAHwCKaZkj5MAfAGSKKfkbwR8AQhl99VHBHwBKD3cf"
    "hsEfALR0nn24wR8AQuogFunBHwDeBdXuF8IfAP6DPA1Fwh8Awk+GdnDCHwAOY5AvmsIfAEaA"
    "6TzCwh8AtMbSoujCHwDsIkFlDcMfAA6c3ocwwx8Axn4LDlLDHwD4Zt/6ccMfAIYoKlGQwx8A"
    "+pd0E63DHwBIMwFEyMMfAECrzOThwx8AqE2O9/nDHwBgULh9EMQfAGj9d3glxB8Axr+16DjE"
    "HwAqERXPSsQfAOhH9CtbxB8ABEVs/2nEHwCyAVBJd8QfALj7KwmDxB8A9n9FPo3EHwAa0pnn"
    "lcQfALAw3QOdxB8AMrR5kaLEHwD8B46OpsQfAIz76/ioxB8AnuoWzqnEHwA0+kELqcQfAKAo"
    "Tq2mxB8AdC7IsKLEHwDiLeYRncQfAPQthcyVxB8AwF4m3IzEHwB6I+w7gsQfAObeluZ1xB8A"
    "gn6B1mfEHwA2wJ0FWMQfACAucG1GxB8AmMsLBzPEHwAObg3LHcQfAPa7lrEGxB8AYstIsu3D"
    "HwA8WT7E0sMfALSRBd61wx8ATGGZ9ZbDHwCSRVoAdsMfAHCTBvNSwx8AGCiywS3DHwCIeL1f"
    "BsMfAGLyy7/cwh8Anp+507DCHwDw/I+MgsIfAGTxedpRwh8AntO2rB7CHwBWZ4zx6MEfADy7"
    "N5awwR8AEM3chnXBHwC21nSuN8EfABQku/b2wB8ApE0YSLPAHwDwr4uJbMAfAGTzkqAiwB8A"
    "uHIPcdW/HwCOSCndhL8fAArGL8Uwvx8Axgx3B9m+HwDafTKAfb4fABSmSwkevh8ACEQ1erq9"
    "HwAm+LmnUr0fABogxmPmvB8A5E0sfXW8HwCqt2O//7sfAKLmP/KEux8AjNGg2QS7HwCscBo1"
    "f7ofABi2kr/zuR8A/KvULmK5HwAWShczyrgfAFRbdnYruB8AXIlbnIW3HwCUVdVA2LYfAEJp"
    "2fcith8A4DdvTGW1HwDSab+/nrQfAEbnA8jOsx8APpxTz/SyHwBSKEQyELIfAASWWj4gsR8A"
    "wuFCMCSwHwCmecQxG68fAAThZ1cErh8Aci2/nd6sHwAKBkDmqKsfACj/mfNhqh8AomZvZQip"
    "HwA8jVCzmqcfABTy0SYXph8AAOqL1HukHwCUwMWTxqIfABTzffT0oB8ACr5rMwSfHwC8+Xkr"
    "8ZwfAMSrFUS4mh8AuC94W1WYHwB4P9Crw5UfAPLxzqn9kh8AHOSa2vyPHwD4hXOeuYwfAAaW"
    "R+wqiR8AjtsE+UWFHwCaAzbD/YAfACbpOXhCfB8AzCpYowB3HwAcJBoPIHEfACo1tzSCah8A"
    "ZuKoAABjHwDE40+QZlofAHIRzk5yUB8A2m9cZsdEHwCiWYqj5TYfAAo0UDQUJh8AFAR7BD4R"
    "HwDmy1f6rvYeAB4ViKGM0x4AsC0SHqaiHgB8JovHYVkeALALrCv23R0AwOjk2U3bHAA="
))
_WE = _f64_table((
    "wV2/lOxk0TwZQV2LnVhgPCtNW0my1mo8uo1bqTWTcTxzKkrl5iJ1PIB6wvuQUHg8zLd579E4"
    "ezyYvW232Ox9PDxcxknwO4A8cPbWJNtwgTwzJtqQApiCPMpuPf6Is4M8If4LxhXFhDzDSgKd"
    "+M2FPL0rp/BAz4Y8GdAX2s3JhzxvYNNUWb6IPNI3IlWArYk8A1JdvsiXijzEo93dpX2LPIk/"
    "jNd7X4w8NnzxTaI9jTxac/F4ZhiOPKpPX88M8I48CTJoXdLEjzxYdWrtdkuQPPyAm0dIs5A8"
    "r/VJh/MZkTyg30vrjH+RPOdJPukm5JE8Lv84ZdJHkjwLaCPhnqqSPEvaJqWaDJM8AoJt4tJt"
    "kzygYiHRU86TPEhncMooLpQ8Euc1X1yNlDyTC81r+OuUPE1veCkGSpU8/b64PY6nlTzPLt3H"
    "mASWPOBoDG0tYZY8RKn6YlO9ljy7kHl5ERmXPHN5ByNudJc8coF+fG/PlzyZ1f5TGyqYPOzh"
    "Ky93hJg8KsXQUIjemDxEov29UziZPDgTrULekZk8vwP/dSzrmTxKiBS+QkSaPGHSllMlnZo8"
    "ySTyRNj1mjybl0x5X06bPImPP7O+pps8mf5Zk/n+mzyf0nCaE1ecPNtawisQr5w8++bwjvIG"
    "nTyNa9jxvV6dPFeQQmp1tp08/jF89xsOnjxEEM+DtGWePGIb4uVBvZ48n5QC4sYUnzy1/lcr"
    "RmyfPKGpBGXCw5882TyaEZ8NoDxisQ32XTmgPPh2chwfZaA8cgBLu+OQoDw3AXEDrbygPGYv"
    "eiB86KA8FawXOVIUoTy+fXBvMEChPPt/d+EXbKE8liM9qQmYoTyDUj3dBsShPOLEqZAQ8KE8"
    "BQ6x0yccojwpo8KzTUiiPJ8Y0DuDdKI8qs2LdMmgojxdO6VkIc2iPCEXAxGM+aI8EXb7fAom"
    "ozyhG4qqnVKjPPAahZpGf6M8/O/PTAasozxtM43A3dijPMQJT/TNBaQ80GxG5tcypDynbHGU"
    "/F+kPMSDyPw8jaQ8pBhrHZq6pDzqRcv0FOikPPsA2YGuFaU8+LUsxGdDpTwnbzG8QXGlPPmc"
    "Tms9n6U8NZMR1FvNpTwmz1b6nfulPC4ac+MEKqY8jJtclpFYpjzu69MbRYemPN88jX4gtqY8"
    "CKZZyyTlpjz7qVARUxSnPBwE+mGsQ6c8MNF30TFzpzwKJLF25KKnPPcXfWvF0qc8d3LOzNUC"
    "qDwq5t+6FjOoPOcIYVmJY6g8VA+kzy6UqDyUYMxICMWoPBMV/vMW9qg84XOOBFwnqTyKgjWy"
    "2FipPPS7QDmOiqk8XQPH2n28qTxR6d3cqO6pPC1Z0IoQIao8kMZWNbZTqjwP89Aym4aqPHpl"
    "gd/Auao8/6zKnSjtqjy1i27W0yCrPEIlz/jDVKs8tk8ye/qIqzwQJgfbeL2rPIX9LZ1A8qs8"
    "LeBCTlMnrDykseqCslysPPsjI9hfkqw8bKWV81zIrDyAce2Dq/6sPK3yMEFNNa08/qMe7UNs"
    "rTwKpY1TkaOtPH810ko32608m1AmtDcTrjxSpBZ8lEuuPH8j9JpPhK48eHZKFWu9rjxokVv8"
    "6PauPH+8oG7LMK880F5RmBRrrzzl4e+zxqWvPNgJ3Qrk4K881BH5ejcOsDwbORHvNCywPKMk"
    "kp5rSrA82yYRz9xosDwPrTrPiYewPBnIM/dzprA8b5QAqZzFsDy3z+9QBeWwPM7vC2avBLE8"
    "ShWSapwksTwrOm/szUSxPMEExIVFZbE8nq5v3QSGsTwgeKKnDaexPFoqeKZhyLE8cDObqgLq"
    "sTyi9PCT8guyPFDlT1IzLrI8ujtA5sZQsjym2sdhr3OyPCtTQunulrI8UdtFtIe6sjxwLZYO"
    "fN6yPGVZJlnOArM80KcqC4EnszxlyTuzlkyzPFaojPgRcrM8Q1E0nPWXszyDi416RL6zPNDe"
    "rYwB5bM8re716S8MtDz4Qr3J0jO0PCzJG4XtW7Q8MpTTmIOEtDxMoV2nmK20PCexHHsw17Q8"
    "CJW5CE8BtTyyqqxx+Cu1PFqn+AYxV7U8YUQbTP2CtTwH4Tj6Ya+1PJ69iANk3LU8eRgIlwgK"
    "tjyULnskVTi2PDL0w2BPZ7Y87kiXSv2Wtjwee5ovZce2PAcl9LGN+LY8GNJczn0qtzzDcb3i"
    "PF23PPlxa7XSkLc803YUfUfFtzwSFG7po/q3PMO+wCzxMLg8QnNoBjlouDyrW2nOhaC4PJU2"
    "O4Li2bg8RHXz0loUuTwOKvw0+0+5PNgajfHQjLk86tkkOurKuTx48Uk+Vgq6PDtM6EMlS7o8"
    "6oatwmiNujzERdiCM9G6PAq2A8CZFrs8D+qRULFduzxe2nbSkaa7PHfvS95U8bs8p+DCQRY+"
    "vDz0yMhC9Iy8PH+p8uwP3rw8xTgna40xvTzsO+xvlIe9PJ/xTq9Q4L08YAkZbvI7vjzBg/Mq"
    "r5q+PErqUGfC/L48p/eRl25ivzzlxvZD/su/PC7sYrPiHMA87471ixFWwDxOpcvNwZHAPKBI"
    "XXgx0MA8ppJDA6gRwTwqRHVneFbBPNbCs7wDn8E8fPrJoLzrwTyfkVm2Kz3CPKWqSa71k8I8"
    "8BFEiuPwwjxe98wn7lTDPGG4yMdOwcM8YhPkZpc3xDzRUUfN17nEPPZzzzzYSsU80hNz4Xru"
    "xTxyv0ttZ6rGPC/G6tZQh8c8Ge3y5p+TyDyFe0gN3OnJPPxx2lGew8s8g7t+KdnJzjw="
))
_FE = _f64_table((
    "AAAAAAAA8D83EYjlRQXuP/H/gVCm0Ow/J3vrewDl6z8qf+YODyHrP+f6YqW6duo/m21VFZfe"
    "6T85qlXEMVTpPy/S03aj1Og/uMUGeOhd6D8mMSQtiu7nP37UCZtuhec/Y0upW7sh5z/GGIRJ"
    "w8LmPwZcT236Z+Y/Zq+nwe0Q5j91rExpPb3lP3OH2oKYbOU/mol4Fboe5T+v+FHBZtPkP2ng"
    "jvtqiuQ/JeGor5lD5D+Ai7Ery/7jPxTR4UTcu+M/2d0Ip6164z8YYw5FIzvjP17aReMj/eI/"
    "JE8ftpjA4j+9MhERbYXiP6NQjCKOS+I/yD6BuuoS4j+Je4cZc9vhPyU7HscYpeE/7m/Obc5v"
    "4T+cFjO8hzvhP43DHEo5COE/Kx4rgdjV4D8q0FSIW6TgP3077jG5c+A/SGXS6+hD4D8k82Cx"
    "4hTgP3ZFIf49zd8/+sW/ji1y3z9NQuvRhhjfP5Cdlks9wN4/UdN9NkVp3j/8N+F1kxPePwwh"
    "p4gdv90/eu25fdlr3T8LGn7pvRndP5LgQNzByNw/YPuD2dx43D+DpQ7QBircP7XurhI43Ns/"
    "iAuZUWmP2z9vgFSUk0PbP1/vKDSw+No/5fb91riu2j9AAaNqp2XaP/QhdSB2Hdo/kjdaaR/W"
    "2T+oewnynY/ZPxCBmp/sSdk/BF1UjAYF2T85XbcE58DYP4w/vISJfdg/OGFEtek62D9ZzrZp"
    "A/nXPx6Axp3St9c/43Jec1N31z/qjbAwgjfXP52eZD5b+NY/nOnkJdu51j+fDcaP/nvWP+Qn"
    "SELCPtY/dljvHyMC1j9s7jEmHsbVP++pOmywitU/56O9IddP1T/1id6NjxXVPx35Jg7X29Q/"
    "09qLFaui1D/vvoArCWrUP+JBGOvuMdQ/TqEwAlr60z+FsqswSMPTP+99sUe3jNM/3dD8KKVW"
    "0z81JDHGDyHTP3BCOSD169I/YiKuRlO30j8pdkVXKIPSP/12R31yT9I//34L8S8c0j/bCXv3"
    "XunRP1q8muH9ttE/ghkZDAuF0T/vkeLehFPRP7qfusxpItE/bKbZUrjx0D8zU4/4bsHQPxM+"
    "6U6MkdA/0pBd8A5i0D8sfHmA9TLQP2pHk6s+BNA/VJP/TNKrzz9+PpZc50/PP5vg6A+69M4/"
    "8kBZAEiazj+ngy/WjkDOPzlPIkiM580/uO7jGj6PzT/9MbQgojfNP5/Q9ji24Mw/AhjOT3iK"
    "zD/ur7ld5jTMPzVEOWf+38s/peRyfL6Lyz8+79y4JDjLPwtb60Iv5co/STzAS9ySyj+8XN8O"
    "KkHKPxLF5NEW8Mk/IxY+5KCfyT+hkuaexk/JP3m7JWSGAMk/1WJQn96xyD/5GozEzWPIP+bn"
    "lFBSFsg/rhuFyGrJxz/+Rp+5FX3HPzkoGrlRMcc/6oTuYx3mxj8o2qZed5vGP6zRMFVeUcY/"
    "MWqw+tAHxj+2wlQJzr7FP/V4LkJUdsU/SYwHbWIuxT/6tjxY9+bEP5YwmNgRoMQ/xswtybBZ"
    "xD+aajgL0xPEPwWp+IV3zsM/ydWUJp2Jwz+vDPrfQkXDP259vqpnAcM/NM8EhQq+wj9AmWBy"
    "KnvCP3jou3vGOMI/Zco9r932wT9m1jEgb7XBP3iu8OZ5dME/L3HJIP0zwT8gF+zv9/PAPy+2"
    "VHtptMA/vqW37lB1wD8Ef256rTbAP43qy6b88L8/FAQZZoV1vz88w4Ou8/q+P8y5jgRGgb4/"
    "+7ph9XoIvj+Yk60WkZC9P9dNkQaHGb0/V/2Aa1ujvD+vEC70DC68P48mcVeaubs/SGU1VAJG"
    "uz9lVGWxQ9O6P7c42T1dYbo/KPRG0E3wuT9wazNHFIC5P7l05YivELk/O1Nagx6iuD+6xDss"
    "YDS4P/Om14Bzx7c/HjwZhldbtz+2FoRIC/C2PyC2MNyNhbY/997KXN4btj8+u5Ht+7K1PzbQ"
    "WbnlSrU/KdmQ8prjtD9cmEPTGn20Pw6xJZ1kF7Q/np+bmXeysz8Y58YZU06zP9GNlHb26rI/"
    "cAXOEGGIsj+MnSxRkiayP0Cjb6iJxbE/klN1j0ZlsT9QylaHyAWxPzsbhxkPp7A/F8j11xlJ"
    "sD92lmm60NevPzToRJn0Hq8/5bIupZ5nrj8QWDFJzrGtP0p5HgOD/aw/6SEHZLxKrD+F2b4Q"
    "epmrP4SAasK76ao/OPEbR4E7qj9MfHuCyo6pP213gG6X46g/azk6HOg5qD+eCKu0vJGnP1Kv"
    "tnkV66Y/QaAmx/JFpj/K0sUTVaKlP+vFlvI8AKU/GWsmFKtfpD//GP9HoMCjP64UP34dI6M/"
    "DMBWySOHoj/UEvNftOyhP6GzGZ/QU6E/UdZ8DHq8oD/u+g1ZsiagP5CYr8f2JJ8/aHRReq7/"
    "nT8MGzNUkN2cP3BY+lChvps/m06S5uaimj9IKhMPZ4qZP2eZ7FModZg/lvyH2jFjlz93QKJy"
    "i1SWP1ECq6Y9SZU/vvCHzlFBlD+EXTEl0jyTPzI6ueHJO5I/X19yVEU+kT/wAh4JUkSQP87H"
    "id79m44/VyduFLm2jD8tyUJV+tiKP72nj2jqAok/9XSq5rY0hz/LFuQLk26FP2JvUcG4sIM/"
    "cXaz7Wn7gT/5118p8k6AP8VddPpRV30/NkiX1Okjej8gNuw3nwR3P/0i486X+nM/Q0BXaT0H"
    "cT8RS82Bs1hsP//+ofOI2GY/JKPhqGuUYT8lPgxUtStZP7n8jfcKsk8/SwufMhzDPT8="
))


class RawDraws:
    """Replays a PCG64 ``Generator``'s scalar draws from raw words.

    Args:
        bit_generator: The *live* ``numpy.random.PCG64`` behind the
            generator being replicated.  Prefetching advances it; call
            :meth:`park` when done to leave it exactly where the
            equivalent scalar draws would have.
        block: Words fetched per ``random_raw`` call.

    Attributes:
        words_used: 64-bit words consumed by decodes so far.
        has32: Whether a 32-bit half-word is buffered (numpy's
            ``has_uint32`` carry for bounded-integer draws).
        carry32: The buffered half-word.
    """

    __slots__ = ("_bg", "_buf", "_len", "_pos", "_block", "words_used", "has32", "carry32")

    def __init__(self, bit_generator: Any, block: int = 1024) -> None:
        state = bit_generator.state
        if state.get("bit_generator") != "PCG64":
            raise ValueError("RawDraws replicates PCG64 streams only")
        self._bg = bit_generator
        self._block = block
        self._buf: list[int] = []
        self._len = 0
        self._pos = 0
        self.words_used = 0
        # Seed the half-word buffer from the generator's own carry: a
        # prior scalar integers() draw may have left one behind.
        self.has32 = bool(state["has_uint32"])
        self.carry32 = int(state["uinteger"])

    # -- raw words ------------------------------------------------------
    def _next64(self) -> int:
        pos = self._pos
        if pos == self._len:
            buf = self._bg.random_raw(self._block).tolist()
            self._buf = buf
            self._len = len(buf)
            pos = 0
        self._pos = pos + 1
        self.words_used += 1
        word: int = self._buf[pos]
        return word

    def _next32(self) -> int:
        # numpy's bounded-integer path: the low half of a fresh word is
        # returned first, the high half is carried for the next call.
        if self.has32:
            self.has32 = False
            return self.carry32
        word = self._next64()
        self.has32 = True
        self.carry32 = word >> 32
        return word & _M32

    # -- Generator-equivalent draws ------------------------------------
    def random(self) -> float:
        """``Generator.random()``: one double in [0, 1)."""
        # _next64 inlined: this is the single hottest decode.
        pos = self._pos
        if pos == self._len:
            self._buf = self._bg.random_raw(self._block).tolist()
            self._len = len(self._buf)
            pos = 0
        self._pos = pos + 1
        self.words_used += 1
        return (self._buf[pos] >> 11) * _INV53

    def integers(self, low: int, high: int) -> int:
        """``Generator.integers(low, high)`` (default int64, high open)."""
        span = high - low
        if span == 1:  # numpy short-circuits without consuming entropy
            return low
        if span <= _SPAN32:
            # 32-bit Lemire with rejection (also taken for power-of-two
            # spans: numpy's masked path is reserved for other dtypes).
            m = self._next32() * span
            leftover = m & _M32
            if leftover < span:
                threshold = (_M32 - (span - 1)) % span
                while leftover < threshold:
                    m = self._next32() * span
                    leftover = m & _M32
            return low + (m >> 32)
        m = self._next64() * span
        leftover = m & _M64
        if leftover < span:
            threshold = (_M64 - (span - 1)) % span
            while leftover < threshold:
                m = self._next64() * span
                leftover = m & _M64
        return low + (m >> 64)

    def standard_exponential(self) -> float:
        """``Generator.standard_exponential()``: the ziggurat method."""
        ke = _KE
        we = _WE
        while True:
            # _next64 inlined (one draw per arrival gap).
            pos = self._pos
            if pos == self._len:
                self._buf = self._bg.random_raw(self._block).tolist()
                self._len = len(self._buf)
                pos = 0
            self._pos = pos + 1
            self.words_used += 1
            ri = self._buf[pos] >> 3
            idx = ri & 0xFF
            ri >>= 8
            x = ri * we[idx]
            if ri < ke[idx]:
                return x  # ~98.9% of draws exit here
            if idx == 0:
                return _ZIG_R - math.log1p(-self.random())
            if (_FE[idx - 1] - _FE[idx]) * self.random() + _FE[idx] < math.exp(-x):
                return x

    def exponential(self, scale: float) -> float:
        """``Generator.exponential(scale)``."""
        return scale * self.standard_exponential()

    # -- stream positioning --------------------------------------------
    def position(self) -> tuple[int, bool, int]:
        """The current decode position: ``(words_used, has32, carry32)``."""
        return (self.words_used, self.has32, self.carry32)

    @staticmethod
    def park(bit_generator: Any, base_state: dict[str, Any], position: tuple[int, bool, int]) -> None:
        """Place ``bit_generator`` exactly ``position`` draws past ``base_state``.

        ``base_state`` is the full state dict snapshot taken before the
        :class:`RawDraws` instance consumed any words.  After parking,
        scalar ``Generator`` draws continue bit-identically to a run
        that made every decoded draw the slow way — including the
        half-word carry of an odd bounded-integer draw.
        """
        words, has32, carry = position
        bit_generator.state = base_state
        if words:
            bit_generator.advance(words)
        state = bit_generator.state
        state["has_uint32"] = int(has32)
        state["uinteger"] = int(carry)
        bit_generator.state = state


# ----------------------------------------------------------------------
# Self-verification
# ----------------------------------------------------------------------
_verified: bool | None = None


def _run_verification() -> bool:
    import numpy as np

    spans = [2, 3, 7, 10, 97, 2990, 4096, 65536, 98304, (1 << 31) + 7, 1 << 32, (1 << 40) + 13]
    for seed in (0xC0FFEE, 20190325):
        ref = np.random.Generator(np.random.PCG64(seed))
        bg = np.random.PCG64(seed)
        base = bg.state
        raw = RawDraws(bg, block=64)
        # A draw mix shaped like the arrival loop: uniform doubles,
        # bounded integers (odd counts, to exercise the carry), and
        # exponentials, interleaved.
        for i in range(400):
            span = spans[i % len(spans)]
            if ref.random() != raw.random():
                return False
            if int(ref.integers(0, span)) != raw.integers(0, span):
                return False
            if float(ref.exponential(3.25)) != raw.exponential(3.25):
                return False
            if i % 7 == 0 and int(ref.integers(5, 5 + span)) != raw.integers(5, 5 + span):
                return False
        # Tail coverage for the ziggurat's rare branches (~1% of draws
        # take the wedge test, so a few thousand draws exercise it).
        for _ in range(4_000):
            if float(ref.standard_exponential()) != raw.standard_exponential():
                return False
        # Park round-trip: the parked generator must continue exactly
        # like the reference from here on.
        RawDraws.park(bg, base, raw.position())
        cont = np.random.Generator(bg)
        for span in spans:
            if float(cont.random()) != float(ref.random()):
                return False
            if int(cont.integers(0, span)) != int(ref.integers(0, span)):
                return False
            if float(cont.exponential(0.5)) != float(ref.exponential(0.5)):
                return False
    return True


def replication_verified() -> bool:
    """Whether this process's numpy reproduces :class:`RawDraws` exactly.

    Computed once and cached; on any mismatch (or any exception) the
    pre-generation callers stay on the scalar path.
    """
    global _verified
    if _verified is None:
        try:
            _verified = _run_verification()
        except Exception:  # pragma: no cover - defensive fallback
            _verified = False
    return _verified
