"""The discrete-event simulation loop.

The :class:`Simulator` is a classic calendar queue built on :mod:`heapq`.
Components schedule callbacks at absolute or relative times; the loop pops
them in ``(time, seq)`` order and advances the clock.  There is no implicit
concurrency — everything that happens "at the same time" is serialized in
scheduling order, which keeps runs deterministic.

Hot-path design notes (this loop executes once per simulated I/O event,
so its constant factors dominate whole-run wall clock):

- The heap stores ``(time, seq, fn, args, event)`` tuples, not
  :class:`Event` objects.  Tuple comparison happens in C; heap sifts
  never call back into Python (``Event.__lt__`` is kept only for API
  compatibility), and dispatch reads the callback out of the entry
  without touching the event object.
- Callbacks are plain ``fn(*args)`` invocations — schedule bound methods
  plus positional arguments rather than closures, so the per-event cost
  is one call with no cell-variable indirection and no per-event closure
  allocation.
- :meth:`schedule_sorted_at` batch-schedules pre-sorted arrival scripts
  (e.g. trace replay): on an empty calendar a sorted list *is* a valid
  heap, so the whole batch is appended in O(n) with no sift churn.
- :meth:`schedule_sorted_calls` is the arrival pre-generator's variant:
  the whole batch shares ONE cancellable :class:`Event`, so a chunk of
  pre-drawn arrivals costs one allocation and can be revoked wholesale
  (throttle rollback, tenant departure) with a single ``cancel()``.
- :meth:`schedule_calls` batch-inserts a dispatch round's completions;
  :meth:`run` drains runs of equal-timestamp entries without re-entering
  the loop header.  Neither changes observable order: entries still pop
  strictly by ``(time, seq)``, so fingerprints are bit-identical.

Example:
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
"""

from __future__ import annotations

import gc
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable

from repro.sim.events import Event

__all__ = ["Simulator", "SimulationError"]

#: One calendar entry: ``(time, seq, fn, args, event)``.
_HeapEntry = tuple[float, int, Callable[..., Any], "tuple[Any, ...]", Event]


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (e.g. scheduling into the past)."""


def _never_fires() -> None:  # pragma: no cover - sentinel, never dispatched
    raise AssertionError("the schedule_call sentinel event must never fire")


#: Shared sentinel referenced by :meth:`Simulator.schedule_call` entries.
#: It is never cancelled, so the run loop's ``event.cancelled`` check
#: stays branch-predictable and no per-call Event allocation is needed.
#: Only its ``cancelled`` flag is ever read — dispatch takes the callback
#: from the heap entry, never from the sentinel.
_NO_EVENT = Event(0.0, -1, _never_fires, ())


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes:
        now: Current simulation time in microseconds.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Calendar entries: ``(time, seq, fn, args, event)``.  Tuples
        #: compare in C on ``(time, seq)`` (seq is unique, so the
        #: callback fields are never compared), and the run loop invokes
        #: ``fn(*args)`` straight off the entry with no attribute loads.
        self._heap: list[_HeapEntry] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: When ``True``, :meth:`run` updates ``events_processed`` after
        #: every dispatch instead of batching the count in a local, so
        #: mid-run callbacks (the obs layer's interval snapshots) read
        #: exact live values.  Pop order is identical either way.
        self.live_counters: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now.

        Args:
            delay: Non-negative offset from the current time.
            fn: Callback to invoke.
            *args: Positional arguments for the callback.

        Returns:
            The scheduled :class:`Event` (may be cancelled later).

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} µs into the past")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, fn, args, event))
        return event

    def schedule_call(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` µs from now, non-cancellably.

        The allocation-free fast path for the dominant schedule→pop→run
        cycle: device completions, arrival chains, and periodic ticks are
        never cancelled, so they share one sentinel event instead of
        allocating a fresh :class:`Event` per call.  Use :meth:`schedule`
        when the caller needs a cancellation handle.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} µs into the past")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + delay, seq, fn, args, _NO_EVENT))

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` (µs).

        Raises:
            SimulationError: If ``time`` is before the current time.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, fn, args, event))
        return event

    def schedule_sorted_at(
        self, items: Iterable[tuple[float, Callable[..., Any], tuple[Any, ...]]]
    ) -> list[Event]:
        """Batch-schedule pre-sorted ``(time, fn, args)`` triples.

        The fast path for open-loop arrival scripts (trace replay,
        pre-computed schedules): when the calendar is empty, a
        time-sorted batch is appended directly — a sorted array satisfies
        the heap invariant — so the whole script costs O(n) instead of
        O(n log n) and causes no sift churn.  With events already
        pending, each item falls back to a normal ``heappush``.

        Args:
            items: ``(time, fn, args)`` triples in non-decreasing time
                order, all at or after the current clock.

        Returns:
            The scheduled events, in input order.

        Raises:
            SimulationError: If an item is before the current time or the
                batch is not sorted.  The batch is atomic: on error,
                nothing is scheduled and no sequence numbers are consumed.
        """
        seq = self._seq
        prev = self.now
        entries: list[_HeapEntry] = []
        events: list[Event] = []
        for time, fn, args in items:
            if time < prev:
                raise SimulationError(
                    f"batch not sorted or in the past at t={time} "
                    f"(previous t={prev}, now t={self.now})"
                )
            prev = time
            event = Event(time, seq, fn, args)
            entries.append((time, seq, fn, args, event))
            events.append(event)
            seq += 1
        # Commit only after the whole batch validated.
        self._seq = seq
        heap = self._heap
        if not heap:  # empty calendar: sorted extend keeps the invariant
            heap.extend(entries)
        else:
            for entry in entries:
                heappush(heap, entry)
        return events

    def schedule_sorted_calls(
        self, items: Iterable[tuple[float, Callable[..., Any], tuple[Any, ...]]]
    ) -> Event:
        """Batch-schedule pre-sorted triples behind one shared event.

        The arrival pre-generator's fast path: a chunk of pre-drawn
        arrivals is inserted in one call, and the single returned
        :class:`Event` controls the *whole batch* — cancelling it lazily
        deletes every entry still in the calendar (entries already
        dispatched are unaffected).  Entries consume consecutive
        sequence numbers in input order, exactly as the equivalent
        ``schedule_call`` loop would.

        Args:
            items: ``(time, fn, args)`` triples in non-decreasing time
                order, all at or after the current clock.

        Returns:
            The shared event.  Its ``time``/``fn`` fields describe the
            first entry; only its cancellation flag governs the batch.
            An empty batch returns an inert event.

        Raises:
            SimulationError: If an item is before the current time or
                the batch is not sorted.  The batch is atomic: on error
                nothing is scheduled and no sequence numbers are used.
        """
        seq = self._seq
        prev = self.now
        event: Event | None = None
        entries: list[_HeapEntry] = []
        for time, fn, args in items:
            if time < prev:
                raise SimulationError(
                    f"batch not sorted or in the past at t={time} "
                    f"(previous t={prev}, now t={self.now})"
                )
            prev = time
            if event is None:
                event = Event(time, seq, fn, args)
            entries.append((time, seq, fn, args, event))
            seq += 1
        if event is None:  # empty batch: nothing to schedule or cancel
            return Event(self.now, -1, _never_fires, ())
        self._seq = seq
        heap = self._heap
        if not heap:  # empty calendar: sorted extend keeps the invariant
            heap.extend(entries)
        elif len(entries) * 4 > len(heap):
            # Large batch vs. calendar: one O(n) heapify beats n
            # O(log n) sifts.  Pop order depends only on the (time, seq)
            # keys, not the heap's internal layout, so results are
            # unchanged.
            heap.extend(entries)
            heapify(heap)
        else:
            for entry in entries:
                heappush(heap, entry)
        return event

    def schedule_calls(
        self, items: Iterable[tuple[float, Callable[..., Any], tuple[Any, ...]]]
    ) -> None:
        """Batch-schedule ``(delay, fn, args)`` triples, non-cancellably.

        One dispatch round's completions enter the calendar in a single
        call: sequence numbers are assigned in input order (identical to
        the equivalent ``schedule_call`` loop), every entry shares the
        no-event sentinel, and the batch is atomic — a negative delay
        schedules nothing.

        Raises:
            SimulationError: If any delay is negative.
        """
        now = self.now
        seq = self._seq
        entries: list[_HeapEntry] = []
        for delay, fn, args in items:
            if delay < 0:
                raise SimulationError(f"cannot schedule {delay} µs into the past")
            entries.append((now + delay, seq, fn, args, _NO_EVENT))
            seq += 1
        self._seq = seq
        heap = self._heap
        for entry in entries:
            heappush(heap, entry)

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (lazy deletion; O(1))."""
        event.cancel()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Process events until the heap is empty or ``until`` is reached.

        Args:
            until: If given, stop once the next event would fire after this
                time, and fast-forward the clock to exactly ``until``.
        """
        if self.live_counters:
            self._run_live(until)
            return
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heappop
        # The dispatch loop allocates heavily (heap entries, device ops,
        # requests) and almost everything dies young by refcount alone;
        # generational collection passes during the loop are pure
        # overhead (~10% of wall time).  Pause the cyclic collector and
        # restore it on exit — the isenabled() guard makes nested runs
        # and gc-disabled callers behave correctly.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # The dispatch count accumulates in a local and is flushed in the
        # ``finally`` below (so exceptions and stop() still leave it
        # exact).  Every reader — fingerprints, reports, tests — consumes
        # it after run() returns; nothing in src nests run()/step().
        processed = self._events_processed
        try:
            if until is None:
                # Dominant dispatch cycle: pop, advance, call.  The
                # counter stays a live attribute so callbacks (and
                # nested step() calls) always see the true count.  After
                # each dispatch, entries tied at the same timestamp
                # (batched arrivals, completion bursts, simultaneous
                # ticks) drain in an inner run without re-entering the
                # outer header: the clock store and until-comparison are
                # skipped, while (time, seq) pop order — and therefore
                # every fingerprint — is untouched.  stop() is honored
                # between tied events exactly as between untied ones.
                while heap and not self._stopped:
                    time, _, fn, args, event = pop(heap)
                    if event.cancelled:
                        continue
                    self.now = time
                    processed += 1
                    fn(*args)
                    while heap and heap[0][0] == time and not self._stopped:  # simlint: ignore[SL003] exact ties only: the drain must not absorb nearby timestamps
                        _, _, fn, args, event = pop(heap)
                        if event.cancelled:
                            continue
                        processed += 1
                        fn(*args)
            else:
                while heap and not self._stopped:
                    time = heap[0][0]
                    if time > until:
                        break
                    _, _, fn, args, event = pop(heap)
                    if event.cancelled:
                        continue
                    self.now = time
                    processed += 1
                    fn(*args)
                    # Tied entries cannot exceed `until`: they fire at
                    # the already-admitted timestamp.
                    while heap and heap[0][0] == time and not self._stopped:  # simlint: ignore[SL003] exact ties only: the drain must not absorb nearby timestamps
                        _, _, fn, args, event = pop(heap)
                        if event.cancelled:
                            continue
                        processed += 1
                        fn(*args)
        finally:
            self._events_processed = processed
            self._running = False
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def _run_live(self, until: float | None) -> None:
        """The :meth:`run` loop with per-event counter updates.

        Taken when :attr:`live_counters` is set (the obs layer needs
        mid-run ``events_processed`` reads from interval callbacks).
        Pop order, cancellation handling, the GC pause, and the
        ``until`` fast-forward match :meth:`run` exactly — the same
        event sequence executes, so fingerprints are identical; only
        the counter bookkeeping differs (a live attribute store per
        dispatch instead of one flush on return).
        """
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heappop
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap and not self._stopped:
                time = heap[0][0]
                if until is not None and time > until:
                    break
                _, _, fn, args, event = pop(heap)
                if event.cancelled:
                    continue
                self.now = time
                self._events_processed += 1
                fn(*args)
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event.

        Mirrors :meth:`run`'s bookkeeping: a prior :meth:`stop` request is
        cleared (as ``run`` does on entry), ``_running`` is held while the
        callback executes, and cancelled events are skipped without
        counting.

        Returns:
            ``True`` if an event was processed, ``False`` if the heap is
            empty.
        """
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            while heap:
                time, _, fn, args, event = heappop(heap)
                if event.cancelled:
                    continue
                self.now = time
                self._events_processed += 1
                fn(*args)
                return True
            return False
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the loop is currently executing an event."""
        return self._running

    @property
    def stop_requested(self) -> bool:
        """Whether a :meth:`stop` request is pending (cleared on run/step)."""
        return self._stopped

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def peek_time(self) -> float | None:
        """Firing time of the next active event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][4].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.1f}µs, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
