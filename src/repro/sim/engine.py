"""The discrete-event simulation loop.

The :class:`Simulator` is a classic calendar queue built on :mod:`heapq`.
Components schedule callbacks at absolute or relative times; the loop pops
them in ``(time, seq)`` order and advances the clock.  There is no implicit
concurrency — everything that happens "at the same time" is serialized in
scheduling order, which keeps runs deterministic.

Example:
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import Event

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (e.g. scheduling into the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes:
        now: Current simulation time in microseconds.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now.

        Args:
            delay: Non-negative offset from the current time.
            fn: Callback to invoke.
            *args: Positional arguments for the callback.

        Returns:
            The scheduled :class:`Event` (may be cancelled later).

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} µs into the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` (µs).

        Raises:
            SimulationError: If ``time`` is before the current time.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self.now})"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (lazy deletion; O(1))."""
        event.cancel()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Process events until the heap is empty or ``until`` is reached.

        Args:
            until: If given, stop once the next event would fire after this
                time, and fast-forward the clock to exactly ``until``.
        """
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            while heap and not self._stopped:
                event = heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                if event.cancelled:
                    continue
                self.now = event.time
                self._events_processed += 1
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event.

        Returns:
            ``True`` if an event was processed, ``False`` if the heap is
            empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def peek_time(self) -> float | None:
        """Firing time of the next active event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.1f}µs, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
