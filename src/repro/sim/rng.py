"""Named, reproducible random streams.

Every stochastic component in the simulator (SSD jitter, HDD seek
distribution, workload arrival process, address pattern, ...) pulls its own
:class:`numpy.random.Generator` from an :class:`RngRegistry`.  Streams are
derived from one root seed plus a stable per-name key, so:

- the whole system is reproducible from a single integer seed, and
- adding or removing one component does not perturb the random sequence
  seen by any other component (unlike sharing one generator).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "stable_key"]


def stable_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key.

    Uses CRC-32, which is stable across Python processes and versions
    (unlike the built-in ``hash``).
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RngRegistry:
    """A factory of independent, named random generators.

    Example:
        >>> rngs = RngRegistry(seed=42)
        >>> a = rngs.stream("ssd.jitter")
        >>> b = rngs.stream("workload.arrivals")
        >>> a is rngs.stream("ssd.jitter")   # streams are cached
        True
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(stable_key(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Derive a new registry (e.g. per experiment repetition)."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) % (2**63))

    @property
    def stream_names(self) -> list[str]:
        """Names of streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
