"""Terminal plotting: multi-series line charts and grouped bar charts.

matplotlib is not available in this environment, so the experiment
harness renders each paper figure as an ASCII chart (plus a CSV file for
external plotting).  Charts are intentionally simple: a fixed-size
character grid, one glyph per series, a left axis with the value range,
and a legend.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_chart", "ascii_bar_chart"]

_GLYPHS = "*+o#x@%&"


def _scale(value: float, vmin: float, vmax: float, height: int) -> int:
    if vmax <= vmin:
        return 0
    frac = (value - vmin) / (vmax - vmin)
    return min(int(frac * (height - 1) + 0.5), height - 1)


def ascii_line_chart(
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 100,
    height: int = 18,
    y_label: str = "",
) -> str:
    """Render aligned series as a multi-line ASCII chart.

    Args:
        series: Mapping of legend name to values (x = index).
        title: Chart title line.
        width: Plot width in columns (series are resampled to fit).
        height: Plot height in rows.
        y_label: Unit label for the y axis.

    Returns:
        The chart as a multi-line string.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    all_vals = [v for vals in series.values() for v in vals]
    if not all_vals:
        raise ValueError("series are empty")
    vmin = 0.0
    vmax = max(all_vals)
    if vmax <= vmin:
        vmax = vmin + 1.0
    n = max(len(vals) for vals in series.values())
    grid = [[" "] * width for _ in range(height)]

    for si, (name, vals) in enumerate(series.items()):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        if not vals:
            continue
        for col in range(width):
            # resample: take the max over the bucket (preserves spikes)
            lo = int(col * n / width)
            hi = max(int((col + 1) * n / width), lo + 1)
            bucket = [vals[i] for i in range(lo, min(hi, len(vals)))]
            if not bucket:
                continue
            row = _scale(max(bucket), vmin, vmax, height)
            grid[height - 1 - row][col] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    label_w = 12
    for ri, row in enumerate(grid):
        if ri == 0:
            label = f"{vmax:>10.1f} |"
        elif ri == height - 1:
            label = f"{vmin:>10.1f} |"
        else:
            label = " " * 11 + "|"
        lines.append(label.rjust(label_w) + "".join(row))
    lines.append(" " * (label_w - 1) + "+" + "-" * width)
    axis = " " * label_w + f"0{' ' * (width - len(str(n)) - 1)}{n}"
    lines.append(axis)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_w + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def ascii_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 60,
    y_label: str = "",
) -> str:
    """Render grouped bars (Fig. 7 style: workload × scheme).

    Args:
        groups: ``{group: {bar: value}}`` — e.g.
            ``{"TPCC": {"WB": 310, "SIB": 280, "LBICA": 245}}``.
        title: Chart title line.
        width: Maximum bar length in characters.
        y_label: Unit label appended to values.

    Returns:
        The chart as a multi-line string.
    """
    if not groups:
        raise ValueError("no groups to plot")
    vmax = max((v for bars in groups.values() for v in bars.values()), default=0.0)
    if vmax <= 0:
        vmax = 1.0
    name_w = max(
        (len(f"{g} {b}") for g, bars in groups.items() for b in bars), default=8
    )
    lines: list[str] = []
    if title:
        lines.append(title)
    for group, bars in groups.items():
        for bar, value in bars.items():
            length = int(value / vmax * width + 0.5)
            label = f"{group} {bar}".ljust(name_w)
            lines.append(
                f"{label} | {'#' * length} {value:.1f}{y_label}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
