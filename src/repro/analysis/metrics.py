"""Latency and load metrics.

The paper reports three kinds of numbers; each has a helper here:

- per-interval **max latency** curves (Figures 4–6) — computed by the
  iostat substrate, summarized by :func:`series_stats` over windows;
- **average latency** bars (Fig. 7) — :func:`latency_summary`;
- **load reduction** percentages ("LBICA reduces the load on the I/O
  cache by 48%") — :func:`load_reduction`, the relative drop in mean
  cache queue time over a set of intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "LatencySummary",
    "latency_summary",
    "percentile",
    "load_reduction",
    "mean_over_intervals",
    "DetectionQuality",
    "detection_quality",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``values``.

    An empty population has **no** percentiles, so the result is ``nan``
    — explicitly, so a caller averaging or comparing it fails loudly
    instead of treating "no data" as "zero latency" (the old behavior,
    which made empty populations look infinitely fast in reports).

    Example:
        >>> percentile([1.0, 2.0, 3.0], 50)
        2.0
        >>> percentile([], 50)
        nan
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(values) == 0:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency population (µs)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for CSV/report writers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: object) -> "LatencySummary":
        """Strict inverse of :meth:`as_dict` (exact round-trip).

        The run store rehydrates persisted summaries through this, so
        the contract is strict: the mapping must carry exactly the
        :meth:`as_dict` keys, ``count`` must be an int, and every other
        field a real number — ``LatencySummary.from_dict(s.as_dict())
        == s`` holds bit-for-bit, including through a JSON round-trip.

        Raises:
            ValueError: On missing/unknown keys or wrong-typed values.
        """
        expected = {"count", "mean", "p50", "p95", "p99", "max"}
        if not isinstance(data, dict):
            raise ValueError(
                f"latency summary: expected a mapping, got {type(data).__name__}"
            )
        if set(data) != expected:
            missing = sorted(expected - set(data))
            unknown = sorted(set(data) - expected)
            raise ValueError(
                f"latency summary: missing keys {missing}, unknown keys {unknown}"
            )
        count = data["count"]
        if isinstance(count, bool) or not isinstance(count, int) or count < 0:
            raise ValueError(
                f"latency summary: count must be a non-negative int, got {count!r}"
            )
        floats = {}
        for field in ("mean", "p50", "p95", "p99", "max"):
            value = data[field]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"latency summary: {field} must be a number, got {value!r}"
                )
            floats[field] = float(value)
        return cls(
            count=count,
            mean=floats["mean"],
            p50=floats["p50"],
            p95=floats["p95"],
            p99=floats["p99"],
            maximum=floats["max"],
        )


def latency_summary(latencies: Iterable[float]) -> LatencySummary:
    """Summarize a latency population (all zeros when empty)."""
    arr = np.asarray(list(latencies), dtype=np.float64)
    if arr.size == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def mean_over_intervals(
    values: Sequence[float], intervals: Sequence[int] | None = None
) -> float:
    """Mean of ``values`` restricted to ``intervals`` (all when ``None``).

    Raises:
        IndexError: If any interval index is out of range (including
            negative indices — no wrap-around).  Out-of-range indices
            used to be dropped silently, which let figure code average
            the wrong window without noticing; a mismatch between a
            burst-interval list and a series length is a bug upstream.
    """
    if intervals is None:
        subset = list(values)
    else:
        bad = [i for i in intervals if not 0 <= i < len(values)]
        if bad:
            raise IndexError(
                f"interval indices {bad} out of range for a series of "
                f"length {len(values)}"
            )
        subset = [values[i] for i in intervals]
    if not subset:
        return 0.0
    return float(np.mean(subset))


@dataclass(frozen=True)
class DetectionQuality:
    """Precision/recall of burst detection against scripted windows.

    A detection is a true positive when it falls inside (or within
    ``slack`` intervals after) a scripted burst window — the detector
    necessarily lags the burst onset by the time the queue takes to
    build.
    """

    true_positives: int
    false_positives: int
    detected_windows: int
    scripted_windows: int

    @property
    def precision(self) -> float:
        """Fraction of detections that were real bursts (1.0 when none)."""
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 1.0

    @property
    def recall(self) -> float:
        """Fraction of scripted burst windows that were detected."""
        if self.scripted_windows == 0:
            return 1.0
        return self.detected_windows / self.scripted_windows


def detection_quality(
    detected: Sequence[int],
    scripted: Sequence[int],
    slack: int = 10,
) -> DetectionQuality:
    """Score detected burst intervals against scripted burst intervals.

    Args:
        detected: Interval indices the detector flagged.
        scripted: Interval indices covered by scripted burst phases.
        slack: Detections up to this many intervals after a scripted
            window still count (queue drain keeps Eq. 1 elevated briefly).
    """
    if slack < 0:
        raise ValueError("slack must be non-negative")
    scripted_set = set(scripted)
    extended = set(scripted)
    for idx in scripted:
        extended.update(range(idx, idx + slack + 1))

    tp = sum(1 for d in detected if d in extended)
    fp = len(detected) - tp

    # group scripted intervals into contiguous windows and check coverage
    windows: list[tuple[int, int]] = []
    for idx in sorted(scripted_set):
        if windows and idx == windows[-1][1] + 1:
            windows[-1] = (windows[-1][0], idx)
        else:
            windows.append((idx, idx))
    detected_set = set(detected)
    covered = sum(
        1
        for lo, hi in windows
        if any(d in detected_set for d in range(lo, hi + slack + 1))
    )
    return DetectionQuality(
        true_positives=tp,
        false_positives=fp,
        detected_windows=covered,
        scripted_windows=len(windows),
    )


def load_reduction(
    baseline: Sequence[float],
    treated: Sequence[float],
    intervals: Sequence[int] | None = None,
) -> float:
    """Relative load reduction of ``treated`` vs ``baseline`` (fraction).

    ``0.48`` means the treated scheme carries 48% less load — the form of
    the paper's headline claims.  Restricted to ``intervals`` when given
    (the paper reports reductions over burst intervals).  Returns 0.0
    when the baseline carries no load.

    Example:
        >>> load_reduction([100.0, 200.0], [50.0, 100.0])
        0.5
        >>> load_reduction([100.0, 200.0], [50.0, 100.0], intervals=[1])
        0.5
        >>> load_reduction([0.0, 0.0], [10.0, 10.0])
        0.0
    """
    base = mean_over_intervals(baseline, intervals)
    treat = mean_over_intervals(treated, intervals)
    if base <= 0.0:
        return 0.0
    return (base - treat) / base
