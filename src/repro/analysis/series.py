"""Per-interval series extracted from iostat samples.

An :class:`IntervalSeries` is the data behind one curve of Figures 4–6:
a named sequence of per-interval values (cache queue time, disk queue
time, average latency, ...).  Series support CSV export and simple
smoothing for display.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.trace.iostat import IntervalSample

__all__ = ["IntervalSeries", "series_from_samples", "write_series_csv"]

#: Fields of IntervalSample that can be lifted into a series.
_EXTRACTABLE = (
    "cache_qtime",
    "disk_qtime",
    "ssd_qsize_max",
    "ssd_qsize_avg",
    "hdd_qsize_max",
    "hdd_qsize_avg",
    "avg_latency",
    "max_latency",
    "completed",
    "bypassed",
    "ssd_util",
    "hdd_util",
)


@dataclass
class IntervalSeries:
    """One named per-interval curve."""

    name: str
    values: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: int) -> float:
        return self.values[idx]

    @property
    def mean(self) -> float:
        """Mean over all intervals (0.0 when empty)."""
        return float(np.mean(self.values)) if self.values else 0.0

    @property
    def maximum(self) -> float:
        """Max over all intervals (0.0 when empty)."""
        return float(np.max(self.values)) if self.values else 0.0

    def smoothed(self, window: int = 5) -> "IntervalSeries":
        """Centered moving average (window clipped to the series length)."""
        if window <= 1 or not self.values:
            return IntervalSeries(self.name, list(self.values))
        window = min(window, len(self.values))
        kernel = np.ones(window) / window
        sm = np.convolve(np.asarray(self.values, dtype=np.float64), kernel, "same")
        return IntervalSeries(f"{self.name}~{window}", [float(v) for v in sm])

    def restricted(self, intervals: Sequence[int]) -> "IntervalSeries":
        """The subseries at the given interval indices (in-range only)."""
        vals = [self.values[i] for i in intervals if 0 <= i < len(self.values)]
        return IntervalSeries(f"{self.name}[subset]", vals)


def series_from_samples(
    samples: Sequence[IntervalSample], fieldname: str, name: str | None = None
) -> IntervalSeries:
    """Lift one field of the iostat samples into a series.

    Raises:
        ValueError: If ``fieldname`` is not an extractable sample field.
    """
    if fieldname not in _EXTRACTABLE:
        raise ValueError(
            f"unknown field {fieldname!r}; choose from {_EXTRACTABLE}"
        )
    values = [float(getattr(s, fieldname)) for s in samples]
    return IntervalSeries(name or fieldname, values)


def write_series_csv(path: str | Path, series: Sequence[IntervalSeries]) -> None:
    """Write aligned series as CSV (``interval, <name1>, <name2>, ...``).

    Shorter series are padded with empty cells.
    """
    series = list(series)
    if not series:
        raise ValueError("no series to write")
    n = max(len(s) for s in series)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["interval"] + [s.name for s in series])
        for i in range(n):
            row: list[object] = [i]
            for s in series:
                row.append(f"{s.values[i]:.3f}" if i < len(s) else "")
            writer.writerow(row)
