"""Analysis utilities: metrics, interval series, reports, ASCII plots.

- :mod:`repro.analysis.metrics` — latency statistics (mean / percentile /
  max) and the load-reduction computations behind the paper's headline
  percentages.
- :mod:`repro.analysis.series` — :class:`~repro.analysis.series.IntervalSeries`
  containers extracted from iostat samples (the per-interval curves of
  Figures 4–6) with CSV export.
- :mod:`repro.analysis.report` — fixed-width comparison tables and
  paper-vs-measured rows for EXPERIMENTS.md.
- :mod:`repro.analysis.ascii_plot` — terminal line and bar charts (the
  environment has no matplotlib; figures render as ASCII + CSV).
"""

from repro.analysis.ascii_plot import ascii_bar_chart, ascii_line_chart
from repro.analysis.metrics import (
    LatencySummary,
    latency_summary,
    load_reduction,
    percentile,
)
from repro.analysis.report import comparison_table, format_table
from repro.analysis.series import IntervalSeries, series_from_samples

__all__ = [
    "LatencySummary",
    "latency_summary",
    "percentile",
    "load_reduction",
    "IntervalSeries",
    "series_from_samples",
    "comparison_table",
    "format_table",
    "ascii_line_chart",
    "ascii_bar_chart",
]
