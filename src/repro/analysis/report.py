"""Fixed-width tables and paper-vs-measured comparison rows."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "comparison_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width text table.

    Cells are stringified; floats get 3 decimals.  Column widths adapt to
    the content.
    """
    if not headers:
        raise ValueError("headers required")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def comparison_table(
    rows: Mapping[str, tuple[str, str, str]],
    title: str = "paper vs. measured",
    labels: Sequence[str] = ("paper", "measured"),
) -> str:
    """Render ``{metric: (left_value, right_value, verdict)}`` rows.

    The EXPERIMENTS.md generator uses this for every figure's
    shape-comparison summary (with the default ``paper``/``measured``
    labels); the campaign differ relabels the sides ``A``/``B``.
    """
    if len(labels) != 2:
        raise ValueError("labels must name exactly the two compared sides")
    return format_table(
        ["metric", *labels, "verdict"],
        [(metric, *vals) for metric, vals in rows.items()],
        title=title,
    )
