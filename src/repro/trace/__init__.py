"""Monitoring + replay substrate: capture tools and streaming trace IO.

The package has two halves.  The **capture half** rebuilds the kernel
tools LBICA observes the system through:

- :mod:`repro.trace.iostat` — :class:`~repro.trace.iostat.IostatMonitor`
  samples per-interval queue depths and service-time estimates and
  computes Eq. 1 queue times; its interval records are the data behind
  Figures 4–6.
- :mod:`repro.trace.blktrace` — :class:`~repro.trace.blktrace.BlkTracer`
  logs per-op queue/issue/complete transitions (blktrace's Q/D/C) and can
  report the R/W/P/E composition of a device queue, which is LBICA's
  workload-characterization input.

The **replay half** turns trace files — captured here or taken from
public corpora — back into simulated load, streaming end to end:

- :mod:`repro.trace.records` — the canonical
  :class:`~repro.trace.records.TraceRecord` every format parses into.
- :mod:`repro.trace.parser` — :func:`~repro.trace.parser.iter_trace`
  (lazy, constant-memory) plus the list-returning ``load_trace`` /
  ``save_trace`` convenience layer.
- :mod:`repro.trace.adapters` — the format registry (native text,
  blkparse output, MSR-Cambridge CSV) behind the parser's ``adapter=``
  argument.
- :mod:`repro.trace.operators` — composable generator transforms
  (``time_compress``, ``rate_multiply``, ``slice``, ``lba_shift``,
  ``interleave``) for reshaping streams before replay.
- :mod:`repro.trace.synth` — deterministic synthetic streams for
  benchmarks that need millions of records without a file.

:mod:`repro.workloads.replay` consumes these streams chunk by chunk;
``docs/TRACES.md`` is the user-facing guide.
"""

from repro.trace.blktrace import BlkTracer
from repro.trace.iostat import IntervalSample, IostatMonitor
from repro.trace.parser import (
    TraceParseError,
    iter_trace,
    load_trace,
    save_trace,
)
from repro.trace.records import TraceRecord

__all__ = [
    "BlkTracer",
    "IostatMonitor",
    "IntervalSample",
    "TraceRecord",
    "iter_trace",
    "load_trace",
    "save_trace",
    "TraceParseError",
]
