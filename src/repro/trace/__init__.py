"""Monitoring substrate: the paper's iostat and blktrace stand-ins.

LBICA observes the system exclusively through two kernel tools, and this
package rebuilds both for the simulated stack:

- :mod:`repro.trace.iostat` — :class:`~repro.trace.iostat.IostatMonitor`
  samples per-interval queue depths and service-time estimates and
  computes Eq. 1 queue times; its interval records are the data behind
  Figures 4–6.
- :mod:`repro.trace.blktrace` — :class:`~repro.trace.blktrace.BlkTracer`
  logs per-op queue/issue/complete transitions (blktrace's Q/D/C) and can
  report the R/W/P/E composition of a device queue, which is LBICA's
  workload-characterization input.
- :mod:`repro.trace.parser` — a text trace format (blkparse-like) with a
  writer and parser, so captured runs can be replayed through
  :mod:`repro.workloads.replay`.
"""

from repro.trace.blktrace import BlkTracer
from repro.trace.iostat import IntervalSample, IostatMonitor
from repro.trace.parser import TraceParseError, load_trace, save_trace
from repro.trace.records import TraceRecord

__all__ = [
    "BlkTracer",
    "IostatMonitor",
    "IntervalSample",
    "TraceRecord",
    "load_trace",
    "save_trace",
    "TraceParseError",
]
