"""The iostat stand-in: interval statistics and Eq. 1 queue times.

The paper's bottleneck detector runs on iostat output: per-interval queue
sizes and service times for the SSD cache and the HDD disk subsystem,
combined as

    ``cache_Qtime = ssdQSize × ssdLatency``
    ``disk_Qtime  = hddQSize × hddLatency``     (Eq. 1)

:class:`IostatMonitor` samples both devices every ``interval_us`` and
emits an :class:`IntervalSample` carrying queue depths (max and
time-weighted average over the window, matching how the paper reports
"maximum latency" per 10-minute interval), latency estimates, Eq. 1 queue
times, and completed-request latency statistics for that interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.devices.base import StorageDevice
from repro.io.request import Request

__all__ = ["IostatMonitor", "IntervalSample", "eq1_queue_time"]


def eq1_queue_time(qsize: float, latency_us: float) -> float:
    """Eq. 1: maximum queue time = queue size × device latency (µs)."""
    if qsize < 0 or latency_us < 0:
        raise ValueError("queue size and latency must be non-negative")
    return qsize * latency_us


@dataclass
class IntervalSample:
    """Statistics for one monitoring interval.

    Attributes mirror what iostat would report plus the paper's derived
    Eq. 1 values.  ``cache_qtime``/``disk_qtime`` use the *max* queue
    depth observed in the window — the paper plots "I/O load (max
    latency)" per interval.
    """

    index: int
    t_start: float
    t_end: float
    ssd_qsize_max: int
    ssd_qsize_avg: float
    hdd_qsize_max: int
    hdd_qsize_avg: float
    ssd_latency: float
    hdd_latency: float
    cache_qtime: float
    disk_qtime: float
    completed: int
    reads: int
    writes: int
    bypassed: int
    avg_latency: float
    max_latency: float
    #: Busy fraction of the interval per device (iostat's %util; can
    #: exceed 1.0 on devices with internal parallelism).
    ssd_util: float = 0.0
    hdd_util: float = 0.0
    #: Per-tenant completions and mean latency within this interval
    #: (keyed by ``Request.tenant_id``; single-tenant runs use key 0).
    tenant_completed: dict[int, int] = field(default_factory=dict)
    tenant_avg_latency: dict[int, float] = field(default_factory=dict)

    @property
    def bottleneck_is_cache(self) -> bool:
        """Whether the cache was the bottleneck this interval (Eq. 1)."""
        return self.cache_qtime > self.disk_qtime


@dataclass(slots=True)
class _WindowAccum:
    """Per-interval request accumulator."""

    completed: int = 0
    reads: int = 0
    writes: int = 0
    bypassed: int = 0
    total_latency: float = 0.0
    max_latency: float = 0.0
    tenant_completed: dict[int, int] = field(default_factory=dict)
    tenant_latency: dict[int, float] = field(default_factory=dict)

    def record(self, request: Request) -> None:
        self.completed += 1
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
        if request.bypassed:
            self.bypassed += 1
        lat = request.complete_time - request.arrival
        self.total_latency += lat
        if lat > self.max_latency:
            self.max_latency = lat
        tid = request.tenant_id
        self.tenant_completed[tid] = self.tenant_completed.get(tid, 0) + 1
        self.tenant_latency[tid] = self.tenant_latency.get(tid, 0.0) + lat


class IostatMonitor:
    """Samples both devices every interval and logs :class:`IntervalSample`.

    Args:
        sim: The simulator.
        ssd: Cache-tier device.
        hdd: Disk-subsystem device.
        interval_us: Sampling period (the paper uses 10-minute wall-clock
            intervals; simulation presets scale this down).
        on_sample: Optional callback invoked with each new sample (LBICA
            and SIB subscribe here in some configurations).
    """

    def __init__(
        self,
        sim,
        ssd: StorageDevice,
        hdd: StorageDevice,
        interval_us: float,
        on_sample: Optional[Callable[[IntervalSample], None]] = None,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self.sim = sim
        self.ssd = ssd
        self.hdd = hdd
        self.interval_us = interval_us
        self.samples: list[IntervalSample] = []
        self._on_sample = on_sample
        # One persistent accumulator, reset in place each tick; the
        # completion hook is its bound ``record`` so the per-request hot
        # path pays no forwarding frame.
        self._accum = _WindowAccum()
        #: Feed a completed application request into the current window
        #: (wire this as a cache-controller completion hook).
        self.record_completion: Callable[[Request], None] = self._accum.record
        self._prev_busy = (0.0, 0.0)
        self._started = False
        # Extra per-sample observers (the obs layer's snapshot rides
        # here) — empty by default, so a telemetry-free run pays one
        # falsy check per interval, never per event.
        self._sample_hooks: list[Callable[[IntervalSample], None]] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._started:
            return
        self._started = True
        now = self.sim.now
        self.ssd.queue.reset_window(now)
        self.hdd.queue.reset_window(now)
        self.sim.schedule_call(self.interval_us, self._tick)

    def add_sample_hook(self, fn: Callable[[IntervalSample], None]) -> None:
        """Call ``fn(sample)`` after each interval sample is recorded.

        Hooks run after the primary ``on_sample`` callback (schemes keep
        priority) and ride the existing tick event — registering one
        schedules nothing new, so the event sequence is unchanged.
        """
        self._sample_hooks.append(fn)

    def instantaneous_qtimes(self) -> tuple[float, float]:
        """Instantaneous Eq. 1 ``(cache_Qtime, disk_Qtime)`` right now."""
        cache_qt = eq1_queue_time(self.ssd.qsize, self.ssd.avg_latency)
        disk_qt = eq1_queue_time(self.hdd.qsize, self.hdd.avg_latency)
        return cache_qt, disk_qt

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        index = len(self.samples)
        ssd_avg, ssd_max = self.ssd.queue.window_stats(now)
        hdd_avg, hdd_max = self.hdd.queue.window_stats(now)
        ssd_busy, hdd_busy = self.ssd.stats.busy_time, self.hdd.stats.busy_time
        prev_ssd_busy, prev_hdd_busy = self._prev_busy
        self._prev_busy = (ssd_busy, hdd_busy)
        acc = self._accum
        sample = IntervalSample(
            index=index,
            t_start=now - self.interval_us,
            t_end=now,
            ssd_qsize_max=ssd_max,
            ssd_qsize_avg=ssd_avg,
            hdd_qsize_max=hdd_max,
            hdd_qsize_avg=hdd_avg,
            ssd_latency=self.ssd.avg_latency,
            hdd_latency=self.hdd.avg_latency,
            cache_qtime=eq1_queue_time(ssd_max, self.ssd.avg_latency),
            disk_qtime=eq1_queue_time(hdd_max, self.hdd.avg_latency),
            completed=acc.completed,
            reads=acc.reads,
            writes=acc.writes,
            bypassed=acc.bypassed,
            avg_latency=acc.total_latency / acc.completed if acc.completed else 0.0,
            max_latency=acc.max_latency,
            ssd_util=(ssd_busy - prev_ssd_busy) / self.interval_us,
            hdd_util=(hdd_busy - prev_hdd_busy) / self.interval_us,
            tenant_completed=dict(acc.tenant_completed),
            tenant_avg_latency={
                tid: acc.tenant_latency[tid] / n
                for tid, n in acc.tenant_completed.items()
                if n
            },
        )
        self.samples.append(sample)
        # Reset the (persistent) accumulator in place — its bound
        # ``record`` stays registered as the completion hook.
        acc.completed = acc.reads = acc.writes = acc.bypassed = 0
        acc.total_latency = 0.0
        acc.max_latency = 0.0
        acc.tenant_completed = {}
        acc.tenant_latency = {}
        self.ssd.queue.reset_window(now)
        self.hdd.queue.reset_window(now)
        if self._on_sample is not None:
            self._on_sample(sample)
        if self._sample_hooks:
            for hook in self._sample_hooks:
                hook(sample)
        self.sim.schedule_call(self.interval_us, self._tick)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IostatMonitor(interval={self.interval_us}µs, samples={len(self.samples)})"
