"""Trace record types shared by the blktrace and parser modules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.request import OpTag

__all__ = ["TraceRecord", "ACTIONS"]

#: blktrace-style action codes we record: Q(ueued), D(ispatched), C(ompleted).
ACTIONS = ("Q", "D", "C")

_ACTION_FOR = {"queue": "Q", "issue": "D", "complete": "C"}


@dataclass(frozen=True)
class TraceRecord:
    """One block-layer event, blktrace style.

    Attributes:
        time: Event time (µs).
        device: Device name (``ssd`` / ``hdd``).
        action: ``Q`` (queued), ``D`` (dispatched), or ``C`` (completed).
        tag: The paper's R/W/P/E type.
        is_write: Direction at the device.
        lba: First block address.
        nblocks: Block count.
        op_id: Device-op id (correlates Q/D/C lines).
    """

    time: float
    device: str
    action: str
    tag: OpTag
    is_write: bool
    lba: int
    nblocks: int
    op_id: int

    @classmethod
    def from_transition(cls, now: float, device: str, op, transition: str) -> "TraceRecord":
        """Build a record from a device observer callback."""
        return cls(
            time=now,
            device=device,
            action=_ACTION_FOR[transition],
            tag=op.tag,
            is_write=op.is_write,
            lba=op.lba,
            nblocks=op.nblocks,
            op_id=op.op_id,
        )

    def format_line(self) -> str:
        """Render the record in the project's text trace format."""
        rw = "W" if self.is_write else "R"
        return (
            f"{self.time:.3f} {self.device} {self.action} {self.tag.value} "
            f"{rw} {self.lba} {self.nblocks} {self.op_id}"
        )
