"""Trace record types shared by the blktrace and parser modules."""

from __future__ import annotations

from typing import NamedTuple

from repro.io.request import OpTag

__all__ = ["TraceRecord", "ACTIONS"]

#: blktrace-style action codes we record: Q(ueued), D(ispatched), C(ompleted).
ACTIONS = ("Q", "D", "C")

_ACTION_FOR = {"queue": "Q", "issue": "D", "complete": "C"}


class TraceRecord(NamedTuple):
    """One block-layer event, blktrace style.

    A :class:`~typing.NamedTuple` rather than a dataclass: one record is
    allocated per queue/issue/complete transition on every device op, so
    construction cost is squarely on the simulator's hot path (tuple
    construction happens in C; a frozen dataclass pays a Python-level
    ``__setattr__`` per field).

    Attributes:
        time: Event time (µs).
        device: Device name (``ssd`` / ``hdd``).
        action: ``Q`` (queued), ``D`` (dispatched), or ``C`` (completed).
        tag: The paper's R/W/P/E type.
        is_write: Direction at the device.
        lba: First block address.
        nblocks: Block count.
        op_id: Device-op id (correlates Q/D/C lines).
    """

    time: float
    device: str
    action: str
    tag: OpTag
    is_write: bool
    lba: int
    nblocks: int
    op_id: int

    def format_line(self) -> str:
        """Render the record in the project's text trace format."""
        rw = "W" if self.is_write else "R"
        return (
            f"{self.time:.3f} {self.device} {self.action} {self.tag.value} "
            f"{rw} {self.lba} {self.nblocks} {self.op_id}"
        )
