"""Composable trace operators: generator transforms over record streams.

Each operator takes an iterable of
:class:`~repro.trace.records.TraceRecord` and returns a lazy generator,
so pipelines preserve the streaming property end to end — a 10M-record
trace flows through ``slice_trace(rate_multiply(iter_trace(p), 2), ...)``
in constant memory.  All operators are deterministic: the same input
stream produces the same output stream, bit for bit.

The named registry (:data:`OPERATORS` / :func:`compile_operator`) is
what the ``trace:`` workload-spec section resolves ``"op"`` names
against; :func:`interleave` is separate because it merges *multiple*
streams into per-tenant pairs (the spec's ``interleave`` key drives it
through :class:`~repro.workloads.replay.ReplayWorkload`).

>>> from repro.io.request import OpTag
>>> from repro.trace.records import TraceRecord
>>> recs = [TraceRecord(t, "ssd", "Q", OpTag.READ, False, 8, 1, i)
...         for i, t in enumerate([0.0, 100.0, 200.0])]
>>> [r.time for r in time_compress(recs, 2.0)]
[0.0, 50.0, 100.0]
>>> [r.time for r in rate_multiply(recs, 2)]
[0.0, 50.0, 100.0, 150.0, 200.0, 200.0]
>>> [r.time for r in slice_trace(recs, start_us=100.0, rebase=True)]
[0.0, 100.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

from repro.trace.records import TraceRecord

__all__ = [
    "time_compress",
    "rate_multiply",
    "slice_trace",
    "lba_shift",
    "interleave",
    "OPERATORS",
    "operator_names",
    "compile_operator",
    "apply_operator_specs",
]


def time_compress(
    records: Iterable[TraceRecord], factor: float
) -> Iterator[TraceRecord]:
    """Divide every timestamp by ``factor`` (``8`` → replay 8× faster).

    The whole trace shortens; arrival *order* and the request mix are
    unchanged, so compressing a day-long production trace into a
    minutes-long simulation keeps its burst structure intact.
    """
    if factor <= 0:
        raise ValueError("time_compress factor must be positive")

    def generate() -> Iterator[TraceRecord]:
        for rec in records:
            yield rec._replace(time=rec.time / factor)

    return generate()


def rate_multiply(records: Iterable[TraceRecord], factor: int) -> Iterator[TraceRecord]:
    """Replicate each record ``factor`` times at interpolated timestamps.

    The trace's duration is preserved while its arrival rate multiplies:
    the copies of record *i* are spread evenly across the gap to record
    *i+1* (the final record's copies coincide).  Addresses are kept, so
    the amplified load hits the same working set — the "what if this
    host served N× the users" knob.  Requires a time-sorted input.
    """
    if not isinstance(factor, int) or factor < 1:
        raise ValueError("rate_multiply factor must be an integer >= 1")

    def generate() -> Iterator[TraceRecord]:
        if factor == 1:
            yield from records
            return
        it = iter(records)
        prev = next(it, None)
        if prev is None:
            return
        for rec in it:
            step = (rec.time - prev.time) / factor
            if step < 0:
                raise ValueError(
                    f"rate_multiply requires a time-sorted input "
                    f"(t={rec.time} after t={prev.time})"
                )
            for j in range(factor):
                yield prev._replace(time=prev.time + step * j)
            prev = rec
        for _ in range(factor):
            yield prev

    return generate()


def slice_trace(
    records: Iterable[TraceRecord],
    start_us: float = 0.0,
    stop_us: Optional[float] = None,
    rebase: bool = False,
) -> Iterator[TraceRecord]:
    """Keep records with ``start_us <= time < stop_us``.

    With ``rebase=True`` the window is shifted to start at t=0 — the
    way to replay an interesting hour out of a day-long trace.  Assumes
    a time-sorted input (iteration stops at the first record past
    ``stop_us``, which is what makes slicing a 10M-record stream cheap).
    """
    if stop_us is not None and stop_us <= start_us:
        raise ValueError("slice stop_us must be greater than start_us")

    def generate() -> Iterator[TraceRecord]:
        for rec in records:
            if rec.time < start_us:
                continue
            if stop_us is not None and rec.time >= stop_us:
                break
            yield rec._replace(time=rec.time - start_us) if rebase else rec

    return generate()


def lba_shift(records: Iterable[TraceRecord], blocks: int) -> Iterator[TraceRecord]:
    """Shift every address by ``blocks`` (disjoint per-tenant footprints).

    The ``trace:`` spec's ``interleave`` uses this to give each cloned
    tenant its own LBA region, mirroring
    :class:`~repro.workloads.multi_tenant.MultiTenantWorkload` striding.
    """
    if blocks < 0:
        raise ValueError("lba_shift blocks must be non-negative")

    def generate() -> Iterator[TraceRecord]:
        if blocks == 0:
            yield from records
            return
        for rec in records:
            yield rec._replace(lba=rec.lba + blocks)

    return generate()


def _keyed_stream(idx: int, stream: Iterable[TraceRecord]):
    for n, rec in enumerate(stream):
        yield (rec.time, idx, n), rec, idx


def interleave(
    streams: Iterable[Iterable[TraceRecord]],
) -> Iterator[tuple[TraceRecord, int]]:
    """Merge time-sorted streams into one ``(record, tenant_id)`` stream.

    Stream *i*'s records come out tagged ``tenant_id=i``; ties on time
    break by stream index then arrival order, so the merge is fully
    deterministic.  Each input must itself be time-sorted (the replay
    chunker enforces global order downstream).
    """
    merged = heapq.merge(*(_keyed_stream(i, s) for i, s in enumerate(streams)))
    for _key, rec, idx in merged:
        yield rec, idx


#: Named single-stream operators the ``trace:`` spec section accepts,
#: with their required/optional parameters.  ``interleave`` is not here:
#: it changes the stream's shape (records → per-tenant pairs) and is
#: driven by the spec's ``interleave`` key instead.
OPERATORS: dict[str, tuple[Callable[..., Iterator[TraceRecord]], frozenset[str]]] = {
    "time_compress": (time_compress, frozenset({"factor"})),
    "rate_multiply": (rate_multiply, frozenset({"factor"})),
    "slice": (slice_trace, frozenset({"start_us", "stop_us", "rebase"})),
    "lba_shift": (lba_shift, frozenset({"blocks"})),
}


def operator_names() -> tuple[str, ...]:
    """Every spec-addressable operator name."""
    return tuple(OPERATORS)


def compile_operator(
    spec: Mapping[str, Any]
) -> Callable[[Iterable[TraceRecord]], Iterator[TraceRecord]]:
    """Validate one ``{"op": name, ...params}`` spec into a transform.

    Validation is eager (unknown names/parameters raise here, before any
    file is opened); the returned callable applies lazily.

    Raises:
        ValueError: Unknown operator or unknown/invalid parameters.
    """
    if not isinstance(spec, Mapping) or "op" not in spec:
        raise ValueError(f"operator spec must be a mapping with an 'op' key: {spec!r}")
    name = spec["op"]
    entry = OPERATORS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown trace operator {name!r}; known operators "
            f"(repro.trace.operators): {', '.join(OPERATORS)}"
        )
    fn, allowed = entry
    params = {k: v for k, v in spec.items() if k != "op"}
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"operator {name!r}: unknown parameters {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )

    def transform(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        return fn(records, **params)

    # Probe argument completeness eagerly: applying to an empty stream
    # executes the signature binding without consuming anything real.
    try:
        probe = fn(iter(()), **params)
        next(probe, None)
    except TypeError as exc:
        raise ValueError(f"operator {name!r}: {exc}") from None
    return transform


def apply_operator_specs(
    records: Iterable[TraceRecord], specs: Iterable[Mapping[str, Any]]
) -> Iterator[TraceRecord]:
    """Thread a record stream through a list of operator specs, lazily."""
    out: Iterable[TraceRecord] = records
    for spec in specs:
        out = compile_operator(spec)(out)
    return iter(out)
