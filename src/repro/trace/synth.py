"""Deterministic synthetic trace streams for benchmarks and tests.

The streaming-replay benchmark needs a 10M-record trace without a 10M-
record file in the repo (or a 10M-element list in memory), so this
module generates records lazily from a self-contained linear
congruential generator — no :mod:`random` import, the same seed always
produces the same stream, and the generator holds O(1) state no matter
how many records are drawn.

>>> recs = list(synthetic_trace(3, seed=7))
>>> [r.op_id for r in recs]
[0, 1, 2]
>>> recs == list(synthetic_trace(3, seed=7))
True
"""

from __future__ import annotations

from typing import Iterator

from repro.io.request import OpTag
from repro.trace.records import TraceRecord

__all__ = ["synthetic_trace"]

# Knuth's MMIX LCG constants: full period over 2**64.
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def synthetic_trace(
    n: int,
    *,
    seed: int = 1,
    mean_gap_us: float = 50.0,
    span_blocks: int = 1 << 20,
    write_frac: float = 0.3,
    device: str = "synth",
) -> Iterator[TraceRecord]:
    """Lazily generate ``n`` sorted application records.

    Inter-arrival gaps are uniform on ``[0.5, 1.5) * mean_gap_us`` (so
    the stream is strictly time-ordered with mean rate
    ``1e6 / mean_gap_us`` IOPS), addresses are uniform over
    ``span_blocks``, and a ``write_frac`` share of records are writes.
    Deterministic for a given argument set.

    Args:
        n: Number of records to yield.
        seed: LCG seed; different seeds give independent streams.
        mean_gap_us: Mean inter-arrival gap in microseconds.
        span_blocks: Address footprint in blocks (LBAs in ``[0, span)``).
        write_frac: Fraction of records that are writes, in ``[0, 1]``.
        device: Device label stamped on every record.

    Yields:
        Time-sorted ``Q`` records with consecutive ``op_id``.
    """
    if n < 0:
        raise ValueError("synthetic_trace n must be non-negative")
    if mean_gap_us <= 0:
        raise ValueError("synthetic_trace mean_gap_us must be positive")
    if span_blocks <= 0:
        raise ValueError("synthetic_trace span_blocks must be positive")
    if not 0.0 <= write_frac <= 1.0:
        raise ValueError("synthetic_trace write_frac must be in [0, 1]")
    state = (seed * _LCG_MULT + _LCG_INC) & _LCG_MASK
    write_threshold = int(write_frac * 4096)
    t = 0.0
    for i in range(n):
        state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        u = (state >> 11) / float(1 << 53)  # uniform [0, 1)
        t += mean_gap_us * (0.5 + u)
        state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        lba = (state >> 11) % span_blocks
        state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        is_write = ((state >> 11) & 0xFFF) < write_threshold
        yield TraceRecord(
            time=t,
            device=device,
            action="Q",
            tag=OpTag.WRITE if is_write else OpTag.READ,
            is_write=is_write,
            lba=lba,
            nblocks=8,
            op_id=i,
        )
