"""Trace format adapters: one registry, many on-disk formats.

Public block traces come in many shapes — blkparse dumps, the
MSR-Cambridge CSVs, this project's own text format — and the replay
stack should not care which one a file uses.  A :class:`TraceAdapter`
translates one *line* of a foreign format into a canonical
:class:`~repro.trace.records.TraceRecord` (and back, for round-trips);
:func:`repro.trace.parser.iter_trace` threads every line of a file
through one adapter instance, so the streaming property is preserved no
matter the format.

The registry mirrors :mod:`repro.schemes.registry`: classes register
under a declared ``name``, duplicates are rejected, built-ins load
lazily on first query, and :func:`get_adapter` raises the canonical
unknown-name error listing every registered adapter.  Adding a format is
one class::

    from repro.trace.adapters import TraceAdapter, register_adapter

    @register_adapter
    class FioLogAdapter(TraceAdapter):
        name = "fio"
        description = "fio write_iolog output."

        def parse_line(self, lineno, line):
            ...  # return a TraceRecord, or None to skip the line

after which ``iter_trace(path, adapter="fio")`` and the ``trace:``
workload-spec section both accept it.

Adapters may be stateful (the MSR adapter rebases timestamps to the
first data row and numbers ops as it goes), so :func:`get_adapter`
returns a **fresh instance** per call — never share one instance across
concurrent iterations.
"""

from __future__ import annotations

import importlib
from typing import Optional

from repro.trace.records import TraceRecord

__all__ = [
    "TraceAdapter",
    "register_adapter",
    "get_adapter",
    "adapter_names",
    "adapter_descriptions",
    "unknown_adapter_error",
]

#: Registered adapter classes by name.  Treat as read-only; use
#: :func:`register_adapter` to add entries.  Query order is by each
#: class's ``registry_order`` (ties broken by registration order), so
#: the native format lists first regardless of import order.
_REGISTRY: dict[str, type["TraceAdapter"]] = {}

#: Modules whose import registers the built-in adapters.  Loaded lazily
#: on first query — the native adapter imports the parser module, which
#: resolves adapters lazily in turn, so a load-time import here would be
#: circular.
_BUILTIN_MODULES = (
    "repro.trace.adapters.native",
    "repro.trace.adapters.blkparse",
    "repro.trace.adapters.msr",
)
_builtins_state = "unloaded"  # -> "loading" -> "loaded"


class TraceAdapter:
    """Translates between one trace format and :class:`TraceRecord`.

    Subclasses declare ``name`` / ``description`` and implement
    :meth:`parse_line`; formats that can be written back (round-trips,
    format conversion) also implement :meth:`format_record`.

    Attributes:
        name: Registry key (``iter_trace(path, adapter=name)``).
        description: One-line summary for listings and docs.
        registry_order: Sort key for listing order (lower lists first).
    """

    name: str = ""
    description: str = ""
    registry_order: int = 100

    def parse_line(self, lineno: int, line: str) -> Optional[TraceRecord]:
        """Parse one stripped, non-blank line.

        Returns:
            The parsed record, or ``None`` for lines the format defines
            as non-events (comments, CSV headers, untracked blkparse
            actions).

        Raises:
            TraceParseError: For lines that should be events but are
                malformed.
        """
        raise NotImplementedError

    def format_record(self, rec: TraceRecord) -> str:
        """Render one record as a line of this format."""
        raise NotImplementedError(f"adapter {self.name!r} is read-only")

    def header(self) -> Optional[str]:
        """Header line emitted before records when dumping (or ``None``)."""
        return None

    @classmethod
    def describe(cls) -> str:
        """The adapter's one-line description (listings, docs)."""
        return cls.description or cls.__name__


def _ensure_builtins() -> None:
    global _builtins_state
    if _builtins_state != "unloaded":
        # "loading" guards reentrancy (a builtin module querying the
        # registry mid-import); "loaded" is the steady state.
        return
    _builtins_state = "loading"
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        # A failed builtin import must surface again on the next query,
        # not silently leave a partial registry behind.
        _builtins_state = "unloaded"
        raise
    _builtins_state = "loaded"


def register_adapter(
    cls: type[TraceAdapter], *, overwrite: bool = False
) -> type[TraceAdapter]:
    """Register a :class:`TraceAdapter` subclass under its ``name``.

    Usable as a decorator.  Duplicate names are rejected (pass
    ``overwrite=True`` to deliberately replace an entry).

    Returns:
        ``cls``, unchanged.
    """
    if not isinstance(cls, type) or not issubclass(cls, TraceAdapter):
        raise TypeError(
            f"register_adapter expects a TraceAdapter subclass, got {cls!r}"
        )
    name = cls.name
    if not name or not isinstance(name, str):
        raise ValueError(f"{cls.__name__}: adapter name must be a non-empty string")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"trace adapter {name!r} is already registered "
            f"(by {_REGISTRY[name].__name__}); pass overwrite=True to replace"
        )
    _REGISTRY[name] = cls
    return cls


def unknown_adapter_error(name: object) -> ValueError:
    """The canonical unknown-adapter error, naming the registry source."""
    return ValueError(
        f"unknown trace adapter {name!r}; registered adapters "
        f"(repro.trace.adapters): {', '.join(adapter_names())}"
    )


def get_adapter(name: str) -> TraceAdapter:
    """A fresh instance of the registered adapter for ``name``.

    A new instance per call: adapters may carry per-iteration state
    (timestamp rebasing, op numbering), so instances must not be shared
    across concurrent trace iterations.

    Raises:
        ValueError: Naming the registry and listing every registered
            adapter — the error an unknown ``trace:`` spec adapter or
            ``iter_trace`` argument surfaces.
    """
    _ensure_builtins()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise unknown_adapter_error(name) from None
    return cls()


def _ordered() -> list[tuple[str, type[TraceAdapter]]]:
    _ensure_builtins()
    # sorted() is stable, so equal registry_order keeps arrival order.
    return sorted(_REGISTRY.items(), key=lambda kv: kv[1].registry_order)


def adapter_names() -> tuple[str, ...]:
    """Every registered adapter name (``registry_order``, then arrival)."""
    return tuple(name for name, _ in _ordered())


def adapter_descriptions() -> dict[str, str]:
    """Every registered adapter with its one-line description."""
    return {name: cls.describe() for name, cls in _ordered()}


def _registered(name: str) -> Optional[type[TraceAdapter]]:
    """Internal: the entry for ``name`` or ``None`` (tests and tooling)."""
    return _REGISTRY.get(name)
