"""The project's own text format as an adapter.

One event per line, eight whitespace-separated fields::

    <time_us> <device> <action> <tag> <rw> <lba> <nblocks> <op_id>

This is the only format that carries the paper's full R/W/P/E tag set
and the Q/D/C action codes, so it is lossless for captured runs.  The
line-level logic lives in :func:`repro.trace.parser.parse_native_line`;
this class is the registry face of it.
"""

from __future__ import annotations

from typing import Optional

from repro.trace.adapters import TraceAdapter, register_adapter
from repro.trace.parser import parse_native_line
from repro.trace.records import TraceRecord

__all__ = ["NativeAdapter"]


@register_adapter
class NativeAdapter(TraceAdapter):
    """Native 8-field text format (lossless: full tag/action alphabet)."""

    name = "native"
    description = (
        "The project's text format: time_us device action tag rw lba "
        "nblocks op_id (lossless R/W/P/E + Q/D/C)."
    )
    registry_order = 0

    def parse_line(self, lineno: int, line: str) -> Optional[TraceRecord]:
        if line.startswith("#"):
            return None
        return parse_native_line(lineno, line)

    def format_record(self, rec: TraceRecord) -> str:
        return rec.format_line()

    def header(self) -> Optional[str]:
        return "# time_us device action tag rw lba nblocks op_id"
