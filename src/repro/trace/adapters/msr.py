"""MSR-Cambridge CSV traces as an adapter.

The MSR-Cambridge enterprise traces (SNIA IOTTA; also the evaluation
workloads of the source paper's related literature) are CSV rows::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size[,ResponseTime]

e.g. ``128166372003061629,usr,0,Read,7014609920,24576``.  Field mapping:

- ``Timestamp`` — Windows filetime (100 ns ticks, absolute epoch).  The
  adapter **rebases to the first data row**, so a trace starts at t=0 µs
  and is directly replayable; per-instance state, which is why
  :func:`~repro.trace.adapters.get_adapter` hands out fresh instances.
- ``Hostname``/``DiskNumber`` → ``device`` as ``host.N``.
- ``Type`` (``Read``/``Write``, case-insensitive) → tag + direction.
- ``Offset``/``Size`` (bytes) → ``lba``/``nblocks`` in 4-KiB blocks
  (offset floor-divided, size rounded up to at least one block).
- ``ResponseTime``, when present, is ignored (the replayed stack
  produces its own completions).
- ``op_id`` — consecutive row number (MSR rows carry no id).

Every row is an application-level arrival, so records parse as ``Q``
actions; cache-internal P/E traffic does not exist in this format.
``format_record`` writes the same CSV shape back (relative filetime
ticks), so records parsed from a dump round-trip exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.io.request import BLOCK_BYTES, OpTag
from repro.trace.adapters import TraceAdapter, register_adapter
from repro.trace.parser import TraceParseError
from repro.trace.records import TraceRecord

__all__ = ["MsrCambridgeAdapter"]

_TYPES = {"read": (OpTag.READ, False), "write": (OpTag.WRITE, True)}


@register_adapter
class MsrCambridgeAdapter(TraceAdapter):
    """MSR-Cambridge CSV (timestamps rebased to the first data row)."""

    name = "msr"
    description = (
        "MSR-Cambridge CSV: Timestamp,Hostname,DiskNumber,Type,Offset,"
        "Size (filetime ticks rebased to t=0; bytes -> 4-KiB blocks)."
    )
    registry_order = 20

    def __init__(self) -> None:
        self._t0: Optional[int] = None
        self._next_op = 0

    def parse_line(self, lineno: int, line: str) -> Optional[TraceRecord]:
        if line.startswith("#"):
            return None
        parts = line.split(",")
        if parts[0].strip().lower() == "timestamp":
            return None  # optional header row
        if len(parts) not in (6, 7):
            raise TraceParseError(
                lineno, line, f"expected 6 or 7 CSV fields, got {len(parts)}"
            )
        ticks_s, host, disk_s, type_s, offset_s, size_s = (
            p.strip() for p in parts[:6]
        )
        try:
            ticks = int(ticks_s)
            disk = int(disk_s)
            offset = int(offset_s)
            size = int(size_s)
        except ValueError as exc:
            raise TraceParseError(lineno, line, f"bad numeric field ({exc})") from None
        mapped = _TYPES.get(type_s.lower())
        if mapped is None:
            raise TraceParseError(
                lineno, line, f"Type must be Read or Write, got {type_s!r}"
            )
        if offset < 0 or size < 0 or disk < 0:
            raise TraceParseError(lineno, line, "negative offset/size/disk")
        if self._t0 is None:
            self._t0 = ticks
        if ticks < self._t0:
            raise TraceParseError(
                lineno,
                line,
                "timestamp before the trace's first row (MSR input not sorted)",
            )
        tag, is_write = mapped
        op_id = self._next_op
        self._next_op += 1
        return TraceRecord(
            time=(ticks - self._t0) / 10.0,  # 100 ns ticks → µs
            device=f"{host}.{disk}",
            action="Q",
            tag=tag,
            is_write=is_write,
            lba=offset // BLOCK_BYTES,
            nblocks=max(1, -(-size // BLOCK_BYTES)),
            op_id=op_id,
        )

    def format_record(self, rec: TraceRecord) -> str:
        host, dot, disk = rec.device.rpartition(".")
        if not dot or not disk.isdigit():
            host, disk = rec.device, "0"
        kind = "Write" if rec.is_write else "Read"
        return (
            f"{round(rec.time * 10)},{host},{disk},{kind},"
            f"{rec.lba * BLOCK_BYTES},{rec.nblocks * BLOCK_BYTES}"
        )

    def header(self) -> Optional[str]:
        return "Timestamp,Hostname,DiskNumber,Type,Offset,Size"
