"""blkparse-style output as an adapter.

Parses the default per-event line format of ``blkparse`` (the consumer
side of Linux blktrace, the tool the paper instruments with)::

    <maj,min> <cpu> <seq> <time_s> <pid> <action> <rwbs> <sector> + <n> [proc]

e.g. ``259,0 0 42 0.001204512 833 Q R 81920 + 8 [fio]``.  Field mapping:

- ``time_s`` (seconds, 9 decimal places) → ``time`` in µs;
- ``maj,min`` → ``device`` verbatim (no attempt to guess ssd/hdd);
- ``action`` → kept when it is one of our Q/D/C codes; every other
  blkparse action (G, I, P, U, M, A, ...) is not an event our replay
  model understands and the line is skipped;
- ``rwbs`` → ``is_write`` from the presence of ``W`` (modifiers like
  ``WS``/``RA``/``RM`` are accepted); the tag is the application-level
  R/W — blkparse has no notion of the paper's cache-internal P/E tags;
- ``sector``/``n`` → ``lba``/``nblocks`` unit-preserving (sectors are
  kept as block numbers; apply your own scaling if 512-byte sectors vs
  4-KiB blocks matters for footprint sizing);
- ``seq`` → ``op_id``.

``format_record`` emits the same shape back (process name ``[replay]``),
so application records round-trip exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.io.request import OpTag
from repro.trace.adapters import TraceAdapter, register_adapter
from repro.trace.parser import TraceParseError
from repro.trace.records import ACTIONS, TraceRecord

__all__ = ["BlkparseAdapter"]

#: blkparse action codes that are not Q/D/C events (plug/unplug, getrq,
#: insert, merges, remaps, messages...) — recognised and skipped.
_FOREIGN_ACTIONS = frozenset("GIPUMAFRSTXDmB") - frozenset(ACTIONS)


def _parse_time_us(time_s: str) -> float:
    """``sec.nanosec`` → µs, via integer nanoseconds.

    blkparse prints ``%d.%09lu``; going through an integer (instead of
    ``float(time_s) * 1e6``) keeps the dump → parse round-trip exact.
    """
    if time_s.startswith("-"):
        raise ValueError(f"negative timestamp {time_s!r}")
    sec_s, dot, frac_s = time_s.partition(".")
    if not dot:
        return float(int(sec_s) * 1_000_000)
    ns = int(sec_s) * 1_000_000_000 + int(frac_s.ljust(9, "0")[:9])
    return ns / 1000.0


@register_adapter
class BlkparseAdapter(TraceAdapter):
    """blkparse default output (Q/D/C events; other actions skipped)."""

    name = "blkparse"
    description = (
        "blkparse default output: 'maj,min cpu seq time_s pid action "
        "rwbs sector + n [proc]' (Q/D/C kept, other actions skipped)."
    )
    registry_order = 10

    def parse_line(self, lineno: int, line: str) -> Optional[TraceRecord]:
        if line.startswith("#"):
            return None
        parts = line.split()
        # Foreign actions (plug/unplug, getrq, messages...) often have no
        # 'sector + n' payload, so skip them before the field-count check.
        if len(parts) >= 6:
            action = parts[5]
            if (
                action not in ACTIONS
                and len(action) <= 2
                and action[0] in _FOREIGN_ACTIONS
            ):
                return None  # a real blkparse action we do not replay
        if len(parts) < 10:
            raise TraceParseError(
                lineno, line, f"expected >= 10 blkparse fields, got {len(parts)}"
            )
        device, _cpu, seq_s, time_s, _pid, action, rwbs = parts[:7]
        if action not in ACTIONS:
            raise TraceParseError(lineno, line, f"unknown action {action!r}")
        if parts[8] != "+":
            raise TraceParseError(
                lineno, line, "expected 'sector + nblocks' payload"
            )
        try:
            time_us = _parse_time_us(time_s)
            sector = int(parts[7])
            nblocks = int(parts[9])
            op_id = int(seq_s)
        except ValueError as exc:
            raise TraceParseError(
                lineno, line, f"bad numeric field ({exc})"
            ) from None
        is_write = "W" in rwbs
        if not is_write and "R" not in rwbs:
            return None  # barriers/flushes ('N', 'FF', ...) carry no data
        if time_us < 0 or sector < 0 or nblocks <= 0:
            raise TraceParseError(
                lineno, line, "negative time/sector or non-positive size"
            )
        return TraceRecord(
            time=time_us,
            device=device,
            action=action,
            tag=OpTag.WRITE if is_write else OpTag.READ,
            is_write=is_write,
            lba=sector,
            nblocks=nblocks,
            op_id=op_id,
        )

    def format_record(self, rec: TraceRecord) -> str:
        rwbs = "W" if rec.is_write else "R"
        ns = round(rec.time * 1000)  # µs → integer nanoseconds
        time_s = f"{ns // 1_000_000_000}.{ns % 1_000_000_000:09d}"
        return (
            f"{rec.device} 0 {rec.op_id} {time_s} 0 "
            f"{rec.action} {rwbs} {rec.lba} + {rec.nblocks} [replay]"
        )
