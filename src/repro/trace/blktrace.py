"""The blktrace stand-in: block-layer event logging and queue snapshots.

LBICA "uses blktrace as a block level I/O tracing tool to get the list of
in-queue requests" (Section III-B).  :class:`BlkTracer` provides exactly
that: attach it to one or more devices and it records every
queue/issue/complete transition in a bounded ring buffer, and answers
*what is sitting in this queue right now, by type* — the input to the
workload characterizer.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterable

from repro.devices.base import StorageDevice
from repro.io.request import DeviceOp, OpTag
from repro.trace.records import TraceRecord

__all__ = ["BlkTracer"]


class BlkTracer:
    """Records block-layer events and snapshots queue composition.

    Args:
        sim: The simulator (for timestamps).
        capacity: Ring-buffer size; older records are discarded (blktrace
            similarly drops data when its buffers overflow).
        record_events: When ``False``, skip building and retaining
            per-transition :class:`TraceRecord` objects and keep only the
            window counters and queue snapshots — everything the LBICA
            characterizer consumes.  Batch runners whose callers never
            see the system (``ScenarioSpec.run``) use this; capture for
            replay (``dump``/``records``) needs the default ``True``.
    """

    def __init__(
        self, sim, capacity: int = 100_000, record_events: bool = True
    ) -> None:
        self.sim = sim
        self.record_events = record_events
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self._devices: dict[str, StorageDevice] = {}
        self._windows: dict[str, Counter] = {}
        self.dropped = 0
        self.enabled = True

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, device: StorageDevice) -> None:
        """Start tracing a device's queue transitions."""
        if device.name in self._devices:
            raise ValueError(f"device {device.name!r} already attached")
        self._devices[device.name] = device
        self._windows[device.name] = Counter()
        for transition, observe in self._make_observers(device.name):
            device.add_transition_observer(transition, observe)

    def _make_observers(self, name: str):
        # Hot path: one call per queue/issue/complete transition on every
        # device op.  One specialized closure per transition folds the
        # action letter into a constant, and ``tuple.__new__`` skips the
        # NamedTuple constructor's keyword machinery (~30% per record).
        window = self._windows[name]
        if not self.record_events:
            # Counters-only mode: the characterizer's window mix is the
            # sole product; no record objects are built or retained.
            def observe_window(op: DeviceOp) -> None:
                if not self.enabled:
                    return
                window[op.tag] += 1

            return (("queue", observe_window),)

        records = self.records
        append = records.append
        maxlen = records.maxlen
        new = tuple.__new__
        record_cls = TraceRecord
        sim = self.sim

        def observe_queue(op: DeviceOp) -> None:
            if not self.enabled:
                return
            window[op.tag] += 1
            if len(records) == maxlen:
                self.dropped += 1
            append(
                new(
                    record_cls,
                    (sim.now, name, "Q", op.tag, op.is_write, op.lba, op.nblocks, op.op_id),
                )
            )

        def observe_issue(op: DeviceOp) -> None:
            if not self.enabled:
                return
            if len(records) == maxlen:
                self.dropped += 1
            append(
                new(
                    record_cls,
                    (sim.now, name, "D", op.tag, op.is_write, op.lba, op.nblocks, op.op_id),
                )
            )

        def observe_complete(op: DeviceOp) -> None:
            if not self.enabled:
                return
            if len(records) == maxlen:
                self.dropped += 1
            append(
                new(
                    record_cls,
                    (sim.now, name, "C", op.tag, op.is_write, op.lba, op.nblocks, op.op_id),
                )
            )

        return (
            ("queue", observe_queue),
            ("issue", observe_issue),
            ("complete", observe_complete),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def queue_snapshot(self, device_name: str) -> Counter:
        """R/W/P/E composition of a device's pending queue right now."""
        device = self._devices.get(device_name)
        if device is None:
            raise KeyError(f"device {device_name!r} is not traced")
        return device.queue.snapshot_tags()

    def take_window_counts(self, device_name: str) -> Counter:
        """R/W/P/E counts of requests *queued since the last call*.

        This is the interval-accumulated view of the queue mix: in a
        saturated FIFO queue it converges to the same composition as
        :meth:`queue_snapshot`, but it is far less noisy on the short
        sampling windows of a scaled-down simulation, so LBICA's
        characterizer consumes this (with the instantaneous snapshot as a
        fallback when the window is empty).
        """
        if device_name not in self._windows:
            raise KeyError(f"device {device_name!r} is not traced")
        counts = self._windows[device_name]
        out = Counter(counts)
        counts.clear()
        return out

    def queue_mix(self, device_name: str) -> dict[str, float]:
        """The snapshot as fractions (e.g. ``{"R": 0.44, "P": 0.51, ...}``).

        Returns an all-zero mix when the queue is empty.
        """
        counts = self.queue_snapshot(device_name)
        total = sum(counts.values())
        mix = {tag.value: 0.0 for tag in OpTag}
        if total:
            for tag, count in counts.items():
                mix[tag.value] = count / total
        return mix

    def events_for(
        self, device_name: str | None = None, action: str | None = None
    ) -> Iterable[TraceRecord]:
        """Filtered view over the buffered records."""
        for rec in self.records:
            if device_name is not None and rec.device != device_name:
                continue
            if action is not None and rec.action != action:
                continue
            yield rec

    def counts_by_tag(self, device_name: str | None = None) -> Counter:
        """Lifetime (buffered) Q-event counts per tag."""
        counts: Counter = Counter()
        for rec in self.events_for(device_name, action="Q"):
            counts[rec.tag] += 1
        return counts

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlkTracer(devices={sorted(self._devices)}, "
            f"records={len(self.records)}, dropped={self.dropped})"
        )
