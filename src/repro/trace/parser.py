"""Text trace format: writer and lazy parser.

The native format is a simplified blkparse line, one event per line::

    <time_us> <device> <action> <tag> <rw> <lba> <nblocks> <op_id>

e.g. ``1234.500 ssd Q P W 8192 1 42``.  Lines starting with ``#`` and
blank lines are ignored.  :func:`save_trace` / :func:`load_trace` round-
trip :class:`~repro.trace.records.TraceRecord` sequences; the workload
replay module consumes only ``Q`` records of application tags.

Streaming
---------
:func:`iter_trace` is the lazy core: it yields records one at a time
while the file is read, so a multi-gigabyte trace replays in constant
memory (:class:`~repro.workloads.replay.ReplayWorkload` pulls it in
chunks).  :func:`load_trace` is simply ``list(iter_trace(path))`` for
callers that want the materialized form.

Foreign formats (blkparse output, MSR-Cambridge CSV) parse through the
same entry points via the ``adapter`` argument — see
:mod:`repro.trace.adapters` for the registry and the field mappings.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, TextIO, Union

from repro.io.request import OpTag
from repro.trace.records import ACTIONS, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.adapters import TraceAdapter

__all__ = [
    "save_trace",
    "load_trace",
    "loads_trace",
    "iter_trace",
    "dumps_trace",
    "TraceParseError",
]

_VALID_TAGS = {tag.value: tag for tag in OpTag}

#: An adapter argument: a registered name or a live adapter instance.
AdapterLike = Union[str, "TraceAdapter"]


class TraceParseError(ValueError):
    """Raised for malformed trace lines.

    Attributes:
        lineno: 1-based line number of the offending line.
        line: The offending line (stripped).
        reason: Human-readable description of what is wrong.
        path: The file being parsed, when known (``None`` for strings).
    """

    def __init__(
        self, lineno: int, line: str, reason: str, path: str | Path | None = None
    ) -> None:
        where = f"{path}:{lineno}" if path is not None else f"line {lineno}"
        super().__init__(f"{where}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason
        self.path = None if path is None else str(path)


def _resolve_adapter(adapter: AdapterLike) -> "TraceAdapter":
    # Imported lazily: the adapter registry's builtin modules import this
    # module for the native line parser, so a load-time import here would
    # be circular.
    from repro.trace.adapters import get_adapter

    if isinstance(adapter, str):
        return get_adapter(adapter)
    return adapter


def dumps_trace(
    records: Iterable[TraceRecord], adapter: AdapterLike = "native"
) -> str:
    """Serialize records to text (with a header line when the format has one)."""
    adp = _resolve_adapter(adapter)
    buf = io.StringIO()
    header = adp.header()
    if header is not None:
        buf.write(header)
        buf.write("\n")
    for rec in records:
        buf.write(adp.format_record(rec))
        buf.write("\n")
    return buf.getvalue()


def save_trace(
    records: Iterable[TraceRecord],
    path: str | Path,
    adapter: AdapterLike = "native",
) -> int:
    """Write records to ``path``; returns the number of records written."""
    records = list(records)
    Path(path).write_text(dumps_trace(records, adapter), encoding="utf-8")
    return len(records)


def parse_native_line(lineno: int, line: str) -> TraceRecord:
    """Parse one non-comment line of the native 8-field format."""
    parts = line.split()
    if len(parts) != 8:
        raise TraceParseError(lineno, line, f"expected 8 fields, got {len(parts)}")
    time_s, device, action, tag_s, rw, lba_s, nblocks_s, op_id_s = parts
    try:
        time = float(time_s)
        lba = int(lba_s)
        nblocks = int(nblocks_s)
        op_id = int(op_id_s)
    except ValueError as exc:
        raise TraceParseError(lineno, line, f"bad numeric field ({exc})") from None
    if action not in ACTIONS:
        raise TraceParseError(lineno, line, f"unknown action {action!r}")
    tag = _VALID_TAGS.get(tag_s)
    if tag is None:
        raise TraceParseError(lineno, line, f"unknown tag {tag_s!r}")
    if rw not in ("R", "W"):
        raise TraceParseError(lineno, line, f"rw must be R or W, got {rw!r}")
    if time < 0 or lba < 0 or nblocks <= 0:
        raise TraceParseError(lineno, line, "negative time/lba or non-positive size")
    return TraceRecord(
        time=time,
        device=device,
        action=action,
        tag=tag,
        is_write=(rw == "W"),
        lba=lba,
        nblocks=nblocks,
        op_id=op_id,
    )


# Back-compat alias (pre-adapter internal name).
_parse_line = parse_native_line


def _iter_stream(
    stream: TextIO, adapter: "TraceAdapter", path: str | Path | None = None
) -> Iterator[TraceRecord]:
    """Lazily parse a line stream through one adapter instance.

    Parse errors are re-raised with ``path`` attached so an error deep in
    a multi-file scenario names the offending file, not just a line.
    """
    parse = adapter.parse_line
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            rec = parse(lineno, line)
        except TraceParseError as exc:
            if path is not None and exc.path is None:
                raise TraceParseError(
                    exc.lineno, exc.line, exc.reason, path=path
                ) from None
            raise
        if rec is not None:
            yield rec


def iter_trace(
    path: str | Path, adapter: AdapterLike = "native"
) -> Iterator[TraceRecord]:
    """Lazily parse records from a file — the streaming core.

    The file is opened when iteration starts and closed when the
    generator is exhausted or garbage-collected; no list is ever built,
    so memory stays constant regardless of trace length.

    Args:
        path: Trace file path.
        adapter: Format adapter — a registered name (``native`` /
            ``blkparse`` / ``msr``) or a :class:`TraceAdapter` instance.

    Raises:
        TraceParseError: On the first malformed line, carrying ``path``
            and the 1-based line number.
    """
    adp = _resolve_adapter(adapter)
    with open(path, "r", encoding="utf-8") as fh:
        yield from _iter_stream(fh, adp, path=path)


def loads_trace(text: str, adapter: AdapterLike = "native") -> list[TraceRecord]:
    """Parse records from a string."""
    return list(_iter_stream(io.StringIO(text), _resolve_adapter(adapter)))


def load_trace(path: str | Path, adapter: AdapterLike = "native") -> list[TraceRecord]:
    """Parse records from a file, materialized (``list(iter_trace(...))``)."""
    return list(iter_trace(path, adapter))
