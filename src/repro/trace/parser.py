"""Text trace format: writer and parser.

The format is a simplified blkparse line, one event per line::

    <time_us> <device> <action> <tag> <rw> <lba> <nblocks> <op_id>

e.g. ``1234.500 ssd Q P W 8192 1 42``.  Lines starting with ``#`` and
blank lines are ignored.  :func:`save_trace` / :func:`load_trace` round-
trip :class:`~repro.trace.records.TraceRecord` sequences; the workload
replay module consumes only ``Q`` records of application tags.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from repro.io.request import OpTag
from repro.trace.records import ACTIONS, TraceRecord

__all__ = ["save_trace", "load_trace", "loads_trace", "dumps_trace", "TraceParseError"]

_VALID_TAGS = {tag.value: tag for tag in OpTag}


class TraceParseError(ValueError):
    """Raised for malformed trace lines (includes the line number)."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


def dumps_trace(records: Iterable[TraceRecord]) -> str:
    """Serialize records to the text format (with a header comment)."""
    buf = io.StringIO()
    buf.write("# time_us device action tag rw lba nblocks op_id\n")
    for rec in records:
        buf.write(rec.format_line())
        buf.write("\n")
    return buf.getvalue()


def save_trace(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records to ``path``; returns the number of records written."""
    records = list(records)
    Path(path).write_text(dumps_trace(records), encoding="utf-8")
    return len(records)


def _parse_line(lineno: int, line: str) -> TraceRecord:
    parts = line.split()
    if len(parts) != 8:
        raise TraceParseError(lineno, line, f"expected 8 fields, got {len(parts)}")
    time_s, device, action, tag_s, rw, lba_s, nblocks_s, op_id_s = parts
    try:
        time = float(time_s)
        lba = int(lba_s)
        nblocks = int(nblocks_s)
        op_id = int(op_id_s)
    except ValueError as exc:
        raise TraceParseError(lineno, line, f"bad numeric field ({exc})") from None
    if action not in ACTIONS:
        raise TraceParseError(lineno, line, f"unknown action {action!r}")
    tag = _VALID_TAGS.get(tag_s)
    if tag is None:
        raise TraceParseError(lineno, line, f"unknown tag {tag_s!r}")
    if rw not in ("R", "W"):
        raise TraceParseError(lineno, line, f"rw must be R or W, got {rw!r}")
    if time < 0 or lba < 0 or nblocks <= 0:
        raise TraceParseError(lineno, line, "negative time/lba or non-positive size")
    return TraceRecord(
        time=time,
        device=device,
        action=action,
        tag=tag,
        is_write=(rw == "W"),
        lba=lba,
        nblocks=nblocks,
        op_id=op_id,
    )


def _iter_lines(stream: TextIO) -> Iterable[TraceRecord]:
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield _parse_line(lineno, line)


def loads_trace(text: str) -> list[TraceRecord]:
    """Parse records from a string."""
    return list(_iter_lines(io.StringIO(text)))


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Parse records from a file."""
    with open(path, "r", encoding="utf-8") as fh:
        return list(_iter_lines(fh))
