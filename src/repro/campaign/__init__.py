"""The campaign layer: resumable experiment sweeps over a run store.

- :mod:`repro.campaign.spec` — :class:`CampaignSpec`: a named list of
  scenarios (registry names or inline :class:`~repro.scenario.
  ScenarioSpec` dicts, sweeps included) with a strict JSON round-trip;
- :mod:`repro.campaign.runner` — :func:`run_campaign`: shard-wise
  execution that skips every key the store already holds, so a killed
  campaign resumes where it stopped;
- :mod:`repro.campaign.report` — status / Markdown report / fingerprint
  diff (two stores, or a store vs. the benchmark goldens);
- :mod:`repro.campaign.cli` — ``repro campaign run|status|report|diff``.

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign
    from repro.store import RunStore

    campaign = CampaignSpec(
        name="demo",
        scenarios=[{"name": "web_schemes", "workload": "web",
                    "base": "quick", "horizon_intervals": 5,
                    "sweep": {"scheme": ["wb", "sib", "lbica"]}}],
    )
    run = run_campaign(campaign, RunStore("results/demo-store"))
    print(run.summary())        # second invocation: 3 store hits, 0 simulated
"""

from repro.campaign.report import (
    CampaignDiff,
    MetricDelta,
    ScenarioStatus,
    campaign_report,
    campaign_status,
    diff_fingerprints,
    load_fingerprints,
    status_table,
)
from repro.campaign.runner import CampaignRun, run_campaign
from repro.campaign.spec import CampaignError, CampaignSpec, load_campaign

__all__ = [
    "CampaignSpec",
    "CampaignError",
    "load_campaign",
    "CampaignRun",
    "run_campaign",
    "campaign_status",
    "status_table",
    "campaign_report",
    "CampaignDiff",
    "MetricDelta",
    "ScenarioStatus",
    "diff_fingerprints",
    "load_fingerprints",
]
