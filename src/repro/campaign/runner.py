"""Resumable campaign execution over a persistent run store.

:func:`run_campaign` expands a :class:`~repro.campaign.spec.CampaignSpec`
into its scenario grid, skips every scenario whose
:class:`~repro.store.RunKey` the store already holds (a **store hit** —
nothing is simulated), and runs the rest in shards through
:class:`~repro.experiments.runner.ExperimentRunner` with the store
attached.  Each shard's results are written through to disk as they
complete, so a killed campaign loses at most the in-flight shard: the
next invocation reports everything already on disk as store hits and
only simulates the remainder.

Corrupt or foreign-schema artifacts are treated as misses (re-simulated
and rewritten), so a damaged store heals instead of wedging the
campaign.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.experiments.runner import ExperimentRunner
from repro.scenario.spec import ScenarioSpec
from repro.store import RunArtifact, RunKey, RunStore, StoreError

__all__ = ["CampaignRun", "run_campaign"]


@dataclass
class CampaignRun:
    """What one campaign invocation did.

    Attributes:
        campaign: The campaign name.
        hits: Scenario names answered from the store (no simulation).
        simulated: Scenario names simulated this invocation.
        healed: Scenario names whose stored artifact was unreadable and
            got re-simulated.
        artifacts: Every scenario's artifact by name (hits + fresh).
    """

    campaign: str
    hits: list[str] = field(default_factory=list)
    simulated: list[str] = field(default_factory=list)
    healed: list[str] = field(default_factory=list)
    artifacts: dict[str, RunArtifact] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Scenarios in the campaign grid."""
        return len(self.hits) + len(self.simulated)

    def summary(self) -> str:
        """The one-line outcome (what the CLI prints and CI greps)."""
        text = (
            f"campaign {self.campaign}: {self.total} scenarios — "
            f"{len(self.hits)} store hits, {len(self.simulated)} simulated"
        )
        if self.healed:
            text += f" ({len(self.healed)} healed from corrupt artifacts)"
        return text


def _shards(items: list[ScenarioSpec], size: int) -> list[list[ScenarioSpec]]:
    """Split ``items`` into consecutive shards of at most ``size``."""
    return [items[i : i + size] for i in range(0, len(items), size)]


def _heartbeat_loop(
    stop: threading.Event,
    interval_s: float,
    progress: dict,
    total: int,
    hits: int,
) -> None:
    """Print a campaign progress line every ``interval_s`` wall seconds.

    Runs on a daemon thread; reads only the shared ``progress`` counter
    (updated between shards) and wall time, so it never touches — or
    perturbs — a simulation.  Output goes to stderr: stdout stays
    parseable for CI greps.
    """
    t0 = time.perf_counter()
    while not stop.wait(interval_s):
        done = progress["done"]
        elapsed = time.perf_counter() - t0
        line = (
            f"[campaign] heartbeat: {hits + done}/{total} scenarios "
            f"({hits} store hits, {done} simulated), wall {elapsed:.0f}s"
        )
        remaining = total - hits - done
        if done and remaining > 0:
            eta = elapsed / done * remaining
            line += f", eta {eta:.0f}s"
        print(line, file=sys.stderr, flush=True)


def run_campaign(
    campaign: CampaignSpec,
    store: RunStore,
    jobs: Optional[int] = None,
    shard_size: int = 8,
    verbose: bool = True,
    heartbeat_s: float = 0.0,
) -> CampaignRun:
    """Run (or resume) a campaign against a store.

    Args:
        campaign: The campaign to run.
        store: Run store holding completed scenarios; every fresh result
            is written through to it.
        jobs: Process fan-out per shard (defaults to the campaign's own
            ``jobs`` field).
        shard_size: Scenarios per shard.  Each shard gets a fresh
            :class:`ExperimentRunner`, which bounds the in-memory
            ``RunResult`` footprint — the store, not the memo cache, is
            the cross-shard memory.
        verbose: Print progress (store hits, per-shard completion).
        heartbeat_s: When positive, print a live progress line
            (scenarios done, wall time, ETA) to stderr every this many
            wall-clock seconds while shards simulate.

    Returns:
        A :class:`CampaignRun` with every scenario's artifact.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    workers = campaign.jobs if jobs is None else jobs
    if workers < 1:
        raise ValueError("jobs must be >= 1")
    specs = campaign.expand()
    run = CampaignRun(campaign=campaign.name)

    missing = []
    for spec in specs:
        key = RunKey.for_spec(spec)
        if store.contains(key):
            try:
                run.artifacts[spec.name] = store.get(key)
                run.hits.append(spec.name)
                continue
            except StoreError as exc:
                run.healed.append(spec.name)
                if verbose:
                    print(  # simlint: ignore[SL008] opt-in progress output
                        f"[campaign] {spec.name}: stored artifact unreadable "
                        f"({exc}); re-simulating",
                        flush=True,
                    )
        missing.append(spec)
    if verbose:
        print(  # simlint: ignore[SL008] opt-in progress output
            f"[campaign] {campaign.name}: {len(specs)} scenarios — "
            f"{len(run.hits)} already stored, {len(missing)} to simulate "
            f"(jobs={workers})",
            flush=True,
        )

    progress = {"done": 0}
    stop: Optional[threading.Event] = None
    beat: Optional[threading.Thread] = None
    if heartbeat_s > 0 and missing:
        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(stop, heartbeat_s, progress, len(specs), len(run.hits)),
            daemon=True,
        )
        beat.start()
    try:
        for shard in _shards(missing, shard_size):
            # a fresh runner per shard: the store carries results across
            # shards (and invocations), the memo cache only within one
            runner = ExperimentRunner(store=store, verbose=verbose)
            runner.run_specs(shard, max_workers=workers)
            progress["done"] += len(shard)
            for spec in shard:
                run.artifacts[spec.name] = store.get(RunKey.for_spec(spec))
                run.simulated.append(spec.name)
            if verbose and missing:
                print(  # simlint: ignore[SL008] opt-in progress output
                    f"[campaign] progress: {progress['done']}/{len(missing)} "
                    f"simulated ({len(run.hits) + progress['done']}"
                    f"/{len(specs)} total)",
                    flush=True,
                )
    finally:
        if stop is not None:
            stop.set()
        if beat is not None:
            beat.join(timeout=1.0)
    if verbose:
        print(f"[campaign] {run.summary()}", flush=True)  # simlint: ignore[SL008] opt-in progress
    return run
