"""``repro campaign`` — run, inspect, and diff persistent campaigns.

Examples::

    repro campaign run examples/campaigns/smoke.json --store results/store
    repro campaign run nightly.json --jobs 4      # resumes: hits skip
    repro campaign status nightly.json --store results/store
    repro campaign report nightly.json --store results/store --out report.md
    repro campaign diff results/store results/other-store
    repro campaign diff results/store benchmarks/golden/suite_quick.json
    python -m repro campaign run ...              # module form

``run`` is resumable by construction: every completed scenario lands in
the store, so re-invoking after a crash (or on another day) reports the
finished scenarios as store hits and simulates only the rest.  ``diff``
exits non-zero when any shared scenario's stats diverge — regressions in
latency/load metrics are flagged explicitly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.campaign.report import (
    campaign_report,
    campaign_status,
    diff_fingerprints,
    load_fingerprints,
    status_table,
)
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignError, CampaignSpec, load_campaign
from repro.store import RunStore, StoreError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Run, inspect, and diff persistent experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run (or resume) a campaign against a run store"
    )
    run_p.add_argument("campaign", help="campaign .json file")
    run_p.add_argument(
        "--store",
        default=None,
        help="run-store directory (default: the campaign's own 'store' field)",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="processes per shard (default: the campaign's own 'jobs' field)",
    )
    run_p.add_argument(
        "--shard-size",
        type=int,
        default=8,
        help="scenarios per shard (default 8)",
    )
    run_p.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    run_p.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="S",
        help=(
            "print a live progress line (done/total, wall time, ETA) to "
            "stderr every S seconds while simulating (0 disables)"
        ),
    )

    status_p = sub.add_parser(
        "status", help="which scenarios are stored / missing / corrupt"
    )
    status_p.add_argument("campaign", help="campaign .json file")
    status_p.add_argument("--store", default=None, help="run-store directory")

    report_p = sub.add_parser(
        "report", help="Markdown summary of every stored scenario"
    )
    report_p.add_argument("campaign", help="campaign .json file")
    report_p.add_argument("--store", default=None, help="run-store directory")
    report_p.add_argument(
        "--out", default=None, help="write the report here instead of stdout"
    )

    diff_p = sub.add_parser(
        "diff",
        help=(
            "compare two campaigns' stats (store dirs, golden files, or "
            "BENCH_suite.json documents); exit 1 on any divergence"
        ),
    )
    diff_p.add_argument("side_a", help="baseline: store dir or fingerprint JSON")
    diff_p.add_argument("side_b", help="candidate: store dir or fingerprint JSON")
    diff_p.add_argument(
        "--campaign",
        default=None,
        help=(
            "restrict store sides to this campaign's scenarios (required "
            "when a store holds the same scenario under several configs)"
        ),
    )
    diff_p.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="relative tolerance for numeric metrics (default 0 = exact)",
    )
    return parser


def _load(path: str) -> CampaignSpec:
    return load_campaign(path)


def _resolve_store(campaign: CampaignSpec, flag: Optional[str]) -> RunStore:
    root = flag or campaign.store
    if not root:
        raise CampaignError(
            f"campaign {campaign.name!r} names no store — pass --store DIR "
            f"or add a 'store' field to the campaign file"
        )
    return RunStore(root)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            if args.jobs is not None and args.jobs < 1:
                print("--jobs must be >= 1", file=sys.stderr)
                return 2
            campaign = _load(args.campaign)
            store = _resolve_store(campaign, args.store)
            if args.heartbeat < 0:
                print("--heartbeat must be non-negative", file=sys.stderr)
                return 2
            run = run_campaign(
                campaign,
                store,
                jobs=args.jobs,
                shard_size=args.shard_size,
                verbose=not args.quiet,
                heartbeat_s=args.heartbeat,
            )
            if args.quiet:
                print(run.summary())
            return 0

        if args.command == "status":
            campaign = _load(args.campaign)
            store = _resolve_store(campaign, args.store)
            statuses = campaign_status(campaign, store)
            print(status_table(statuses))
            n_stored = sum(1 for s in statuses if s.state == "stored")
            print(f"{n_stored}/{len(statuses)} stored in {store.root}")
            return 0

        if args.command == "report":
            campaign = _load(args.campaign)
            store = _resolve_store(campaign, args.store)
            text = campaign_report(campaign, store)
            if args.out:
                Path(args.out).write_text(text, encoding="utf-8")
                print(f"wrote {args.out}")
            else:
                print(text)
            return 0

        if args.command == "diff":
            campaign = _load(args.campaign) if args.campaign else None
            side_a = load_fingerprints(args.side_a, campaign)
            side_b = load_fingerprints(args.side_b, campaign)
            diff = diff_fingerprints(side_a, side_b, tolerance=args.tolerance)
            print(diff.render())
            return 0 if diff.clean else 1

    except (CampaignError, StoreError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
