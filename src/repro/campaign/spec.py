"""Declarative experiment campaigns: a named list of scenarios as data.

A :class:`CampaignSpec` turns "run these N scenarios and keep the
results" into one JSON file::

    {
      "name": "nightly",
      "description": "the canonical scenarios plus a scheme sweep",
      "store": "results/nightly-store",
      "jobs": 4,
      "scenarios": [
        "fig4_single_vm",
        {"name": "web_schemes", "workload": "web", "base": "quick",
         "sweep": {"scheme": ["wb", "sib", "lbica"]}}
      ]
    }

Entries are either registered scenario names (the
:mod:`repro.scenario.registry` library) or inline scenario dicts in the
:class:`~repro.scenario.ScenarioSpec` schema — including ``sweep`` axes,
which :meth:`CampaignSpec.expand` expands exactly like
``ScenarioSpec.expand()``.  Validation is strict at every level (unknown
keys raise), and expanded scenario names must be unique across the whole
campaign: the name is how reports and diffs line runs up.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from repro.scenario.registry import get_scenario
from repro.scenario.spec import ScenarioSpec, scenario_from_dict

__all__ = ["CampaignSpec", "CampaignError", "load_campaign"]

#: Top-level keys of a campaign spec dict.
_CAMPAIGN_KEYS = {"name", "description", "scenarios", "store", "jobs"}


class CampaignError(ValueError):
    """Raised for malformed campaign specifications."""


@dataclass
class CampaignSpec:
    """One experiment campaign, fully described as data.

    Attributes:
        name: Campaign name (reports, store history, progress lines).
        scenarios: Registered scenario names and/or inline scenario
            dicts (each may carry ``sweep`` axes).
        description: One-line human description.
        store: Default run-store directory (the CLI's ``--store``
            overrides it).
        jobs: Default process fan-out (the CLI's ``--jobs`` overrides).
    """

    name: str
    scenarios: list = field(default_factory=list)
    description: str = ""
    store: Optional[str] = None
    jobs: int = 1

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`CampaignError` on any inconsistency.

        Every entry is resolved/built (registry names looked up, inline
        dicts validated by the scenario layer) and the expanded grid is
        checked for name collisions — a malformed campaign fails here,
        never mid-run.
        """
        if not self.name or not isinstance(self.name, str):
            raise CampaignError("campaign: name must be a non-empty string")
        if not isinstance(self.scenarios, Sequence) or isinstance(
            self.scenarios, (str, bytes)
        ):
            raise CampaignError(
                f"campaign {self.name!r}: scenarios must be a list"
            )
        if not self.scenarios:
            raise CampaignError(
                f"campaign {self.name!r}: scenarios must be non-empty"
            )
        if self.store is not None and not isinstance(self.store, str):
            raise CampaignError(
                f"campaign {self.name!r}: store must be a path string"
            )
        if isinstance(self.jobs, bool) or not isinstance(self.jobs, int) or (
            self.jobs < 1
        ):
            raise CampaignError(
                f"campaign {self.name!r}: jobs must be a positive int"
            )
        self.expand()  # resolves every entry and checks name uniqueness

    # ------------------------------------------------------------------
    # Dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data dict; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": copy.deepcopy(self.scenarios),
            "store": self.store,
            "jobs": self.jobs,
        }

    def to_json(self, indent: int = 2) -> str:
        """The campaign as formatted JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "CampaignSpec":
        """Build and validate a campaign from its dict form.

        Raises:
            CampaignError: On unknown keys or invalid values (scenario
                entries get the scenario layer's own strict validation).
        """
        if not isinstance(spec, Mapping):
            raise CampaignError(
                f"campaign spec: expected a mapping, got {type(spec).__name__}"
            )
        unknown = set(spec) - _CAMPAIGN_KEYS
        if unknown:
            raise CampaignError(f"campaign spec: unknown keys {sorted(unknown)}")
        if "name" not in spec:
            raise CampaignError("campaign spec: missing required key 'name'")
        built = cls(
            name=spec["name"],
            scenarios=copy.deepcopy(list(spec.get("scenarios") or [])),
            description=spec.get("description", ""),
            store=spec.get("store"),
            jobs=spec.get("jobs", 1),
        )
        built.validate()
        return built

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[ScenarioSpec]:
        """The flat scenario grid this campaign runs (sweeps expanded).

        Registered names resolve through the scenario registry; inline
        dicts build through ``scenario_from_dict``.  Expanded names must
        be unique campaign-wide.
        """
        out: list[ScenarioSpec] = []
        for i, entry in enumerate(self.scenarios):
            where = f"campaign {self.name!r}: scenarios[{i}]"
            if isinstance(entry, str):
                try:
                    spec = get_scenario(entry)
                except ValueError as exc:
                    raise CampaignError(f"{where}: {exc}") from None
            elif isinstance(entry, Mapping):
                try:
                    spec = scenario_from_dict(entry)
                except ValueError as exc:
                    raise CampaignError(f"{where}: {exc}") from None
            else:
                raise CampaignError(
                    f"{where}: expected a registered scenario name or a "
                    f"scenario dict, got {type(entry).__name__}"
                )
            out.extend(spec.expand())
        names = [spec.name for spec in out]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise CampaignError(
                f"campaign {self.name!r}: duplicate scenario names "
                f"{duplicates} after expansion — reports and diffs line "
                f"runs up by name, so every expanded scenario needs its own"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignSpec({self.name!r}, {len(self.scenarios)} entries)"


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Parse a JSON campaign file and validate it."""
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CampaignError(f"{path}: invalid JSON ({exc})") from None
    try:
        return CampaignSpec.from_dict(spec)
    except ValueError as exc:
        # ValueError also covers the scenario layer's errors, so any
        # malformed file reports its path
        raise CampaignError(f"{path}: {exc}") from None
