"""Campaign status, Markdown summaries, and cross-campaign diffs.

Three read-only views over a campaign + store:

- :func:`campaign_status` — which scenarios are stored / missing /
  corrupt (the resumability dashboard);
- :func:`campaign_report` — a Markdown/ASCII summary of every stored
  scenario's headline stats, built on the fixed-width renderers in
  :mod:`repro.analysis.report`;
- :func:`diff_fingerprints` — field-by-field comparison of two
  fingerprint sets (two stores, a store vs. ``benchmarks/golden/``, or
  any ``BENCH_suite.json``), flagging latency/load **regressions**
  separately from mere divergence.  Rendering goes through
  :func:`repro.analysis.report.comparison_table`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.analysis.report import comparison_table, format_table
from repro.campaign.spec import CampaignSpec
from repro.store import RunKey, RunStore, SchemaMismatchError, StoreError

__all__ = [
    "ScenarioStatus",
    "campaign_status",
    "status_table",
    "campaign_report",
    "MetricDelta",
    "CampaignDiff",
    "diff_fingerprints",
    "load_fingerprints",
]


# ----------------------------------------------------------------------
# Status
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioStatus:
    """One scenario's standing in a store.

    ``wall_s`` and ``events_per_sec`` come from the stored artifact's
    ``perf`` section when present (timed write-through runs record
    them); ``None`` for missing/corrupt scenarios and untimed artifacts.
    """

    name: str
    workload: str
    scheme: str
    digest: str
    state: str  # "stored" | "missing" | "corrupt" | "schema-mismatch"
    detail: str = ""
    wall_s: Optional[float] = None
    events_per_sec: Optional[float] = None


def _statuses_with_artifacts(campaign: CampaignSpec, store: RunStore):
    """Classify every scenario, keeping each loaded artifact.

    One ``store.get`` per scenario serves both the status view and the
    report's metric rows — the verified artifact rides along instead of
    being re-read (and re-hashed) per consumer.
    """
    out = []
    for spec in campaign.expand():
        digest = RunKey.for_spec(spec).digest
        workload = spec.workload if isinstance(spec.workload, str) else "<inline>"
        artifact = None
        if not store.contains(digest):
            state, detail = "missing", ""
        else:
            try:
                artifact = store.get(digest)
                state, detail = "stored", ""
            except SchemaMismatchError as exc:
                state, detail = "schema-mismatch", str(exc)
            except StoreError as exc:
                state, detail = "corrupt", str(exc)
        perf = artifact.perf if artifact is not None else {}
        status = ScenarioStatus(
            name=spec.name,
            workload=workload,
            scheme=spec.scheme,
            digest=digest,
            state=state,
            detail=detail,
            wall_s=perf.get("wall_clock_s"),
            events_per_sec=perf.get("events_per_sec"),
        )
        out.append((status, artifact))
    return out


def campaign_status(
    campaign: CampaignSpec, store: RunStore
) -> list[ScenarioStatus]:
    """Per-scenario store standing, in campaign order."""
    return [status for status, _ in _statuses_with_artifacts(campaign, store)]


def status_table(statuses: list[ScenarioStatus]) -> str:
    """Fixed-width status listing (the ``campaign status`` output)."""
    return format_table(
        ["scenario", "workload", "scheme", "state", "wall s", "events/s", "key"],
        [
            (
                s.name,
                s.workload,
                s.scheme,
                s.state,
                f"{s.wall_s:.2f}" if s.wall_s is not None else "-",
                f"{s.events_per_sec:,.0f}"
                if s.events_per_sec is not None
                else "-",
                s.digest[:12],
            )
            for s in statuses
        ],
        title="campaign status",
    )


# ----------------------------------------------------------------------
# Markdown report
# ----------------------------------------------------------------------
def campaign_report(campaign: CampaignSpec, store: RunStore) -> str:
    """A Markdown summary of every stored scenario's headline numbers."""
    classified = _statuses_with_artifacts(campaign, store)
    stored = [(s, art) for s, art in classified if s.state == "stored"]
    pending = [s for s, _ in classified if s.state != "stored"]

    lines = [f"# Campaign `{campaign.name}`", ""]
    if campaign.description:
        lines += [campaign.description, ""]
    lines += [
        f"{len(classified)} scenarios — {len(stored)} stored, "
        f"{len(pending)} not yet runnable from the store.",
        "",
    ]
    if stored:
        rows = []
        for _, artifact in stored:
            overall = artifact.latency.get("overall", {})
            hit_ratio = artifact.fingerprint.get("cache_stats", {}).get(
                "read_hit_ratio", 0.0
            )
            rows.append(
                (
                    artifact.name,
                    f"{artifact.workload}/{artifact.scheme}",
                    artifact.completed,
                    artifact.mean_latency,
                    overall.get("p95", float("nan")),
                    overall.get("p99", float("nan")),
                    f"{hit_ratio:.2%}",
                    artifact.fingerprint.get("events_processed", 0),
                )
            )
        lines += [
            "```",
            format_table(
                [
                    "scenario",
                    "workload/scheme",
                    "completed",
                    "mean µs",
                    "p95 µs",
                    "p99 µs",
                    "hit ratio",
                    "events",
                ],
                rows,
            ),
            "```",
            "",
        ]
    if pending:
        lines.append("Pending (run `repro campaign run` to fill in):")
        lines += [f"- `{s.name}` — {s.state}" for s in pending]
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
#: Fingerprint leaves where *lower is better*: an increase beyond the
#: tolerance is a regression, not just a divergence.
_LOWER_IS_BETTER = ("latency", "load_sum", "qtime")


def _flatten(prefix: str, node: object, out: dict[str, object]) -> None:
    if isinstance(node, dict):
        for key in sorted(node):
            _flatten(f"{prefix}.{key}" if prefix else str(key), node[key], out)
    else:
        out[prefix] = node


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class MetricDelta:
    """One diverging fingerprint metric."""

    metric: str
    a: object
    b: object
    verdict: str  # "REGRESSED" | "improved" | "DIVERGES"

    @property
    def is_regression(self) -> bool:
        """Whether this delta moves a lower-is-better metric the wrong way."""
        return self.verdict.startswith("REGRESSED")


@dataclass
class CampaignDiff:
    """Field-by-field comparison of two fingerprint sets."""

    deltas: dict[str, list[MetricDelta]] = field(default_factory=dict)
    identical: list[str] = field(default_factory=list)
    only_a: list[str] = field(default_factory=list)
    only_b: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every shared scenario matched exactly (or within tolerance)."""
        return not self.deltas

    @property
    def regressions(self) -> list[tuple[str, MetricDelta]]:
        """Every (scenario, delta) flagged as a regression."""
        return [
            (name, delta)
            for name, deltas in self.deltas.items()
            for delta in deltas
            if delta.is_regression
        ]

    def render(self) -> str:
        """Human-readable diff (one comparison table per diverging scenario)."""
        lines = [
            f"{len(self.identical) + len(self.deltas)} scenarios compared: "
            f"{len(self.identical)} identical, {len(self.deltas)} diverging "
            f"({len(self.regressions)} regressed metrics)"
        ]
        if self.only_a:
            lines.append(f"only in A: {', '.join(self.only_a)}")
        if self.only_b:
            lines.append(f"only in B: {', '.join(self.only_b)}")
        for name in sorted(self.deltas):
            rows = {
                delta.metric: (
                    _render_value(delta.a),
                    _render_value(delta.b),
                    delta.verdict,
                )
                for delta in self.deltas[name]
            }
            lines.append("")
            lines.append(
                comparison_table(
                    rows, title=f"scenario {name}", labels=("A", "B")
                )
            )
        return "\n".join(lines)


def _render_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _delta_verdict(
    metric: str, a: object, b: object, tolerance: float
) -> Optional[str]:
    """The verdict for one metric pair, or ``None`` when acceptable."""
    if a == b:
        return None
    if _is_number(a) and _is_number(b):
        if math.isnan(a) and math.isnan(b):  # nan != nan, but both "no data"
            return None
        rel = abs(b - a) / abs(a) if a else math.inf
        leaf = metric.rsplit(".", 1)[-1]
        if any(marker in leaf for marker in _LOWER_IS_BETTER):
            if rel <= tolerance:
                return None
            pct = f"{rel:.2%}" if math.isfinite(rel) else "∞"
            return f"REGRESSED (+{pct})" if b > a else f"improved (-{pct})"
        # counts/ratios/structure: any change beyond tolerance diverges
        if rel <= tolerance:
            return None
    return "DIVERGES"


def diff_fingerprints(
    a: Mapping[str, dict],
    b: Mapping[str, dict],
    tolerance: float = 0.0,
) -> CampaignDiff:
    """Compare two ``{scenario name: fingerprint}`` sets.

    Args:
        a: Baseline side.
        b: Candidate side.
        tolerance: Relative tolerance for numeric metrics (``0.0`` =
            exact, the right setting for this deterministic simulator;
            loosen only when comparing across platforms).

    Returns:
        A :class:`CampaignDiff`; scenarios present on only one side are
        listed informationally and never fail the diff.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    diff = CampaignDiff(
        only_a=sorted(set(a) - set(b)),
        only_b=sorted(set(b) - set(a)),
    )
    for name in sorted(set(a) & set(b)):
        flat_a: dict[str, object] = {}
        flat_b: dict[str, object] = {}
        _flatten("", a[name], flat_a)
        _flatten("", b[name], flat_b)
        deltas: list[MetricDelta] = []
        for metric in sorted(set(flat_a) | set(flat_b)):
            if metric not in flat_a:
                deltas.append(
                    MetricDelta(metric, "<absent>", flat_b[metric], "DIVERGES")
                )
                continue
            if metric not in flat_b:
                deltas.append(
                    MetricDelta(metric, flat_a[metric], "<absent>", "DIVERGES")
                )
                continue
            verdict = _delta_verdict(
                metric, flat_a[metric], flat_b[metric], tolerance
            )
            if verdict is not None:
                deltas.append(
                    MetricDelta(metric, flat_a[metric], flat_b[metric], verdict)
                )
        if deltas:
            diff.deltas[name] = deltas
        else:
            diff.identical.append(name)
    return diff


def _looks_like_fingerprint(entry: object) -> bool:
    return isinstance(entry, dict) and "completed" in entry and "scheme" in entry


def load_fingerprints(
    source: Union[str, Path, RunStore],
    campaign: Optional[CampaignSpec] = None,
) -> dict[str, dict]:
    """``{scenario name: fingerprint}`` from any comparable source.

    Accepts a :class:`RunStore` (or a store directory path), a golden
    file in the ``benchmarks/golden/`` format, or a ``BENCH_suite.json``
    document.  Grid entries (``{sub: fingerprint}``) flatten to
    ``"entry/sub"`` names.

    Args:
        source: Store / directory / JSON file to read.
        campaign: When given and the source is a store, only artifacts
            whose keys the campaign's scenarios address are loaded —
            this disambiguates stores that hold several campaigns (or
            the same scenario under several configs).
    """
    if isinstance(source, RunStore):
        store = source
    else:
        path = Path(source)
        if not path.is_dir():
            return _fingerprints_from_document(path)
        store = RunStore(path)
    out: dict[str, dict] = {}
    if campaign is not None:
        for spec in campaign.expand():
            key = RunKey.for_spec(spec)
            if store.contains(key):
                out[spec.name] = store.get(key).fingerprint
        return out
    for digest in store.digests():
        artifact = store.get(digest)
        if artifact.name in out:
            raise ValueError(
                f"store {store.root}: scenario name {artifact.name!r} is "
                f"stored under several keys (different configs?) — pass the "
                f"campaign file to `diff` to disambiguate"
            )
        out[artifact.name] = artifact.fingerprint
    return out


def _fingerprints_from_document(path: Path) -> dict[str, dict]:
    doc = json.loads(path.read_text(encoding="utf-8"))
    scenarios = doc.get("scenarios") if isinstance(doc, dict) else None
    if not isinstance(scenarios, dict):
        raise ValueError(
            f"{path}: not a golden/suite document (no 'scenarios' mapping)"
        )
    out: dict[str, dict] = {}
    for name, entry in scenarios.items():
        if _looks_like_fingerprint(entry):
            out[name] = entry
            continue
        if isinstance(entry, dict) and _looks_like_fingerprint(entry.get("stats")):
            out[name] = entry["stats"]  # BENCH_suite.json single scenario
            continue
        nested = entry.get("stats") if isinstance(entry, dict) else None
        nested = nested if isinstance(nested, dict) else entry
        if isinstance(nested, dict) and all(
            _looks_like_fingerprint(sub) for sub in nested.values()
        ):
            for sub, fingerprint in nested.items():  # grid entries
                out[f"{name}/{sub}"] = fingerprint
            continue
        raise ValueError(f"{path}: scenario {name!r} is not a fingerprint")
    return out
