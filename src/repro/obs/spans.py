"""Request-lifecycle span recording and Chrome trace-event export.

:class:`SpanTracer` holds completed spans ("X" phase events in the
Chrome trace-event format) in a bounded buffer.  Because every
:class:`~repro.io.request.Request` and :class:`~repro.io.request.
DeviceOp` carries its own timestamps (``arrival`` / ``enqueue_time`` /
``dispatch_time`` / ``complete_time``), the whole lifecycle is emitted
*retroactively from completion hooks* — no new instrumentation sits on
the hot submit/dispatch paths.

Export targets Perfetto / ``chrome://tracing``: simulated microseconds
map directly onto the format's ``ts``/``dur`` microsecond fields, so a
run opens with its real time axis.  Processes ("pids") separate the
request view from each device; tenant ids become request-track thread
ids, so a consolidated run shows one lane per VM.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

__all__ = ["SpanTracer", "TRACE_REQUIRED_FIELDS"]

#: Fields every exported trace event must carry (the schema tests and
#: the CI obs-smoke job validate these).
TRACE_REQUIRED_FIELDS = ("ph", "ts", "pid", "tid", "name")


class SpanTracer:
    """A bounded buffer of completed spans with Chrome trace export.

    Args:
        capacity: Maximum retained spans; further emits are counted in
            :attr:`dropped` instead of stored (trace truncation is
            visible, never silent).
    """

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: list[dict[str, Any]] = []
        self.dropped = 0
        # pid 1 is reserved for the request view; devices register after.
        self._processes: dict[str, int] = {"requests": 1}
        self._threads: dict[tuple[int, int], str] = {}

    # ------------------------------------------------------------------
    # Track registry
    # ------------------------------------------------------------------
    def register_process(self, name: str) -> int:
        """The pid for a named track group, allocating on first use."""
        pid = self._processes.get(name)
        if pid is None:
            pid = len(self._processes) + 1
            self._processes[name] = pid
        return pid

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        """Attach a display name to one (pid, tid) track."""
        self._threads[(pid, tid)] = name

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        pid: int,
        tid: int,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record one completed span ("X" phase, microsecond units)."""
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        event: dict[str, Any] = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict[str, Any]:
        """The recorded spans as a Chrome trace-event document.

        Metadata ("M" phase) events name every registered process and
        thread so Perfetto shows ``requests`` / ``ssd`` / ``hdd`` track
        groups and per-tenant lanes instead of bare numbers.
        """
        meta: list[dict[str, Any]] = []
        for name, pid in sorted(self._processes.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "ts": 0.0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for (pid, tid), name in sorted(self._threads.items()):
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "ts": 0.0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }

    def chrome_trace_json(self) -> str:
        """:meth:`chrome_trace` serialized (the ``trace.json`` payload)."""
        return json.dumps(self.chrome_trace(), sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanTracer(events={len(self.events)}, dropped={self.dropped})"
