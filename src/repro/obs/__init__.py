"""Runtime observability: metrics hub, lifecycle spans, live telemetry.

Everything here is **opt-in** (``SystemConfig.obs.enabled``, or a
scenario spec's ``obs:`` block) and **zero-overhead when disabled**: a
default config wires no observers, installs no hooks, and runs the exact
event sequence of a build without this package.  See
``docs/ARCHITECTURE.md`` ("Observability layer") for the contract.
"""

from repro.obs.config import ObsConfig
from repro.obs.hub import Histogram, MetricsHub, strip_wall
from repro.obs.runtime import RunTelemetry
from repro.obs.spans import TRACE_REQUIRED_FIELDS, SpanTracer

__all__ = [
    "ObsConfig",
    "Histogram",
    "MetricsHub",
    "strip_wall",
    "RunTelemetry",
    "SpanTracer",
    "TRACE_REQUIRED_FIELDS",
]
