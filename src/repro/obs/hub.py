"""The metrics hub: counters, gauges, histograms, and the snapshot series.

:class:`MetricsHub` is deliberately dumb storage — it knows nothing
about simulators, devices, or tenants.  The
:class:`~repro.obs.runtime.RunTelemetry` orchestrator pulls system state
once per monitoring interval and pushes it here; the hub's job is to
hold it in JSON-stable shapes and serialize the per-interval series as
JSONL.

Determinism contract: everything the hub stores is a pure function of
the simulation *except* values filed under a ``"wall"`` key (wall-clock
seconds, events per wall-second).  Consumers that diff two runs of the
same scenario strip ``"wall"`` sub-dicts first — that is exactly what
:func:`strip_wall` is for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Histogram", "MetricsHub", "strip_wall"]


@dataclass
class Histogram:
    """A power-of-two bucketed histogram of non-negative samples.

    Buckets are keyed by ``ceil(log2(value))`` (values ``<= 1`` land in
    bucket 0), which keeps the bucket map small and the serialized form
    deterministic without pre-declared bounds.
    """

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        bucket = 0
        if value > 1.0:
            bucket = max(0, (int(value) - 1).bit_length())
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of all observed samples."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-stable form (bucket keys stringified and sorted)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }


class MetricsHub:
    """Counters, gauges, histograms, and the per-interval snapshot series."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        #: One row per monitoring interval (plain dicts, JSONL-ready).
        self.series: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to a monotonically increasing counter."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a named histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------
    # Snapshot series
    # ------------------------------------------------------------------
    def add_snapshot(self, row: Mapping[str, Any]) -> None:
        """Append one per-interval snapshot row to the series."""
        self.series.append(dict(row))

    def jsonl(self) -> str:
        """The snapshot series as JSONL (one sorted-key object per line)."""
        return "".join(
            json.dumps(row, sort_keys=True) + "\n" for row in self.series
        )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Everything but the series, in JSON-stable form."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsHub(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, intervals={len(self.series)})"
        )


def strip_wall(row: Any) -> Any:
    """A deep copy of ``row`` with every ``"wall"`` key removed.

    The determinism comparison for metrics series: two runs of the same
    scenario must produce identical rows after stripping wall-clock
    fields (which legitimately differ between runs).
    """
    if isinstance(row, dict):
        return {k: strip_wall(v) for k, v in row.items() if k != "wall"}
    if isinstance(row, list):
        return [strip_wall(item) for item in row]
    return row
