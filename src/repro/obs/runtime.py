"""The run-telemetry orchestrator: wires the obs layer into one system.

:class:`RunTelemetry` is constructed by
:class:`~repro.experiments.system.ExperimentSystem` **only when**
``config.obs.enabled`` — a disabled config never builds this object, so
the disabled path costs exactly one attribute check per run.

Design rules (all enforced here, not in the instrumented layers):

- **No extra simulated events.**  The metrics snapshot rides the
  existing :class:`~repro.trace.iostat.IostatMonitor` tick via its
  sample-hook list; span emission rides the existing device
  ``complete`` observers and controller completion hooks.  The event
  sequence — and therefore ``events_processed`` and every stats
  fingerprint — is identical with telemetry on or off.
- **Pull, don't push.**  Per-interval state (queue depths, dirty
  ratio, tenant occupancy, SLO compliance) is read from the layers'
  ``telemetry_snapshot()`` helpers at tick time; nothing in the
  per-event hot paths writes to the hub.
- **Wall-clock values are quarantined** under ``"wall"`` keys so the
  deterministic part of the series diffs clean across runs (see
  :func:`~repro.obs.hub.strip_wall`).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from repro.obs.config import ObsConfig
from repro.obs.hub import MetricsHub
from repro.obs.spans import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import ExperimentSystem
    from repro.io.request import DeviceOp, Request
    from repro.trace.iostat import IntervalSample

__all__ = ["RunTelemetry"]

#: The request view's fixed pid in exported traces.
_REQUESTS_PID = 1


class RunTelemetry:
    """Per-run telemetry: metrics series, lifecycle spans, heartbeat.

    Args:
        system: The fully wired :class:`ExperimentSystem` to observe.
        obs: The (already validated) observability switches.
    """

    def __init__(self, system: "ExperimentSystem", obs: ObsConfig) -> None:
        self.system = system
        self.obs = obs
        self.hub: Optional[MetricsHub] = MetricsHub() if obs.metrics else None
        self.spans: Optional[SpanTracer] = (
            SpanTracer(obs.trace_capacity) if obs.trace else None
        )
        # Mid-run events_processed reads require the engine's live
        # counter mode (the default batch loop flushes its count only on
        # return).  Pop order is unchanged, so results are identical.
        system.sim.live_counters = True
        self._last_events = 0
        self._t0 = 0.0
        self._last_wall = 0.0
        self._last_beat = 0.0
        self._horizon_us: Optional[float] = None
        self._wall_run_s = 0.0
        self._slo_seen = 0

        system.monitor.add_sample_hook(self._on_sample)
        if self.spans is not None:
            for device in (system.ssd, system.hdd):
                device.add_transition_observer(
                    "complete", self._device_observer(device)
                )
        system.controller.add_completion_hook(self._on_request_complete)

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def start(self, horizon_us: Optional[float]) -> None:
        """Stamp the wall-clock origin (called just before ``sim.run``)."""
        self._t0 = time.perf_counter()
        self._last_wall = self._t0
        self._last_beat = self._t0
        self._horizon_us = horizon_us

    def finish(self) -> None:
        """Record the total run wall time (called after ``sim.run``)."""
        self._wall_run_s = time.perf_counter() - self._t0

    # ------------------------------------------------------------------
    # Span sources (registered only when tracing is on)
    # ------------------------------------------------------------------
    def _device_observer(
        self, device: Any
    ) -> "Callable[[DeviceOp], None]":
        """A ``complete``-transition observer emitting both device spans.

        ``DeviceOp`` carries its own ``enqueue``/``dispatch``/``complete``
        timestamps, so one completion callback reconstructs the queue
        wait *and* the service span retroactively.
        """
        spans = self.spans
        assert spans is not None
        pid = spans.register_process(device.name)
        spans.name_thread(pid, 0, "queue wait")
        spans.name_thread(pid, 1, "service")

        def observe(op: "DeviceOp") -> None:
            tag = str(op.tag)
            dispatch = op.dispatch_time
            spans.emit(
                f"{tag} wait",
                "queue",
                op.enqueue_time,
                dispatch - op.enqueue_time,
                pid,
                0,
            )
            spans.emit(
                tag,
                "service",
                dispatch,
                op.complete_time - dispatch,
                pid,
                1,
                {"lba": op.lba, "nblocks": op.nblocks},
            )

        return observe

    def _on_request_complete(self, request: "Request") -> None:
        latency = request.complete_time - request.arrival
        hub = self.hub
        if hub is not None:
            hub.observe("request_latency_us", latency)
        spans = self.spans
        if spans is not None:
            tid = request.tenant_id
            spans.name_thread(_REQUESTS_PID, tid, f"tenant {tid}")
            served = sorted(request.served_by)
            spans.emit(
                "write" if request.is_write else "read",
                "request",
                request.arrival,
                latency,
                _REQUESTS_PID,
                tid,
                {
                    "tenant": tid,
                    "hit": (
                        not request.is_write
                        and not request.bypassed
                        and served == ["ssd"]
                    ),
                    "bypassed": request.bypassed,
                    "served_by": served,
                    "lba": request.lba,
                    "nblocks": request.nblocks,
                },
            )

    # ------------------------------------------------------------------
    # Metrics tick (rides the iostat monitor's existing interval event)
    # ------------------------------------------------------------------
    def _on_sample(self, sample: "IntervalSample") -> None:
        system = self.system
        events_total = system.sim.events_processed
        events = events_total - self._last_events
        self._last_events = events_total

        wall_now = time.perf_counter()
        wall_s = wall_now - self._t0
        interval_s = wall_now - self._last_wall
        self._last_wall = wall_now

        hub = self.hub
        if hub is not None:
            store = system.store
            cache = system.controller.telemetry_snapshot()
            dirty_ratio = (
                store.dirty_count / system.config.cache_blocks
                if system.config.cache_blocks
                else 0.0
            )
            tenants: dict[str, dict[str, Any]] = {
                str(tid): {"hit_ratio": ts["read_hit_ratio"]}
                for tid, ts in cache["tenants"].items()
            }
            allocator = system.controller.allocator
            alloc_snapshot = getattr(allocator, "telemetry_snapshot", None)
            if alloc_snapshot is not None:
                alloc = alloc_snapshot()
                for tid, quota in alloc["quotas"].items():
                    entry = tenants.setdefault(str(tid), {})
                    entry["quota"] = quota
                    entry["occupancy"] = alloc["occupancy"].get(tid, 0)
            slo: dict[str, Any] = {}
            if system.slo_monitor is not None:
                slo = system.slo_monitor.telemetry_snapshot()
            row: dict[str, Any] = {
                "interval": sample.index,
                "t_us": sample.t_end,
                "events": events,
                "events_total": events_total,
                "completed": sample.completed,
                "queues": {
                    "ssd": system.ssd.telemetry_snapshot(),
                    "hdd": system.hdd.telemetry_snapshot(),
                },
                "cache": {
                    "read_hit_ratio": cache["read_hit_ratio"],
                    "dirty_ratio": dirty_ratio,
                    "dirty_blocks": cache["dirty_blocks"],
                    "occupied_blocks": cache["occupied_blocks"],
                    "policy": cache["policy"],
                },
                "tenants": tenants,
                "slo": slo,
                "wall": {
                    "s": round(wall_s, 6),
                    "interval_s": round(interval_s, 6),
                    "events_per_sec": (
                        round(events / interval_s) if interval_s > 0 else 0
                    ),
                },
            }
            hub.add_snapshot(row)
            hub.inc("intervals")
            hub.set_gauge("dirty_ratio", dirty_ratio)
            hub.set_gauge("read_hit_ratio", cache["read_hit_ratio"])
            hub.observe("interval_events", float(events))

        if self.obs.heartbeat_s > 0 and (
            wall_now - self._last_beat >= self.obs.heartbeat_s
        ):
            self._last_beat = wall_now
            self._heartbeat(sample, events_total, wall_s)

    def _heartbeat(
        self, sample: "IntervalSample", events_total: int, wall_s: float
    ) -> None:
        """One live progress line on stderr (stdout stays parseable)."""
        sim_s = sample.t_end / 1e6
        parts = [f"sim {sim_s:.2f}s"]
        horizon = self._horizon_us
        if horizon:
            frac = min(1.0, sample.t_end / horizon)
            eta = wall_s * (1.0 - frac) / frac if frac > 0 else float("inf")
            parts[0] += f"/{horizon / 1e6:.2f}s ({frac:.0%})"
            parts.append(f"eta {eta:.1f}s")
        parts.append(f"wall {wall_s:.1f}s")
        rate = events_total / wall_s if wall_s > 0 else 0.0
        parts.append(f"{rate:,.0f} ev/s")
        hit = self.system.controller.stats.read_hit_ratio
        parts.append(f"hit {hit:.1%}")
        print(f"[obs] {' | '.join(parts)}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # Results and export
    # ------------------------------------------------------------------
    def result_section(self) -> dict[str, Any]:
        """The ``RunResult.telemetry`` payload (plain data, JSON-ready)."""
        section: dict[str, Any] = {
            "wall": {"run_s": round(self._wall_run_s, 6)},
        }
        if self.hub is not None:
            section["metrics"] = {
                "series": [dict(row) for row in self.hub.series],
                **self.hub.summary(),
            }
        if self.spans is not None:
            section["trace"] = {
                "events": len(self.spans.events),
                "dropped": self.spans.dropped,
                "capacity": self.spans.capacity,
            }
        return section

    def metrics_jsonl(self) -> str:
        """The per-interval series as JSONL (empty without metrics)."""
        return self.hub.jsonl() if self.hub is not None else ""

    def write_metrics_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the metrics series; returns the written path."""
        out = Path(path)
        out.write_text(self.metrics_jsonl(), encoding="utf-8")
        return out

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace-event document; returns the path.

        Raises:
            ValueError: If the run recorded no spans (``obs.trace`` off).
        """
        if self.spans is None:
            raise ValueError("tracing was not enabled for this run (obs.trace)")
        out = Path(path)
        out.write_text(self.spans.chrome_trace_json(), encoding="utf-8")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunTelemetry(metrics={self.hub is not None}, "
            f"trace={self.spans is not None})"
        )
