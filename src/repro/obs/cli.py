"""``repro obs`` — record, summarize, and export run telemetry.

Examples::

    repro obs record fig4_single_vm --quick --horizon 6 --trace --out obs_out
    repro obs record churn_consolidated --heartbeat 2 --out obs_out
    repro obs summary obs_out/metrics.jsonl
    repro obs summary results/store/<digest>.json      # stored artifact
    repro obs export-trace fig4_single_vm --quick --horizon 6 --out trace.json
    python -m repro obs record ...                      # module form

``record`` builds the named (or spec-file) scenario with telemetry
armed, runs it, and writes ``metrics.jsonl`` (the per-interval series)
and — with ``--trace`` — ``trace.json`` (Chrome trace-event JSON; open
it at https://ui.perfetto.dev).  The simulation itself is bit-identical
to an untelemetered run: same fingerprints, same event counts.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Record, summarize, and export run telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record_p = sub.add_parser(
        "record", help="run a scenario with telemetry and export the results"
    )
    _add_scenario_args(record_p)
    record_p.add_argument(
        "--out",
        default="obs_out",
        help="output directory for metrics.jsonl / trace.json (default obs_out)",
    )
    record_p.add_argument(
        "--trace",
        action="store_true",
        help="also record lifecycle spans and write trace.json",
    )
    record_p.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip the metrics series (with --trace: spans only)",
    )
    record_p.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="S",
        help="print a live progress line every S wall-clock seconds",
    )
    record_p.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="retain at most N spans (default: ObsConfig default)",
    )

    summary_p = sub.add_parser(
        "summary",
        help="summarize a metrics.jsonl series or a stored artifact's telemetry",
    )
    summary_p.add_argument(
        "path", help="metrics .jsonl file, or an artifact/summary .json"
    )

    export_p = sub.add_parser(
        "export-trace",
        help="record a scenario (spans only) and write one Chrome trace file",
    )
    _add_scenario_args(export_p)
    export_p.add_argument(
        "--out", default="trace.json", help="trace file path (default trace.json)"
    )
    export_p.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="retain at most N spans (default: ObsConfig default)",
    )
    return parser


def _add_scenario_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "scenario", help="registered scenario name, or a scenario spec .json file"
    )
    sub.add_argument(
        "--quick",
        action="store_true",
        help="run on the quick config base instead of the spec's own",
    )
    sub.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="N",
        help="truncate the run at N monitoring intervals",
    )


def _load_spec(name: str) -> Any:
    """A scenario by registry name, or parsed from a spec file path."""
    from repro.scenario.registry import get_scenario, scenario_descriptions
    from repro.scenario.spec import load_scenario

    if name.endswith(".json") or Path(name).exists():
        return load_scenario(name)
    try:
        return get_scenario(name)
    except KeyError:
        known = ", ".join(sorted(scenario_descriptions()))
        raise ValueError(f"unknown scenario {name!r} (known: {known})") from None


def _record(args: argparse.Namespace, *, trace: bool, metrics: bool) -> Any:
    """Build + run one telemetered scenario; returns the live system."""
    spec = _load_spec(args.scenario)
    if args.quick:
        spec = dataclasses.replace(spec, base="quick")
    if args.horizon is not None:
        spec = dataclasses.replace(spec, horizon_intervals=args.horizon)
    cfg = spec.to_config()
    obs = dataclasses.replace(
        cfg.obs,
        enabled=True,
        metrics=metrics,
        trace=trace,
        heartbeat_s=getattr(args, "heartbeat", 0.0),
    )
    if getattr(args, "trace_capacity", None) is not None:
        obs = dataclasses.replace(obs, trace_capacity=args.trace_capacity)
    obs.validate()
    cfg = dataclasses.replace(cfg, obs=obs)
    system = spec.build(cfg, trace_records=False)
    until = None
    if spec.horizon_intervals is not None:
        until = spec.horizon_intervals * cfg.interval_us
    result = system.run(until_us=until)
    print(
        f"[obs] {spec.name}: {result.completed} requests, "
        f"{result.events_processed} events, "
        f"mean latency {result.mean_latency:.1f}us"
    )
    return system


def _summarize_series(rows: Sequence[dict[str, Any]]) -> str:
    lines = [f"intervals: {len(rows)}"]
    if rows:
        last = rows[-1]
        events = last.get("events_total")
        if events is not None:
            lines.append(f"events: {events}")
        cache = last.get("cache") or {}
        if "read_hit_ratio" in cache:
            lines.append(f"final read hit ratio: {cache['read_hit_ratio']:.4f}")
        if "dirty_ratio" in cache:
            lines.append(f"final dirty ratio: {cache['dirty_ratio']:.4f}")
        wall = last.get("wall") or {}
        if "s" in wall:
            lines.append(f"wall: {wall['s']:.3f}s")
            if events is not None and wall["s"]:
                lines.append(f"events/s (wall): {round(events / wall['s'])}")
    return "\n".join(lines)


def _summarize_telemetry(telemetry: dict[str, Any]) -> str:
    lines = []
    wall = telemetry.get("wall") or {}
    if "run_s" in wall:
        lines.append(f"wall run: {wall['run_s']:.3f}s")
    metrics = telemetry.get("metrics") or {}
    series = metrics.get("series") or []
    if series:
        lines.append(_summarize_series(series))
    for kind in ("counters", "gauges"):
        table = metrics.get(kind) or {}
        for name in sorted(table):
            lines.append(f"{kind[:-1]} {name}: {table[name]}")
    for name, hist in sorted((metrics.get("histograms") or {}).items()):
        lines.append(
            f"histogram {name}: count={hist['count']} mean={hist['mean']:.1f} "
            f"max={hist['max']:.1f}"
        )
    trace = telemetry.get("trace") or {}
    if trace:
        lines.append(
            f"trace: {trace.get('events', 0)} spans, "
            f"{trace.get('dropped', 0)} dropped"
        )
    return "\n".join(lines) if lines else "no telemetry recorded"


def _summary(path: str) -> int:
    text = Path(path).read_text(encoding="utf-8")
    if path.endswith(".jsonl"):
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
        print(_summarize_series(rows))
        return 0
    payload = json.loads(text)
    telemetry = payload.get("telemetry") if isinstance(payload, dict) else None
    if not telemetry:
        print(f"{path}: no 'telemetry' section", file=sys.stderr)
        return 1
    print(_summarize_telemetry(telemetry))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "record":
            metrics = not args.no_metrics
            system = _record(args, trace=args.trace, metrics=metrics)
            telemetry = system.telemetry
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            if metrics:
                path = telemetry.write_metrics_jsonl(out / "metrics.jsonl")
                print(f"wrote {path}")
            if args.trace:
                path = telemetry.write_trace(out / "trace.json")
                print(f"wrote {path}")
            return 0

        if args.command == "summary":
            return _summary(args.path)

        if args.command == "export-trace":
            system = _record(args, trace=True, metrics=False)
            path = system.telemetry.write_trace(args.out)
            print(f"wrote {path}")
            return 0

    except (ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
