"""Observability configuration: the opt-in switchboard.

:class:`ObsConfig` is the ``obs`` field of
:class:`~repro.config.SystemConfig` (and the ``obs:`` block of a
scenario spec).  Everything defaults to *off*: a default-constructed
config builds a system with zero telemetry wiring — no observers
registered, no hooks installed, no per-event work — so every committed
golden stays bit-identical.  Flipping ``enabled`` arms the
:class:`~repro.obs.runtime.RunTelemetry` orchestrator, which then honors
the finer-grained ``metrics`` / ``trace`` / ``heartbeat_s`` switches.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObsConfig"]


@dataclass
class ObsConfig:
    """Run-telemetry switches (all opt-in; the default is fully off).

    Attributes:
        enabled: Master switch.  ``False`` (the default) wires nothing —
            the run is bit-identical to a build without the obs layer.
        metrics: Collect the per-interval metrics series (events/s,
            queue depths, dirty ratio, tenant occupancy, SLO
            compliance) through the :class:`~repro.obs.hub.MetricsHub`.
        trace: Record request/device lifecycle spans for Chrome
            trace-event export (Perfetto / ``chrome://tracing``).
        trace_capacity: Span-buffer bound; spans past it are counted in
            ``dropped`` instead of retained (mirrors the blktrace ring).
        heartbeat_s: Print a live progress line to stderr every this
            many wall-clock seconds (``0`` disables the heartbeat).
    """

    enabled: bool = False
    metrics: bool = True
    trace: bool = False
    trace_capacity: int = 200_000
    heartbeat_s: float = 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.trace_capacity < 1:
            raise ValueError("obs.trace_capacity must be >= 1")
        if self.heartbeat_s < 0:
            raise ValueError("obs.heartbeat_s must be non-negative")
        if self.enabled and not (self.metrics or self.trace):
            raise ValueError(
                "obs.enabled without obs.metrics or obs.trace records nothing"
            )
