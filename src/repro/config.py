"""System-level configuration: one dataclass wiring every subsystem.

:class:`SystemConfig` gathers the knobs of the devices, cache, monitor,
writeback flusher, LBICA, and SIB into a single object that
:mod:`repro.experiments.system` can turn into a runnable stack.  Two
presets are provided:

- :func:`paper_config` — the full-scale setup the experiment harness uses
  to regenerate every figure (200-interval runs).
- :func:`quick_config` — a scaled-down variant (shorter intervals, lower
  rates) for unit tests and CI benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.sib import SibConfig
from repro.cache.writeback import WritebackConfig
from repro.core.lbica import LbicaConfig
from repro.devices.hdd import HddConfig
from repro.devices.presets import HDD_PRESET, SSD_PRESET
from repro.devices.ssd import SsdConfig
from repro.obs.config import ObsConfig
from repro.schemes.dynshare import DynShareConfig
from repro.schemes.partition import PartitionConfig
from repro.schemes.slosteal import SloStealConfig

__all__ = ["SystemConfig", "paper_config", "quick_config"]


@dataclass
class SystemConfig:
    """Everything needed to build one simulated storage system.

    Attributes:
        seed: Root seed for all random streams.
        interval_us: Monitoring interval (the paper's 10-minute window,
            scaled to simulation time).
        cache_blocks: SSD cache capacity in 4-KiB blocks.
        cache_associativity: Ways per cache set.
        replacement: Replacement policy name (``lru``/``fifo``/``clock``/``lfu``).
        ssd / hdd: Device model parameters.
        ssd_depth / hdd_depth: Device dispatch concurrency.
        hdd_disks: Spindles in the disk subsystem.  ``1`` models the
            paper's single SAS drive; larger values build a striped
            array (see :mod:`repro.devices.array`) whose dispatch depth
            is ``hdd_depth × hdd_disks`` — the knob for the disk-side
            headroom ablation.
        max_merge_blocks: Block-layer merge bound (0 disables merging).
        writeback: Background flusher tuning.
        lbica: LBICA controller tuning.
        sib: SIB baseline tuning.
        partition: Static per-VM cache-partitioning tuning (the
            ``partition`` scheme).
        dynshare: Dynamic share-allocator tuning (the ``dynshare``
            scheme).
        slosteal: SLO-stealing allocator tuning (the ``slosteal``
            scheme).
        rate_scale: Multiplier applied to workload arrival rates.
        max_outstanding: Application concurrency bound (backpressure).
        drain_intervals: Extra intervals simulated after the workload
            script ends so in-flight requests complete.
        obs: Run-telemetry switches (metrics series, lifecycle tracing,
            heartbeat).  Off by default — a default config wires zero
            telemetry and runs bit-identical to an obs-free build.
    """

    seed: int = 7
    interval_us: float = 50_000.0
    cache_blocks: int = 4096
    cache_associativity: int = 8
    replacement: str = "lru"
    ssd: SsdConfig = field(default_factory=lambda: replace(SSD_PRESET))
    hdd: HddConfig = field(default_factory=lambda: replace(HDD_PRESET))
    ssd_depth: int = 1
    hdd_depth: int = 2
    hdd_disks: int = 1
    max_merge_blocks: int = 32
    writeback: WritebackConfig = field(default_factory=WritebackConfig)
    lbica: LbicaConfig = field(default_factory=LbicaConfig)
    sib: SibConfig = field(default_factory=SibConfig)
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    dynshare: DynShareConfig = field(default_factory=DynShareConfig)
    slosteal: SloStealConfig = field(default_factory=SloStealConfig)
    rate_scale: float = 1.0
    max_outstanding: int = 256
    drain_intervals: int = 0
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        # Keep the control loops aligned with the monitoring interval by
        # default: LBICA decides once per interval, SIB four times.
        if self.lbica.decision_interval_us != self.interval_us:
            self.lbica = replace(self.lbica, decision_interval_us=self.interval_us)
        if self.sib.check_interval_us != self.interval_us / 4.0:
            self.sib = replace(self.sib, check_interval_us=self.interval_us / 4.0)
        # The capacity-allocation schemes tick at the monitoring interval
        # too (dynshare decides, partition only observes).
        if self.dynshare.decision_interval_us != self.interval_us:
            self.dynshare = replace(
                self.dynshare, decision_interval_us=self.interval_us
            )
        if self.slosteal.decision_interval_us != self.interval_us:
            self.slosteal = replace(
                self.slosteal, decision_interval_us=self.interval_us
            )
        if self.partition.report_interval_us not in (0.0, self.interval_us):
            # 0 stays 0: it means "no periodic occupancy log".
            self.partition = replace(
                self.partition, report_interval_us=self.interval_us
            )

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.interval_us <= 0:
            raise ValueError("interval_us must be positive")
        if self.cache_blocks <= 0:
            raise ValueError("cache_blocks must be positive")
        if self.rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        if self.drain_intervals < 0:
            raise ValueError("drain_intervals must be non-negative")
        if self.hdd_disks < 1:
            raise ValueError("hdd_disks must be >= 1")
        self.ssd.validate()
        self.hdd.validate()
        self.writeback.validate()
        self.lbica.validate()
        self.sib.validate()
        self.partition.validate()
        self.dynshare.validate()
        self.slosteal.validate()
        self.obs.validate()

    def scaled(self, rate_scale: float) -> "SystemConfig":
        """A copy with arrival rates scaled (devices unchanged)."""
        return replace(self, rate_scale=rate_scale)


def paper_config(seed: int = 7) -> SystemConfig:
    """Full-scale configuration used to regenerate the paper's figures."""
    return SystemConfig(seed=seed)


def quick_config(seed: int = 7) -> SystemConfig:
    """Scaled-down configuration for tests and CI benchmarks.

    Uses shorter monitoring intervals so full timelines stay cheap while
    keeping the same arrival rates (the device models and therefore the
    saturation behaviour are unchanged).
    """
    return SystemConfig(seed=seed, interval_us=15_000.0)
