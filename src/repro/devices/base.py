"""The device server loop: queue -> model -> completion.

A :class:`StorageDevice` owns a :class:`~repro.io.device_queue.DeviceQueue`
and dispatches up to ``depth`` operations concurrently, asking its service
model for the duration of each.  It also maintains the per-direction
exponentially-weighted latency estimates that our iostat substrate reports
as the device's service time (``svctm``) — the ``ssdLatency`` /
``hddLatency`` terms of the paper's Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Optional, Protocol

from repro.io.device_queue import DeviceQueue
from repro.io.request import DeviceOp
from repro.sim.engine import _NO_EVENT

__all__ = ["ServiceModel", "StorageDevice", "DeviceStats"]


class ServiceModel(Protocol):
    """Anything that can price a device operation."""

    #: Nominal average latency (µs), used before any measurement exists.
    nominal_read_us: float
    nominal_write_us: float

    def service_time(self, op: DeviceOp, now: float) -> float:
        """Service duration (µs) for ``op`` starting at ``now``."""
        ...


@dataclass(slots=True)
class DeviceStats:
    """Lifetime counters for one device."""

    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    busy_time: float = 0.0
    total_service_time: float = 0.0
    #: Completion counts keyed by :class:`~repro.io.request.OpTag` member;
    #: since ``OpTag`` is a ``str`` subclass the keys hash and compare
    #: equal to their letter (``stats.completions_by_tag.get("P")`` works).
    completions_by_tag: dict = field(default_factory=dict)

    def record(self, op: DeviceOp, service: float) -> None:
        """Account one completed operation."""
        nblocks = op.nblocks
        if op.is_write:
            self.writes += 1
            self.blocks_written += nblocks
        else:
            self.reads += 1
            self.blocks_read += nblocks
        self.total_service_time += service
        by_tag = self.completions_by_tag
        tag = op.tag
        by_tag[tag] = by_tag.get(tag, 0) + 1

    @property
    def total_ops(self) -> int:
        """Completed operation count."""
        return self.reads + self.writes

    @property
    def mean_service_time(self) -> float:
        """Average measured service time (µs) over all completions."""
        return self.total_service_time / self.total_ops if self.total_ops else 0.0


class StorageDevice:
    """A storage device: a queue served by a latency model.

    Args:
        sim: The simulator driving completions.
        name: Device name (``"ssd"`` / ``"hdd"``) used in traces.
        model: Service-time model.
        depth: Number of operations serviced concurrently (internal
            parallelism / NCQ).
        queue: Optional pre-built queue (a default is created otherwise).
        ewma_alpha: Weight of the newest sample in the latency estimate.
    """

    def __init__(
        self,
        sim,
        name: str,
        model: ServiceModel,
        depth: int = 1,
        queue: Optional[DeviceQueue] = None,
        ewma_alpha: float = 0.1,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.sim = sim
        self.name = name
        self.model = model
        self.depth = depth
        self.queue = queue if queue is not None else DeviceQueue(name)
        self.stats = DeviceStats()
        self._ewma_alpha = ewma_alpha
        self._lat_read = model.nominal_read_us
        self._lat_write = model.nominal_write_us
        self._paused_until = 0.0
        # Observers are registered per transition so the hot loops pay
        # one positional call per record, no transition-string dispatch.
        self._q_observers: list[Callable[[DeviceOp], None]] = []
        self._d_observers: list[Callable[[DeviceOp], None]] = []
        self._c_observers: list[Callable[[DeviceOp], None]] = []

    # ------------------------------------------------------------------
    # Submission / dispatch
    # ------------------------------------------------------------------
    def submit(self, op: DeviceOp) -> None:
        """Enqueue an operation and kick the dispatcher."""
        queue = self.queue
        now = self.sim.now
        # Inlined DeviceQueue.push — one call per device op; the method
        # remains the reference implementation for every other caller.
        # Occupancy integral, accounting, tail back-merge, append:
        pending = queue.pending
        inflight = queue.inflight
        last = queue._last_change
        if now > last:
            queue._area += (len(pending) + len(inflight)) * (now - last)
            queue._last_change = now
        op.enqueue_time = now
        qstats = queue.stats
        qstats.enqueued += 1
        qstats.by_tag[op.tag] += 1
        merged = False
        max_merge = queue.max_merge_blocks
        if max_merge and pending:
            tail = pending[-1]
            if tail.can_merge_back(op, max_merge):
                tail.absorb(op)
                qstats.merged += 1
                merged = True
        if not merged:
            pending.append(op)
            qsize = len(pending) + len(inflight)
            if qsize > queue._window_max:
                queue._window_max = qsize
        observers = self._q_observers
        if observers:
            for fn in observers:
                fn(op)
        # Saturated devices skip the dispatcher call outright — the next
        # completion re-kicks it (same early-out _dispatch would take).
        if not merged and len(inflight) < self.depth:
            self._dispatch()

    def _dispatch(self) -> None:
        # Cheap early-outs first: roughly half the calls (the kick after
        # each completion) find nothing to dispatch.
        queue = self.queue
        if not queue.pending:
            return
        inflight = queue.inflight
        depth = self.depth
        if len(inflight) >= depth:
            return
        now = self.sim.now
        if now < self._paused_until:
            return
        # Inner loop runs once per dispatched op; hoist every attribute
        # chain that is loop-invariant.  DeviceQueue.pop_next is inlined
        # (the occupancy integral only moves on the first iteration —
        # after that ``now == last_change``).
        observers = self._d_observers
        service_time = self.model.service_time
        complete = self._complete
        stats = self.stats
        pending = queue.pending
        qstats = queue.stats
        first_op = None
        first_service = 0.0
        batch = None
        while len(inflight) < depth:
            if not pending:
                break
            last = queue._last_change
            if now > last:
                queue._area += (len(pending) + len(inflight)) * (now - last)
                queue._last_change = now
            op = pending.popleft()
            op.dispatch_time = now
            inflight.add(op.op_id)
            qstats.dispatched += 1
            service = service_time(op, now)
            if service < 0:
                raise ValueError(f"{self.name}: negative service time {service}")
            stats.busy_time += service
            if observers:
                for fn in observers:
                    fn(op)
            if first_op is None:
                first_op, first_service = op, service
            else:
                if batch is None:
                    batch = [(first_service, complete, (first_op, first_service))]
                batch.append((service, complete, (op, service)))
        # One dispatch round enters the calendar as a single block: the
        # seq numbers match the per-op schedule_call sequence exactly
        # (nothing else schedules between ops of one round).
        if batch is not None:
            self.sim.schedule_calls(batch)
        elif first_op is not None:
            # Completions are never cancelled.  Inlined
            # sim.schedule_call(first_service, complete, op, service):
            # the single-op round is the dominant dispatch outcome, and
            # service >= 0 was already checked above.
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            entry = (
                now + first_service,
                seq,
                complete,
                (first_op, first_service),
                _NO_EVENT,
            )
            heappush(sim._heap, entry)

    def _complete(self, op: DeviceOp, service: float) -> None:
        now = self.sim.now
        queue = self.queue
        # Inlined DeviceQueue.complete (occupancy integral + retire).
        last = queue._last_change
        if now > last:
            queue._area += (len(queue.pending) + len(queue.inflight)) * (now - last)
            queue._last_change = now
        queue.inflight.discard(op.op_id)
        op.complete_time = now
        queue.stats.completed += 1
        # Inlined stats.record + _update_latency (both run exactly once
        # per completion; the methods remain for other callers).
        stats = self.stats
        nblocks = op.nblocks
        a = self._ewma_alpha
        if op.is_write:
            stats.writes += 1
            stats.blocks_written += nblocks
            self._lat_write = (1 - a) * self._lat_write + a * service
        else:
            stats.reads += 1
            stats.blocks_read += nblocks
            self._lat_read = (1 - a) * self._lat_read + a * service
        stats.total_service_time += service
        by_tag = stats.completions_by_tag
        tag = op.tag
        by_tag[tag] = by_tag.get(tag, 0) + 1
        observers = self._c_observers
        if observers:
            for fn in observers:
                fn(op)
        merged = op.merged
        if merged:
            for child in (op, *merged):
                if child.on_complete is not None:
                    child.on_complete(child)
        elif op.on_complete is not None:
            op.on_complete(op)
        # Inlined _dispatch early-out: after most completions the pending
        # queue is empty (on_complete may have pushed, so re-read it).
        if queue.pending:
            self._dispatch()

    # ------------------------------------------------------------------
    # Pausing (models controller overhead, e.g. SIB's selection scans)
    # ------------------------------------------------------------------
    def pause_dispatch(self, duration: float) -> None:
        """Stall dispatch for ``duration`` µs (in-flight ops still finish)."""
        if duration <= 0:
            return
        until = self.sim.now + duration
        if until > self._paused_until:
            self._paused_until = until
            self.sim.schedule_at(until, self._dispatch)

    # ------------------------------------------------------------------
    # Latency estimates (Eq. 1 inputs)
    # ------------------------------------------------------------------
    def _update_latency(self, op: DeviceOp, service: float) -> None:
        a = self._ewma_alpha
        if op.is_write:
            self._lat_write = (1 - a) * self._lat_write + a * service
        else:
            self._lat_read = (1 - a) * self._lat_read + a * service

    @property
    def read_latency(self) -> float:
        """EWMA-estimated read service time (µs)."""
        return self._lat_read

    @property
    def write_latency(self) -> float:
        """EWMA-estimated write service time (µs)."""
        return self._lat_write

    @property
    def avg_latency(self) -> float:
        """Blended service-time estimate — the Eq. 1 latency term (µs)."""
        return (self._lat_read + self._lat_write) / 2.0

    @property
    def qsize(self) -> int:
        """Current queue depth (pending + in-flight)."""
        return self.queue.qsize

    def queue_time(self) -> float:
        """Eq. 1: ``qsize × avg_latency`` — the device's max queue time."""
        return self.qsize * self.avg_latency

    # ------------------------------------------------------------------
    # Observation (blktrace hooks)
    # ------------------------------------------------------------------
    def add_observer(self, fn: Callable[[DeviceOp, str], None]) -> None:
        """Register a callback invoked as ``fn(op, action)`` for every
        ``queue`` / ``issue`` / ``complete`` transition (blktrace's Q/D/C).

        Observer dispatch is inlined at the three transition sites
        (:meth:`submit`, ``_dispatch``, ``_complete``) — they run once
        per device op.  Internally one wrapper per transition is stored;
        a tracer that wants the raw per-transition call (no transition
        string, no extra frame) uses :meth:`add_transition_observer`.
        """
        self._q_observers.append(lambda op, _fn=fn: _fn(op, "queue"))
        self._d_observers.append(lambda op, _fn=fn: _fn(op, "issue"))
        self._c_observers.append(lambda op, _fn=fn: _fn(op, "complete"))

    def add_transition_observer(
        self, transition: str, fn: Callable[[DeviceOp], None]
    ) -> None:
        """Register ``fn(op)`` for one ``queue``/``issue``/``complete``
        transition — the allocation-free fast path used by the tracer."""
        try:
            observers = {
                "queue": self._q_observers,
                "issue": self._d_observers,
                "complete": self._c_observers,
            }[transition]
        except KeyError:
            raise ValueError(f"unknown transition {transition!r}") from None
        observers.append(fn)

    def telemetry_snapshot(self) -> dict:
        """Point-in-time device state for the obs layer (JSON-ready).

        A pull-style read of existing counters — called once per
        monitoring interval, never from the per-op hot paths.
        """
        stats = self.stats
        return {
            "qsize": self.qsize,
            "reads": stats.reads,
            "writes": stats.writes,
            "blocks_read": stats.blocks_read,
            "blocks_written": stats.blocks_written,
            "busy_time_us": stats.busy_time,
            "read_latency_us": self._lat_read,
            "write_latency_us": self._lat_write,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StorageDevice({self.name!r}, qsize={self.qsize})"
