"""The device server loop: queue -> model -> completion.

A :class:`StorageDevice` owns a :class:`~repro.io.device_queue.DeviceQueue`
and dispatches up to ``depth`` operations concurrently, asking its service
model for the duration of each.  It also maintains the per-direction
exponentially-weighted latency estimates that our iostat substrate reports
as the device's service time (``svctm``) — the ``ssdLatency`` /
``hddLatency`` terms of the paper's Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.io.device_queue import DeviceQueue
from repro.io.request import DeviceOp

__all__ = ["ServiceModel", "StorageDevice", "DeviceStats"]


class ServiceModel(Protocol):
    """Anything that can price a device operation."""

    #: Nominal average latency (µs), used before any measurement exists.
    nominal_read_us: float
    nominal_write_us: float

    def service_time(self, op: DeviceOp, now: float) -> float:
        """Service duration (µs) for ``op`` starting at ``now``."""
        ...


@dataclass
class DeviceStats:
    """Lifetime counters for one device."""

    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    busy_time: float = 0.0
    total_service_time: float = 0.0
    #: Completion counts keyed by :class:`~repro.io.request.OpTag` member;
    #: since ``OpTag`` is a ``str`` subclass the keys hash and compare
    #: equal to their letter (``stats.completions_by_tag.get("P")`` works).
    completions_by_tag: dict = field(default_factory=dict)

    def record(self, op: DeviceOp, service: float) -> None:
        """Account one completed operation."""
        nblocks = op.nblocks
        if op.is_write:
            self.writes += 1
            self.blocks_written += nblocks
        else:
            self.reads += 1
            self.blocks_read += nblocks
        self.total_service_time += service
        by_tag = self.completions_by_tag
        tag = op.tag
        by_tag[tag] = by_tag.get(tag, 0) + 1

    @property
    def total_ops(self) -> int:
        """Completed operation count."""
        return self.reads + self.writes

    @property
    def mean_service_time(self) -> float:
        """Average measured service time (µs) over all completions."""
        return self.total_service_time / self.total_ops if self.total_ops else 0.0


class StorageDevice:
    """A storage device: a queue served by a latency model.

    Args:
        sim: The simulator driving completions.
        name: Device name (``"ssd"`` / ``"hdd"``) used in traces.
        model: Service-time model.
        depth: Number of operations serviced concurrently (internal
            parallelism / NCQ).
        queue: Optional pre-built queue (a default is created otherwise).
        ewma_alpha: Weight of the newest sample in the latency estimate.
    """

    def __init__(
        self,
        sim,
        name: str,
        model: ServiceModel,
        depth: int = 1,
        queue: Optional[DeviceQueue] = None,
        ewma_alpha: float = 0.1,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.sim = sim
        self.name = name
        self.model = model
        self.depth = depth
        self.queue = queue if queue is not None else DeviceQueue(name)
        self.stats = DeviceStats()
        self._ewma_alpha = ewma_alpha
        self._lat_read = model.nominal_read_us
        self._lat_write = model.nominal_write_us
        self._paused_until = 0.0
        self._observers: list[Callable[[DeviceOp, str], None]] = []

    # ------------------------------------------------------------------
    # Submission / dispatch
    # ------------------------------------------------------------------
    def submit(self, op: DeviceOp) -> None:
        """Enqueue an operation and kick the dispatcher."""
        merged = self.queue.push(op, self.sim.now)
        for fn in self._observers:
            fn(op, "queue")
        if not merged:
            self._dispatch()

    def _dispatch(self) -> None:
        # Cheap early-outs first: roughly half the calls (the kick after
        # each completion) find nothing to dispatch.
        queue = self.queue
        if not queue.pending:
            return
        inflight = queue.inflight
        depth = self.depth
        if len(inflight) >= depth:
            return
        now = self.sim.now
        if now < self._paused_until:
            return
        # Inner loop runs once per dispatched op; hoist every attribute
        # chain that is loop-invariant.
        observers = self._observers
        service_time = self.model.service_time
        schedule = self.sim.schedule_call  # completions are never cancelled
        complete = self._complete
        stats = self.stats
        while len(inflight) < depth:
            op = queue.pop_next(now)
            if op is None:
                return
            service = service_time(op, now)
            if service < 0:
                raise ValueError(f"{self.name}: negative service time {service}")
            stats.busy_time += service
            for fn in observers:
                fn(op, "issue")
            schedule(service, complete, op, service)

    def _complete(self, op: DeviceOp, service: float) -> None:
        now = self.sim.now
        self.queue.complete(op, now)
        self.stats.record(op, service)
        self._update_latency(op, service)
        for fn in self._observers:
            fn(op, "complete")
        merged = op.merged
        if merged:
            for child in (op, *merged):
                if child.on_complete is not None:
                    child.on_complete(child)
        elif op.on_complete is not None:
            op.on_complete(op)
        self._dispatch()

    # ------------------------------------------------------------------
    # Pausing (models controller overhead, e.g. SIB's selection scans)
    # ------------------------------------------------------------------
    def pause_dispatch(self, duration: float) -> None:
        """Stall dispatch for ``duration`` µs (in-flight ops still finish)."""
        if duration <= 0:
            return
        until = self.sim.now + duration
        if until > self._paused_until:
            self._paused_until = until
            self.sim.schedule_at(until, self._dispatch)

    # ------------------------------------------------------------------
    # Latency estimates (Eq. 1 inputs)
    # ------------------------------------------------------------------
    def _update_latency(self, op: DeviceOp, service: float) -> None:
        a = self._ewma_alpha
        if op.is_write:
            self._lat_write = (1 - a) * self._lat_write + a * service
        else:
            self._lat_read = (1 - a) * self._lat_read + a * service

    @property
    def read_latency(self) -> float:
        """EWMA-estimated read service time (µs)."""
        return self._lat_read

    @property
    def write_latency(self) -> float:
        """EWMA-estimated write service time (µs)."""
        return self._lat_write

    @property
    def avg_latency(self) -> float:
        """Blended service-time estimate — the Eq. 1 latency term (µs)."""
        return (self._lat_read + self._lat_write) / 2.0

    @property
    def qsize(self) -> int:
        """Current queue depth (pending + in-flight)."""
        return self.queue.qsize

    def queue_time(self) -> float:
        """Eq. 1: ``qsize × avg_latency`` — the device's max queue time."""
        return self.qsize * self.avg_latency

    # ------------------------------------------------------------------
    # Observation (blktrace hooks)
    # ------------------------------------------------------------------
    def add_observer(self, fn: Callable[[DeviceOp, str], None]) -> None:
        """Register a callback invoked as ``fn(op, action)`` for every
        ``queue`` / ``issue`` / ``complete`` transition (blktrace's Q/D/C).

        Observer dispatch is inlined at the three transition sites
        (:meth:`submit`, ``_dispatch``, ``_complete``) — they run once
        per device op.
        """
        self._observers.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StorageDevice({self.name!r}, qsize={self.qsize})"
