"""HDD ("disk subsystem") service-time model.

Three mechanical behaviours matter for the paper's load-balancing story:

1. **Random reads are expensive** — a full seek plus half a rotation,
   milliseconds per operation.  This is why a cache miss storm cannot be
   dumped wholesale on the disk (the flaw LBICA attributes to naive
   bypassing).
2. **Sequential streaks are cheap** — once the head is positioned,
   successive contiguous blocks cost only transfer time.  This is why
   Group 4 (sequential read) needs no balancing: the disk serves the
   stream natively.
3. **Writes hit the drive's volatile write cache** — enterprise drives
   acknowledge writes once they are in the on-board cache, at near-
   electronic latency, as long as the cache has room; the drive destages
   in the background.  This makes bypassed writes (LBICA's RO policy,
   Group 3 tail bypass, SIB's redirections) genuinely cheaper on the disk
   than waiting in a saturated SSD queue — and it is also why SIB's
   write-through design keeps the disk loaded at all times.

The write cache is modelled as a token pool of ``write_cache_slots``
entries draining at ``destage_us`` per entry; when the pool is exhausted a
write pays the full mechanical cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.request import DeviceOp

__all__ = ["HddConfig", "HddModel"]


@dataclass(slots=True)
class HddConfig:
    """Parameters of the HDD service model (times in µs)."""

    avg_seek_us: float = 6500.0  #: average seek (7.2K SAS class)
    rotation_us: float = 8333.0  #: full rotation at 7200 RPM
    transfer_us_per_block: float = 20.0  #: 4-KiB transfer at ~200 MB/s
    #: Ack latency of a write absorbed by the drive's volatile cache.
    cached_write_us: float = 400.0
    write_cache_slots: int = 256  #: on-board cache capacity (entries)
    destage_us: float = 1800.0  #: background destage time per entry
    #: Blocks within this distance of the previous access count as a
    #: sequential streak (no seek, no rotational delay).
    seq_window_blocks: int = 64
    jitter_sigma: float = 0.10  #: lognormal jitter on mechanical times

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if min(self.avg_seek_us, self.rotation_us, self.transfer_us_per_block) < 0:
            raise ValueError("latencies must be non-negative")
        if self.write_cache_slots < 0 or self.destage_us <= 0:
            raise ValueError("write-cache parameters must be positive")


class HddModel:
    """Service-time model of a 7.2K-RPM hard drive with write caching.

    Args:
        config: Model parameters.
        rng: Optional numpy generator used for seek-distance variation and
            rotational position; deterministic averages are used when
            omitted.
    """

    def __init__(self, config: HddConfig | None = None, rng=None) -> None:
        self.config = config or HddConfig()
        self.config.validate()
        self.rng = rng
        self._head_lba = 0
        self._cache_used = 0.0
        self._cache_time = 0.0

    # -- write cache ----------------------------------------------------
    def _drain_cache(self, now: float) -> None:
        dt = now - self._cache_time
        if dt > 0:
            self._cache_used = max(0.0, self._cache_used - dt / self.config.destage_us)
            self._cache_time = now

    @property
    def write_cache_fill(self) -> float:
        """Fraction of the on-board write cache currently occupied."""
        if self.config.write_cache_slots == 0:
            return 1.0
        return min(self._cache_used / self.config.write_cache_slots, 1.0)

    # -- mechanical cost --------------------------------------------------
    def _mechanical_us(self, op: DeviceOp) -> float:
        cfg = self.config
        distance = abs(op.lba - self._head_lba)
        if distance <= cfg.seq_window_blocks:
            # sequential streak: transfer only
            positioning = 0.0
        else:
            if self.rng is not None:
                seek = cfg.avg_seek_us * float(self.rng.uniform(0.4, 1.6))
                rot = cfg.rotation_us * float(self.rng.uniform(0.0, 1.0))
            else:
                seek = cfg.avg_seek_us
                rot = cfg.rotation_us / 2.0
            positioning = seek + rot
        return positioning + cfg.transfer_us_per_block * op.nblocks

    # -- ServiceModel protocol --------------------------------------------
    @property
    def nominal_read_us(self) -> float:
        """Nominal random-read latency before any measurement."""
        cfg = self.config
        return cfg.avg_seek_us + cfg.rotation_us / 2.0 + cfg.transfer_us_per_block

    @property
    def nominal_write_us(self) -> float:
        """Nominal (cache-absorbed) write latency before any measurement."""
        return self.config.cached_write_us

    def service_time(self, op: DeviceOp, now: float) -> float:
        """Price one operation, updating head position and write cache."""
        cfg = self.config
        if op.is_write:
            self._drain_cache(now)
            if self._cache_used + 1 <= cfg.write_cache_slots:
                self._cache_used += 1
                total = cfg.cached_write_us + cfg.transfer_us_per_block * max(
                    op.nblocks - 1, 0
                )
            else:
                total = self._mechanical_us(op)
                self._head_lba = op.end_lba
        else:
            total = self._mechanical_us(op)
            self._head_lba = op.end_lba
        if self.rng is not None and cfg.jitter_sigma > 0:
            total *= float(self.rng.lognormal(0.0, cfg.jitter_sigma))
        return total
