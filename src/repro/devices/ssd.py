"""SSD service-time model.

The model captures the three SSD behaviours the paper's mechanism depends
on:

1. **Fast reads** — flash reads are flat and quick (~100 µs class for the
   SATA drives in the testbed).
2. **Slower writes** — program operations cost several times a read.
3. **The write cliff** — under *sustained* write pressure the FTL runs out
   of pre-erased blocks and garbage collection pushes write latency up by
   an order of magnitude.  This is why a burst of promotions (``P``) or
   application writes (``W``) piles up in the SSD queue in Figures 4/6,
   and why shedding exactly that traffic (LBICA's WO/RO policies) deflates
   the cache queue so effectively.

The cliff is modelled with a moving write-intensity estimate: each write
adds its block count to a leaky bucket; the bucket level (relative to a
configurable knee) interpolates the write cost between ``write_us`` and
``cliff_write_us``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.request import DeviceOp

__all__ = ["SsdConfig", "SsdModel"]


@dataclass(slots=True)
class SsdConfig:
    """Parameters of the SSD service model (all times in µs)."""

    read_us: float = 90.0  #: 4-KiB random read
    write_us: float = 250.0  #: 4-KiB write, FTL under light load
    cliff_write_us: float = 4000.0  #: 4-KiB write during garbage collection
    per_block_us: float = 8.0  #: additional transfer cost per extra block
    #: Leaky-bucket decay time constant (µs): how fast the FTL recovers.
    gc_decay_us: float = 300_000.0
    #: Write intensity (blocks in the bucket) at which GC fully kicks in.
    gc_knee_blocks: float = 30.0
    jitter_sigma: float = 0.08  #: lognormal service-time jitter (0 disables)

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if min(self.read_us, self.write_us, self.per_block_us) < 0:
            raise ValueError("latencies must be non-negative")
        if self.cliff_write_us < self.write_us:
            raise ValueError("cliff_write_us must be >= write_us")
        if self.gc_decay_us <= 0 or self.gc_knee_blocks <= 0:
            raise ValueError("GC parameters must be positive")


class SsdModel:
    """Service-time model of a SATA-class SSD with a write cliff.

    Args:
        config: Model parameters.
        rng: Optional numpy generator for jitter; deterministic when
            omitted (no jitter).
    """

    def __init__(self, config: SsdConfig | None = None, rng=None) -> None:
        self.config = config or SsdConfig()
        self.config.validate()
        self.rng = rng
        self._bucket = 0.0  # write-intensity leaky bucket (blocks)
        self._bucket_time = 0.0
        # Jitter multipliers are drawn in blocks: one ``lognormal(size=n)``
        # call produces bit-identical values to n scalar calls, and the
        # ``ssd.jitter`` registry stream is exclusively ours, so buffering
        # ahead of simulated time cannot perturb any other stream.
        self._jitter_buf: list[float] = []
        self._jitter_pos = 0

    # -- write-pressure tracking ---------------------------------------
    def _decay_bucket(self, now: float) -> None:
        dt = now - self._bucket_time
        if dt > 0:
            # An idle bucket stays exactly 0.0 under decay; skipping the
            # exp keeps read-heavy phases off the transcendental path.
            # (np.exp, not math.exp: the two differ in the last ulp for
            # some inputs, and run reproducibility pins the np stream.)
            if self._bucket != 0.0:
                self._bucket *= float(np.exp(-dt / self.config.gc_decay_us))
            self._bucket_time = now

    @property
    def write_pressure(self) -> float:
        """Current bucket level relative to the GC knee (0 = idle)."""
        return self._bucket / self.config.gc_knee_blocks

    def current_write_cost(self, now: float) -> float:
        """Per-4KiB write cost (µs) at the current write pressure."""
        self._decay_bucket(now)
        cfg = self.config
        level = min(self._bucket / cfg.gc_knee_blocks, 1.0)
        return cfg.write_us + level * (cfg.cliff_write_us - cfg.write_us)

    # -- ServiceModel protocol ------------------------------------------
    @property
    def nominal_read_us(self) -> float:
        """Nominal read latency before any measurement."""
        return self.config.read_us

    @property
    def nominal_write_us(self) -> float:
        """Nominal write latency before any measurement."""
        return self.config.write_us

    def service_time(self, op: DeviceOp, now: float) -> float:
        """Price one operation and update write-pressure state."""
        # Once per dispatched op: the bucket decay (same arithmetic as
        # _decay_bucket, np.exp pinned) and the cliff interpolation are
        # inlined rather than paying two method calls.
        cfg = self.config
        nblocks = op.nblocks
        bucket = self._bucket
        dt = now - self._bucket_time
        if dt > 0:
            if bucket != 0.0:
                bucket = self._bucket = bucket * float(np.exp(-dt / cfg.gc_decay_us))
            self._bucket_time = now
        if op.is_write:
            level = min(bucket / cfg.gc_knee_blocks, 1.0)
            base = cfg.write_us + level * (cfg.cliff_write_us - cfg.write_us)
            self._bucket = bucket + nblocks
        else:
            base = cfg.read_us
        total = base + cfg.per_block_us * max(nblocks - 1, 0)
        rng = self.rng
        if rng is not None and cfg.jitter_sigma > 0:
            pos = self._jitter_pos
            buf = self._jitter_buf
            if pos == len(buf):
                buf = self._jitter_buf = rng.lognormal(
                    0.0, cfg.jitter_sigma, 256
                ).tolist()
                pos = 0
            self._jitter_pos = pos + 1
            total *= buf[pos]
        return total
