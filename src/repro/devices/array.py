"""A striped multi-disk "disk subsystem" model.

The paper calls its backing store the *disk subsystem*; enterprise
deployments put an array behind the cache rather than a single spindle.
:class:`StripedArrayModel` composes N independent :class:`HddModel`
spindles RAID-0 style: each operation is routed to the spindle owning its
stripe, and because a :class:`~repro.devices.base.StorageDevice` with
``depth == n_disks`` dispatches that many operations concurrently, the
array's aggregate random-I/O throughput scales with the spindle count
while per-op latency stays a single disk's.

This is the knob for studying how much disk-side headroom LBICA's bypass
policies need (see ``benchmarks/bench_ablation.py`` and the array tests).
"""

from __future__ import annotations

from dataclasses import replace

from repro.devices.hdd import HddConfig, HddModel
from repro.io.request import DeviceOp

__all__ = ["StripedArrayModel"]


class StripedArrayModel:
    """RAID-0-like striping across N independent HDD spindles.

    Args:
        n_disks: Number of spindles (≥ 1).
        stripe_blocks: Stripe unit in 4-KiB blocks; an op is routed by
            the stripe that contains its first block (ops spanning a
            stripe boundary are charged to the first spindle — the
            simplification errs toward *under*-reporting array
            parallelism).
        config: Per-spindle HDD parameters (shared; each spindle gets an
            independent copy so head positions and write caches are per
            spindle).
        rng: Optional generator for mechanical jitter (shared stream).
    """

    def __init__(
        self,
        n_disks: int = 4,
        stripe_blocks: int = 64,
        config: HddConfig | None = None,
        rng=None,
    ) -> None:
        if n_disks < 1:
            raise ValueError("n_disks must be >= 1")
        if stripe_blocks < 1:
            raise ValueError("stripe_blocks must be >= 1")
        self.n_disks = n_disks
        self.stripe_blocks = stripe_blocks
        base = config or HddConfig()
        base.validate()
        self.spindles = [
            HddModel(replace(base), rng=rng) for _ in range(n_disks)
        ]

    def spindle_for(self, lba: int) -> int:
        """Index of the spindle owning the stripe containing ``lba``."""
        return (lba // self.stripe_blocks) % self.n_disks

    # -- ServiceModel protocol --------------------------------------------
    @property
    def nominal_read_us(self) -> float:
        """A single spindle's nominal random-read latency."""
        return self.spindles[0].nominal_read_us

    @property
    def nominal_write_us(self) -> float:
        """A single spindle's nominal (cache-absorbed) write latency."""
        return self.spindles[0].nominal_write_us

    def service_time(self, op: DeviceOp, now: float) -> float:
        """Route the op to its owning spindle and price it there."""
        return self.spindles[self.spindle_for(op.lba)].service_time(op, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StripedArrayModel(n_disks={self.n_disks}, stripe={self.stripe_blocks})"
