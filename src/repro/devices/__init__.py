"""Storage device models.

The paper's testbed pairs a 1 TB Samsung 863a SATA SSD (cache tier) with a
4 TB Seagate 7.2K SAS HDD (disk subsystem).  We replace the hardware with
parameterised service-time models:

- :mod:`repro.devices.ssd` — flat read latency, write latency that climbs
  toward a *write cliff* under sustained write pressure (SSD garbage
  collection), optional internal parallelism.
- :mod:`repro.devices.hdd` — seek + rotational latency + transfer for
  random access, near-free sequential streaks, and a volatile write cache
  that absorbs bursts of writes cheaply until it fills (drive write-back
  caching).  The write cache is what makes bypassed writes genuinely
  cheaper on the disk than in a saturated SSD queue — the effect LBICA's
  RO policy and tail bypass exploit.
- :mod:`repro.devices.base` — the :class:`~repro.devices.base.StorageDevice`
  server loop gluing a model to a :class:`~repro.io.device_queue.DeviceQueue`
  on the simulator.
- :mod:`repro.devices.presets` — parameter sets shaped after the paper's
  hardware.
"""

from repro.devices.base import DeviceStats, StorageDevice
from repro.devices.hdd import HddModel
from repro.devices.presets import samsung_863a_like, seagate_7200_like
from repro.devices.ssd import SsdModel

__all__ = [
    "StorageDevice",
    "DeviceStats",
    "SsdModel",
    "HddModel",
    "samsung_863a_like",
    "seagate_7200_like",
]
