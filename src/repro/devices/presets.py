"""Device parameter presets shaped after the paper's testbed.

The paper measured a 1 TB Samsung 863a SATA SSD and a 4 TB Seagate 7.2K
SAS HDD.  These presets do not claim to match the exact silicon — absolute
numbers are explicitly out of scope for this reproduction — but they keep
the *relationships* the mechanism needs:

- SSD reads an order of magnitude faster than random disk reads;
- SSD writes several times costlier than SSD reads, degrading under
  sustained pressure (write cliff);
- disk writes cheap while the drive's cache has room, mechanical once it
  fills;
- sequential disk streaks near-free.
"""

from __future__ import annotations

from dataclasses import replace

from repro.devices.hdd import HddConfig, HddModel
from repro.devices.ssd import SsdConfig, SsdModel

__all__ = ["samsung_863a_like", "seagate_7200_like", "SSD_PRESET", "HDD_PRESET"]

#: Default SSD parameters (SATA enterprise class, 4-KiB ops).
SSD_PRESET = SsdConfig(
    read_us=90.0,
    write_us=250.0,
    cliff_write_us=4000.0,
    per_block_us=8.0,
    gc_decay_us=300_000.0,
    gc_knee_blocks=30.0,
    jitter_sigma=0.08,
)

#: Default HDD parameters (7.2K RPM SAS class, 4-KiB ops).
HDD_PRESET = HddConfig(
    avg_seek_us=6500.0,
    rotation_us=8333.0,
    transfer_us_per_block=20.0,
    cached_write_us=400.0,
    write_cache_slots=256,
    destage_us=1800.0,
    seq_window_blocks=64,
    jitter_sigma=0.10,
)


def samsung_863a_like(rng=None) -> SsdModel:
    """An :class:`~repro.devices.ssd.SsdModel` with the default preset."""
    return SsdModel(replace(SSD_PRESET), rng=rng)


def seagate_7200_like(rng=None) -> HddModel:
    """An :class:`~repro.devices.hdd.HddModel` with the default preset."""
    return HddModel(replace(HDD_PRESET), rng=rng)
