"""Scenario smoke runner: validate and short-run every scenario file.

CI's ``scenario-smoke`` job points this at ``examples/scenarios/`` — it
loads every ``*.json`` file, validates it (unknown keys and malformed
values fail the job), expands sweeps, runs each expanded scenario for a
short horizon, and writes every run's deterministic stats fingerprint to
one JSON document (uploaded as a build artifact, so a behavior change in
the example library is visible as a fingerprint diff between runs).

Usage::

    PYTHONPATH=src python -m repro.scenario examples/scenarios \\
        --horizon 3 --jobs 4 --out scenario_fingerprints.json

``--jobs N`` fans the short runs out across processes (the same
``ProcessPoolExecutor`` pattern as ``ExperimentRunner.run_specs``);
every expanded scenario is an independent simulation, so the parallel
report is identical to the serial one.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Optional, Sequence

from repro.scenario.fingerprint import stats_fingerprint
from repro.scenario.spec import ScenarioSpec, load_scenario

__all__ = ["smoke_run_spec", "run_smoke", "main"]


def _smoke_worker(
    task: tuple[str, ScenarioSpec, int],
) -> tuple[str, str, Optional[dict], Optional[str]]:
    """Pool entry point: one short run, errors returned (never raised).

    Returns ``(file label, scenario name, fingerprint | None,
    error | None)`` so one crashing scenario cannot take down the pool's
    result stream.
    """
    label, spec, horizon = task
    try:
        return label, spec.name, smoke_run_spec(spec, horizon), None
    except Exception as exc:  # record-and-continue, as in the serial path
        return label, spec.name, None, f"{type(exc).__name__}: {exc}"


def smoke_run_spec(spec: ScenarioSpec, horizon_intervals: int) -> dict:
    """Run one (non-sweep) spec truncated to the smoke horizon.

    The spec's own horizon wins when it is already shorter.  Returns the
    run's stats fingerprint.
    """
    horizon = horizon_intervals
    if spec.horizon_intervals is not None:
        horizon = min(horizon, spec.horizon_intervals)
    truncated = dataclasses.replace(spec, horizon_intervals=horizon)
    return stats_fingerprint(truncated.run())


def run_smoke(
    paths: Sequence[Path],
    horizon_intervals: int = 3,
    verbose: bool = True,
    jobs: int = 1,
) -> dict:
    """Validate + short-run every scenario file; returns the report doc.

    The document maps ``file -> scenario name -> fingerprint``.  Files
    that fail validation or crash mid-run are recorded under ``errors``
    (``file -> message``) instead of raising, so one broken example does
    not hide problems in the rest.

    Args:
        paths: Scenario files to check.
        horizon_intervals: Truncation horizon per run.
        verbose: Print per-run progress.
        jobs: Process count for the runs.  ``1`` runs serially; larger
            values fan the expanded scenarios out (validation stays
            serial — it is cheap and orders error messages).  The
            report is identical either way.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    doc: dict = {"horizon_intervals": horizon_intervals, "files": {}, "errors": {}}
    # Phase 1 (serial): load + validate + expand; a file that fails here
    # is recorded and contributes no run tasks.
    tasks: list[tuple[str, ScenarioSpec, int]] = []
    order: list[str] = []
    for path in paths:
        label = str(path)
        try:
            spec = load_scenario(path)
            expanded = spec.expand()
        except Exception as exc:  # record-and-continue: one broken file
            # (bad JSON, missing path, malformed spec) must not hide the
            # rest of the library or the fingerprint report
            doc["errors"][label] = f"{type(exc).__name__}: {exc}"
            if verbose:
                print(f"[smoke] {path.name}: FAILED — {exc}", file=sys.stderr)
            continue
        order.append(label)
        tasks.extend((label, e, horizon_intervals) for e in expanded)
    # Phase 2: the short runs, serial or fanned out.
    if jobs > 1 and len(tasks) > 1:
        if verbose:
            print(
                f"[smoke] running {len(tasks)} scenarios across {jobs} "
                f"workers ...",
                flush=True,
            )
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_smoke_worker, tasks))
    else:
        outcomes = []
        for task in tasks:
            if verbose:
                print(
                    f"[smoke] {Path(task[0]).name}: {task[1].name} ...",
                    flush=True,
                )
            outcomes.append(_smoke_worker(task))
    # Assemble per-file, preserving the serial semantics: a file whose
    # run crashed lands in errors, not in files.
    by_file: dict[str, dict] = {label: {} for label in order}
    for label, name, fingerprint, error in outcomes:
        if label in doc["errors"]:
            continue
        if error is not None:
            doc["errors"][label] = error
            if verbose:
                print(
                    f"[smoke] {Path(label).name}: FAILED — {error}",
                    file=sys.stderr,
                )
            continue
        by_file[label][name] = fingerprint
    for label in order:
        if label not in doc["errors"]:
            doc["files"][label] = by_file[label]
    return doc


def _collect(target: Path) -> list[Path]:
    if target.is_dir():
        return sorted(target.glob("*.json"))
    return [target]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code (1 on any failure)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description=(
            "Validate and smoke-run scenario JSON files (a directory of "
            "them, or individual files)."
        ),
    )
    parser.add_argument(
        "targets", nargs="+", help="scenario .json files and/or directories"
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=3,
        help="monitoring intervals to simulate per scenario (default 3)",
    )
    parser.add_argument(
        "--out", default=None, help="write the fingerprint report to this file"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="processes for the short runs (default 1 = serial)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    args = parser.parse_args(argv)
    if args.horizon < 1:
        print("--horizon must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    paths: list[Path] = []
    for target in args.targets:
        paths.extend(_collect(Path(target)))
    if not paths:
        print("no scenario files found", file=sys.stderr)
        return 2

    doc = run_smoke(
        paths,
        horizon_intervals=args.horizon,
        verbose=not args.quiet,
        jobs=args.jobs,
    )
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"[smoke] wrote {args.out}")
    if doc["errors"]:
        print(
            f"[smoke] {len(doc['errors'])} of {len(paths)} scenario file(s) failed",
            file=sys.stderr,
        )
        return 1
    if not args.quiet:
        n_runs = sum(len(v) for v in doc["files"].values())
        print(f"[smoke] OK: {len(paths)} file(s), {n_runs} scenario run(s)")
    return 0
