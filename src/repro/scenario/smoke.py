"""Scenario smoke runner: validate and short-run every scenario file.

CI's ``scenario-smoke`` job points this at ``examples/scenarios/`` — it
loads every ``*.json`` file, validates it (unknown keys and malformed
values fail the job), expands sweeps, runs each expanded scenario for a
short horizon, and writes every run's deterministic stats fingerprint to
one JSON document (uploaded as a build artifact, so a behavior change in
the example library is visible as a fingerprint diff between runs).

Usage::

    PYTHONPATH=src python -m repro.scenario examples/scenarios \\
        --horizon 3 --out scenario_fingerprints.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.scenario.fingerprint import stats_fingerprint
from repro.scenario.spec import ScenarioSpec, load_scenario

__all__ = ["smoke_run_spec", "run_smoke", "main"]


def smoke_run_spec(spec: ScenarioSpec, horizon_intervals: int) -> dict:
    """Run one (non-sweep) spec truncated to the smoke horizon.

    The spec's own horizon wins when it is already shorter.  Returns the
    run's stats fingerprint.
    """
    horizon = horizon_intervals
    if spec.horizon_intervals is not None:
        horizon = min(horizon, spec.horizon_intervals)
    truncated = dataclasses.replace(spec, horizon_intervals=horizon)
    return stats_fingerprint(truncated.run())


def run_smoke(
    paths: Sequence[Path], horizon_intervals: int = 3, verbose: bool = True
) -> dict:
    """Validate + short-run every scenario file; returns the report doc.

    The document maps ``file -> scenario name -> fingerprint``.  Files
    that fail validation or crash mid-run are recorded under ``errors``
    (``file -> message``) instead of raising, so one broken example does
    not hide problems in the rest.
    """
    doc: dict = {"horizon_intervals": horizon_intervals, "files": {}, "errors": {}}
    for path in paths:
        label = str(path)
        try:
            spec = load_scenario(path)
            fingerprints = {}
            for expanded in spec.expand():
                if verbose:
                    print(f"[smoke] {path.name}: {expanded.name} ...", flush=True)
                fingerprints[expanded.name] = smoke_run_spec(
                    expanded, horizon_intervals
                )
            doc["files"][label] = fingerprints
        except Exception as exc:  # record-and-continue: one broken file
            # (bad JSON, missing path, mid-run crash) must not hide the
            # rest of the library or the fingerprint report
            doc["errors"][label] = f"{type(exc).__name__}: {exc}"
            if verbose:
                print(f"[smoke] {path.name}: FAILED — {exc}", file=sys.stderr)
    return doc


def _collect(target: Path) -> list[Path]:
    if target.is_dir():
        return sorted(target.glob("*.json"))
    return [target]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code (1 on any failure)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description=(
            "Validate and smoke-run scenario JSON files (a directory of "
            "them, or individual files)."
        ),
    )
    parser.add_argument(
        "targets", nargs="+", help="scenario .json files and/or directories"
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=3,
        help="monitoring intervals to simulate per scenario (default 3)",
    )
    parser.add_argument(
        "--out", default=None, help="write the fingerprint report to this file"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    args = parser.parse_args(argv)
    if args.horizon < 1:
        print("--horizon must be >= 1", file=sys.stderr)
        return 2

    paths: list[Path] = []
    for target in args.targets:
        paths.extend(_collect(Path(target)))
    if not paths:
        print("no scenario files found", file=sys.stderr)
        return 2

    doc = run_smoke(paths, horizon_intervals=args.horizon, verbose=not args.quiet)
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"[smoke] wrote {args.out}")
    if doc["errors"]:
        print(
            f"[smoke] {len(doc['errors'])} of {len(paths)} scenario file(s) failed",
            file=sys.stderr,
        )
        return 1
    if not args.quiet:
        n_runs = sum(len(v) for v in doc["files"].values())
        print(f"[smoke] OK: {len(paths)} file(s), {n_runs} scenario run(s)")
    return 0
