"""The scenario registry: named, ready-to-run :class:`ScenarioSpec` library.

Registered scenarios are what ``--list-scenarios`` prints, what
``--dump-scenario NAME`` serializes (the template for a new JSON file),
and what the benchmark suite's canonical scenarios are defined as.  New
scenarios normally need **zero code** — drop a JSON file next to
``examples/scenarios/`` instead — but anything reusable enough to name
can be registered here (or by downstream code via
:func:`register_scenario`).
"""

from __future__ import annotations

import copy

from repro.scenario.spec import ScenarioSpec

__all__ = [
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_descriptions",
]

#: Registered scenarios by name.  Treat as read-only; use
#: :func:`register_scenario` to add entries.
SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> str:
    """Register a validated spec under its own name.

    Args:
        spec: The scenario to register (validated first).
        overwrite: Allow replacing an existing entry.

    Returns:
        The registered name.
    """
    spec.validate()
    if spec.name in SCENARIOS and not overwrite:
        raise ValueError(f"scenario {spec.name!r} already registered")
    SCENARIOS[spec.name] = copy.deepcopy(spec)
    return spec.name


def get_scenario(name: str) -> ScenarioSpec:
    """A private copy of a registered scenario (mutate freely)."""
    try:
        return copy.deepcopy(SCENARIOS[name])
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None


def scenario_descriptions() -> dict[str, str]:
    """Every registered scenario with its one-line description, sorted."""
    return {
        name: (spec.description or "(no description)")
        for name, spec in sorted(SCENARIOS.items())
    }


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
def _register_builtins() -> None:
    builtins = [
        ScenarioSpec(
            name="fig4_single_vm",
            workload="tpcc",
            scheme="lbica",
            description=(
                "The canonical single-VM run: TPC-C under LBICA (the Fig. 4 "
                "configuration speedups are quoted against)."
            ),
        ),
        ScenarioSpec(
            name="consolidated3",
            workload="consolidated3",
            scheme="lbica",
            description=(
                "Three VMs (TPC-C + mail + web) contending for one shared "
                "cache under LBICA."
            ),
        ),
        ScenarioSpec(
            name="bootstorm_neighbors",
            workload="bootstorm_neighbors",
            scheme="lbica",
            description=(
                "A VM boot storm landing beside a steady web server, under "
                "LBICA."
            ),
        ),
        ScenarioSpec(
            name="paper_grid",
            workload="tpcc",
            scheme="lbica",
            description=(
                "The paper's full 3x3 evaluation grid (workload x scheme) "
                "as one sweep spec."
            ),
            sweep_axes={
                "workload": ["tpcc", "mail", "web"],
                "scheme": ["wb", "sib", "lbica"],
            },
        ),
        ScenarioSpec(
            name="consolidated3_partition",
            workload="consolidated3",
            scheme="partition",
            description=(
                "Three VMs with statically partitioned fair shares of the "
                "cache (the noisy-neighbour-proof baseline)."
            ),
        ),
        ScenarioSpec(
            name="consolidated3_dynshare",
            workload="consolidated3",
            scheme="dynshare",
            description=(
                "Three VMs under the efficiency-aware dynamic share "
                "allocator (shares follow observed hit-ratio curves)."
            ),
        ),
        ScenarioSpec(
            name="scheme_matrix",
            workload="consolidated3",
            scheme="lbica",
            description=(
                "Every registered scheme on the consolidated3 scenario "
                "(the scheme-comparison table as one sweep spec)."
            ),
            sweep_axes={
                "scheme": ["wb", "sib", "lbica", "partition", "dynshare"],
            },
        ),
        ScenarioSpec(
            name="churn_consolidated",
            workload={
                "name": "churn_consolidated",
                "tenants": [
                    {
                        "workload": "tpcc",
                        "rate_scale": 0.55,
                        "slo": {
                            "p99_latency_us": 450000.0,
                            "min_hit_ratio": 0.85,
                        },
                    },
                    {
                        "workload": "mail",
                        "rate_scale": 0.75,
                        "arrive_at_us": 150000.0,
                        "slo": {"p99_latency_us": 500000.0},
                    },
                    {
                        "workload": "web",
                        "rate_scale": 0.6,
                        "depart_at_us": 600000.0,
                        "slo": {"min_hit_ratio": 0.5},
                    },
                ],
            },
            scheme="slosteal",
            base="quick",
            horizon_intervals=60,
            description=(
                "Tenant churn under SLOs: a mail VM arrives mid-run, a web "
                "VM departs (cache share reclaimed), and the slosteal "
                "scheme moves quota toward SLO violators."
            ),
        ),
        ScenarioSpec(
            name="mail_fixed_ro",
            workload="mail",
            scheme="wb",
            fixed_policy="RO",
            description=(
                "Mail server with the cache pinned read-only for the whole "
                "run (the ablation study's fixed-policy shape)."
            ),
        ),
    ]
    for spec in builtins:
        register_scenario(spec)


_register_builtins()
