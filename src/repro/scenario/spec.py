"""Declarative scenario specifications: whole experiments as data.

A :class:`ScenarioSpec` captures everything one experiment run needs —
the scheme, the workload (a registered name or an inline workload/tenant
spec in the :mod:`repro.workloads.spec` schema), and the system
configuration (devices, array geometry, cache size, write policy,
seeds, monitor cadence, run horizon) — as plain data with a strict
dict/JSON round-trip.  ``workloads/spec.py`` made *workloads* data; this
module does the same for the whole scenario, so new scenarios need a
JSON file instead of a code change.

A spec is a dict of the form::

    {
      "name": "consolidated3",
      "description": "three VMs on one shared cache",
      "scheme": "lbica",
      "base": "quick",
      "workload": "consolidated3",          # or an inline workload spec
      "system": {"seed": 7, "cache_blocks": 4096,
                 "lbica": {"margin": 1.5}},
      "fixed_policy": null,
      "horizon_intervals": null,
      "sweep": {"scheme": ["wb", "sib", "lbica"]}
    }

``system`` holds (possibly nested) overrides of
:class:`~repro.config.SystemConfig` applied on top of the ``base``
preset (``"paper"`` or ``"quick"``); unknown keys raise at any level —
specs are validated, not silently pruned.  :meth:`ScenarioSpec.sweep`
expands any field (including dotted ``system.*`` paths) into a scenario
grid, which is how the paper's 3×3 evaluation grid is expressed as one
spec.

The build path is intentionally thin: :meth:`ScenarioSpec.to_config`
reconstructs the exact :class:`SystemConfig` the imperative entry points
used to build by hand, and :meth:`ScenarioSpec.build` hands it to
:class:`~repro.experiments.system.ExperimentSystem` — so a spec-driven
run is bit-identical to its code-built equivalent.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from repro.config import SystemConfig, paper_config, quick_config

__all__ = [
    "ScenarioSpec",
    "ScenarioError",
    "load_scenario",
    "scenario_from_dict",
]

#: Config presets a spec's ``system`` overrides start from.
_BASES = {"paper", "quick"}

#: Write policies accepted for ``fixed_policy`` (case-insensitive).
_POLICIES = {"WB", "WT", "RO", "WO"}

#: Top-level keys of a scenario spec dict.
_SPEC_KEYS = {
    "name",
    "description",
    "scheme",
    "base",
    "workload",
    "system",
    "fixed_policy",
    "horizon_intervals",
    "sweep",
    "obs",
}


class ScenarioError(ValueError):
    """Raised for malformed scenario specifications."""


def _schemes() -> tuple[str, ...]:
    # Imported lazily so the scenario layer stays importable without
    # the scheme registry loaded; importing registers the builtins.
    from repro.schemes import scheme_names

    return scheme_names()


def _apply_overrides(obj: Any, overrides: Mapping[str, Any], context: str) -> Any:
    """Return ``obj`` (a dataclass) with ``overrides`` applied recursively.

    Unknown keys raise; mappings recurse into nested config dataclasses;
    ints quietly widen to floats where the target field is a float so a
    JSON ``15000`` builds the same config as the Python ``15_000.0``.
    """
    if not isinstance(overrides, Mapping):
        raise ScenarioError(
            f"{context}: expected a mapping, got {type(overrides).__name__}"
        )
    names = {f.name for f in dataclasses.fields(obj)}
    unknown = set(overrides) - names
    if unknown:
        raise ScenarioError(f"{context}: unknown keys {sorted(unknown)}")
    changes: dict[str, Any] = {}
    for key, value in overrides.items():
        current = getattr(obj, key)
        where = f"{context}.{key}"
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            changes[key] = _apply_overrides(current, value, where)
            continue
        # leaf fields: type-check against the current value so a typo'd
        # spec fails loudly here, not as an obscure TypeError mid-run
        if isinstance(value, Mapping):
            raise ScenarioError(f"{where}: expected a scalar, got a mapping")
        if isinstance(current, bool):
            if not isinstance(value, bool):
                raise ScenarioError(f"{where}: expected a bool, got {value!r}")
        elif isinstance(current, float):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ScenarioError(f"{where}: expected a number, got {value!r}")
            value = float(value)
        elif isinstance(current, int):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ScenarioError(f"{where}: expected an int, got {value!r}")
        elif isinstance(current, str):
            if not isinstance(value, str):
                raise ScenarioError(f"{where}: expected a string, got {value!r}")
        changes[key] = value
    return dataclasses.replace(obj, **changes)


@dataclass
class ScenarioSpec:
    """One experiment scenario, fully described as data.

    Attributes:
        name: Scenario name (shows up in reports and sweep labels).
        workload: A registered workload name (including self-describing
            ``"vms:a+b"`` consolidations) or an inline workload spec
            dict — single-tenant ``phases`` or a multi-VM ``tenants``
            list (see :mod:`repro.workloads.spec`).
        scheme: Any registered scheme name (``wb`` / ``sib`` / ``lbica``
            / ``partition`` / ``dynshare`` out of the box — see
            :mod:`repro.schemes.registry`).
        description: One-line human description (``--list-scenarios``).
        base: Config preset the overrides start from (``paper``/``quick``).
        system: Nested overrides of :class:`SystemConfig` fields —
            devices, array geometry, cache size, seeds, monitor cadence.
        fixed_policy: Pin this write policy for the whole run (the
            ablation study's fixed-policy variants; usually paired with
            ``scheme="wb"`` so no balancer overrides it).
        horizon_intervals: Truncate the run after this many monitoring
            intervals (smoke runs); ``None`` runs the workload script to
            its scripted end plus the configured drain.
        sweep: ``{field_path: [values]}`` grid axes.  Paths address
            top-level spec fields or dotted ``system.*`` leaves;
            :meth:`expand` takes the cartesian product.
        obs: Overrides of the config's :class:`~repro.obs.config.
            ObsConfig` fields (``{"enabled": true, "trace": true}``) —
            the opt-in telemetry block.  Empty (the default) leaves
            telemetry off and the spec's dict/JSON form unchanged.
    """

    name: str
    workload: Union[str, dict] = "tpcc"
    scheme: str = "lbica"
    description: str = ""
    base: str = "paper"
    system: dict = field(default_factory=dict)
    fixed_policy: Optional[str] = None
    horizon_intervals: Optional[int] = None
    #: Stored under the ``"sweep"`` key in dict/JSON form; named
    #: differently here only so the :meth:`sweep` method can exist.
    sweep_axes: dict = field(default_factory=dict)
    obs: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any inconsistency.

        Checks every field, rebuilds the system config (which validates
        the ``system`` overrides against the real schema), and — for
        inline workload dicts — builds the workload once so malformed
        phase/tenant specs fail here rather than mid-run.
        """
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("scenario: name must be a non-empty string")
        if self.scheme not in _schemes():
            from repro.schemes import unknown_scheme_error

            raise ScenarioError(
                f"scenario {self.name!r}: {unknown_scheme_error(self.scheme)}"
            )
        if self.base not in _BASES:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown base {self.base!r}; "
                f"choose from {sorted(_BASES)}"
            )
        if self.fixed_policy is not None and (
            not isinstance(self.fixed_policy, str)
            or self.fixed_policy.upper() not in _POLICIES
        ):
            raise ScenarioError(
                f"scenario {self.name!r}: fixed_policy {self.fixed_policy!r} "
                f"not one of {sorted(_POLICIES)}"
            )
        if self.horizon_intervals is not None and (
            not isinstance(self.horizon_intervals, int) or self.horizon_intervals <= 0
        ):
            raise ScenarioError(
                f"scenario {self.name!r}: horizon_intervals must be a positive int"
            )
        if not isinstance(self.sweep_axes, Mapping):
            raise ScenarioError(f"scenario {self.name!r}: sweep must be a mapping")
        if not isinstance(self.obs, Mapping):
            raise ScenarioError(f"scenario {self.name!r}: obs must be a mapping")
        for path, values in self.sweep_axes.items():
            self._check_sweep_path(path)
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise ScenarioError(
                    f"scenario {self.name!r}: sweep[{path!r}] must be a list of values"
                )
            if not values:
                raise ScenarioError(
                    f"scenario {self.name!r}: sweep[{path!r}] must be non-empty"
                )
        config = self.to_config()
        config.validate()
        if isinstance(self.workload, str):
            from repro.experiments.system import resolve_workload_name

            try:
                # for "vms:a+b" names this also registers the
                # consolidation — exactly what build() would do later
                resolve_workload_name(self.workload)
            except ValueError as exc:
                raise ScenarioError(f"scenario {self.name!r}: {exc}") from None
        elif isinstance(self.workload, Mapping):
            self._build_workload(config)  # raises SpecError on bad specs
        else:
            raise ScenarioError(
                f"scenario {self.name!r}: workload must be a registered name "
                f"or a workload-spec dict"
            )

    def _check_sweep_path(self, path: str) -> None:
        if not isinstance(path, str) or not path:
            raise ScenarioError(f"scenario {self.name!r}: sweep paths must be strings")
        head, _, rest = path.partition(".")
        sweepable = _SPEC_KEYS - {"name", "sweep"}
        if head not in sweepable:
            raise ScenarioError(
                f"scenario {self.name!r}: cannot sweep {path!r} "
                f"(sweepable fields: {sorted(sweepable)})"
            )
        if rest and head != "system":
            raise ScenarioError(
                f"scenario {self.name!r}: only system.* paths may be dotted, got {path!r}"
            )

    # ------------------------------------------------------------------
    # Dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A plain-data dict; ``scenario_from_dict`` round-trips it."""
        data = {
            "name": self.name,
            "description": self.description,
            "scheme": self.scheme,
            "base": self.base,
            "workload": copy.deepcopy(self.workload),
            "system": copy.deepcopy(self.system),
            "fixed_policy": self.fixed_policy,
            "horizon_intervals": self.horizon_intervals,
            "sweep": copy.deepcopy(self.sweep_axes),
        }
        # Emitted only when set: telemetry-free specs keep their exact
        # pre-obs canonical form (and therefore their memo/store keys).
        if self.obs:
            data["obs"] = copy.deepcopy(self.obs)
        return data

    def to_json(self, indent: int = 2) -> str:
        """The spec as formatted JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "ScenarioSpec":
        """Build and validate a spec from its dict form.

        Raises:
            ScenarioError: On unknown keys or invalid values anywhere in
                the spec (including nested ``system`` overrides).
        """
        if not isinstance(spec, Mapping):
            raise ScenarioError(
                f"scenario spec: expected a mapping, got {type(spec).__name__}"
            )
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise ScenarioError(f"scenario spec: unknown keys {sorted(unknown)}")
        if "name" not in spec:
            raise ScenarioError("scenario spec: missing required key 'name'")
        built = cls(
            name=spec["name"],
            workload=copy.deepcopy(spec.get("workload", "tpcc")),
            scheme=spec.get("scheme", "lbica"),
            description=spec.get("description", ""),
            base=spec.get("base", "paper"),
            system=copy.deepcopy(dict(spec.get("system") or {})),
            fixed_policy=spec.get("fixed_policy"),
            horizon_intervals=spec.get("horizon_intervals"),
            sweep_axes=copy.deepcopy(dict(spec.get("sweep") or {})),
            obs=copy.deepcopy(dict(spec.get("obs") or {})),
        )
        built.validate()
        return built

    def key(self) -> str:
        """Canonical JSON digest — equal specs memoize to the same run."""
        return json.dumps(self.to_dict(), sort_keys=True)

    # ------------------------------------------------------------------
    # System config
    # ------------------------------------------------------------------
    def to_config(self) -> SystemConfig:
        """The exact :class:`SystemConfig` this scenario runs under."""
        if self.base == "quick":
            base = quick_config()
        elif self.base == "paper":
            base = paper_config()
        else:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown base {self.base!r}; "
                f"choose from {sorted(_BASES)}"
            )
        cfg = _apply_overrides(base, self.system, "system")
        if self.obs:
            cfg = dataclasses.replace(
                cfg, obs=_apply_overrides(cfg.obs, self.obs, "obs")
            )
        return cfg

    @classmethod
    def from_config(
        cls,
        config: SystemConfig,
        workload: Union[str, dict],
        scheme: str,
        name: Optional[str] = None,
        description: str = "",
    ) -> "ScenarioSpec":
        """Capture an existing config as a spec (exact round-trip).

        The entire config is recorded in the ``system`` section, so
        ``spec.to_config()`` rebuilds a field-for-field equal
        :class:`SystemConfig` — the bridge the imperative entry points
        (grid runner, ablations, repeats) use to route through specs
        without perturbing a single bit of their results.
        """
        label = name or (
            f"{workload}/{scheme}" if isinstance(workload, str) else scheme
        )
        return cls(
            name=label,
            workload=copy.deepcopy(workload),
            scheme=scheme,
            description=description,
            system=dataclasses.asdict(config),
        )

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def with_value(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one field (or dotted ``system.*`` leaf) replaced."""
        self._check_sweep_path(path)
        spec = copy.deepcopy(self)
        head, _, rest = path.partition(".")
        if not rest:
            setattr(spec, head, copy.deepcopy(value))
            return spec
        node = spec.system
        parts = rest.split(".")
        for part in parts[:-1]:
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                nxt = node[part] = {}
            node = nxt
        node[parts[-1]] = copy.deepcopy(value)
        return spec

    def sweep(
        self, axes: Optional[Mapping[str, Sequence[Any]]] = None, **kw: Sequence[Any]
    ) -> list["ScenarioSpec"]:
        """Expand fields into a scenario grid (cartesian product).

        Axes come from the spec's own ``sweep`` field, the ``axes``
        mapping (which may use dotted ``system.*`` paths), and keyword
        arguments (top-level fields only) — later sources override
        earlier ones on the same path.
        Each expanded spec has ``sweep`` cleared and a name suffixed with
        its coordinates::

            spec.sweep({"system.seed": [1, 2]}, scheme=["wb", "lbica"])
            # -> 4 specs: "name[seed=1,scheme=wb]", ...

        Returns:
            The expanded grid, in row-major order of the given axes.
            With no axes at all, a one-element list holding a copy of
            this spec (sweep cleared).
        """
        merged: dict[str, Sequence[Any]] = dict(self.sweep_axes)
        merged.update(axes or {})
        merged.update(kw)
        for path in merged:
            self._check_sweep_path(path)
        if not merged:
            return [dataclasses.replace(copy.deepcopy(self), sweep_axes={})]
        out: list[ScenarioSpec] = []
        paths = list(merged)
        for combo in itertools.product(*(merged[p] for p in paths)):
            spec = dataclasses.replace(copy.deepcopy(self), sweep_axes={})
            coords = []
            for path, value in zip(paths, combo):
                spec = spec.with_value(path, value)
                leaf = path.rsplit(".", 1)[-1]
                coords.append(
                    f"{leaf}={value}"
                    if isinstance(value, (str, int, float, bool))
                    else f"{leaf}#{len(out)}"
                )
            spec.name = f"{self.name}[{','.join(coords)}]"
            spec.validate()  # swept values get the same scrutiny as the base
            out.append(spec)
        names = [spec.name for spec in out]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ScenarioError(
                f"scenario {self.name!r}: sweep expands to duplicate scenario "
                f"names {duplicates} (repeated sweep values?)"
            )
        return out

    def expand(self) -> list["ScenarioSpec"]:
        """The scenario grid described by the spec's own ``sweep`` field."""
        return self.sweep()

    # ------------------------------------------------------------------
    # Building and running
    # ------------------------------------------------------------------
    def _build_workload(self, config: SystemConfig):
        from repro.workloads.spec import workload_from_spec

        return workload_from_spec(
            self.workload,
            config.interval_us,
            cache_blocks=config.cache_blocks,
            rate_scale=config.rate_scale,
            max_outstanding=config.max_outstanding,
        )

    def build(
        self,
        config: Optional[SystemConfig] = None,
        *,
        trace_records: bool = True,
    ):
        """Wire the full :class:`ExperimentSystem` this spec describes.

        Args:
            config: Run under this config instead of the spec's own
                ``base`` + ``system`` (the benchmark suite injects its
                ``--quick``/``--seed`` config this way).
            trace_records: Forwarded to :class:`ExperimentSystem`; when
                ``False`` the blktrace ring keeps counters only (no
                per-transition record objects).
        """
        from repro.cache.write_policy import WritePolicy
        from repro.experiments.system import ExperimentSystem

        cfg = config if config is not None else self.to_config()
        if isinstance(self.workload, str):
            system = ExperimentSystem.build(
                self.workload, self.scheme, cfg, trace_records=trace_records
            )
        else:
            system = ExperimentSystem(
                self._build_workload(cfg), self.scheme, cfg, trace_records=trace_records
            )
        if self.fixed_policy is not None:
            system.controller.set_policy(WritePolicy(self.fixed_policy.upper()))
        return system

    def run(self, config: Optional[SystemConfig] = None):
        """Build and run to completion; returns the ``RunResult``.

        ``horizon_intervals`` (when set) truncates the run at that many
        monitoring intervals instead of the workload's scripted end.
        """
        if self.sweep_axes:
            raise ScenarioError(
                f"scenario {self.name!r} is a sweep; expand() it and run the grid"
            )
        # Nothing downstream of ``run`` can reach the system object, so
        # per-transition trace records would be built and dropped unread;
        # counters-only mode skips that work.
        system = self.build(config, trace_records=False)
        until = None
        if self.horizon_intervals is not None:
            until = self.horizon_intervals * system.config.interval_us
        return system.run(until_us=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        workload = self.workload if isinstance(self.workload, str) else "<inline>"
        return f"ScenarioSpec({self.name!r}, {workload}/{self.scheme})"


def scenario_from_dict(spec: Mapping[str, Any]) -> ScenarioSpec:
    """Alias of :meth:`ScenarioSpec.from_dict` (symmetry with workloads)."""
    return ScenarioSpec.from_dict(spec)


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Parse a JSON scenario file and validate it."""
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid JSON ({exc})") from None
    try:
        return ScenarioSpec.from_dict(spec)
    except ValueError as exc:
        # ValueError also covers the workload layer's SpecError, so any
        # malformed file reports its path
        raise ScenarioError(f"{path}: {exc}") from None
