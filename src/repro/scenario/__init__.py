"""The scenario layer: experiments as data.

- :mod:`repro.scenario.spec` — :class:`ScenarioSpec`, the declarative
  description of one experiment (scheme, workload or tenant list, system
  config overrides, fixed policy, horizon, sweep axes) with a strict
  dict/JSON round-trip and grid expansion;
- :mod:`repro.scenario.registry` — named, ready-to-run scenario library;
- :mod:`repro.scenario.fingerprint` — deterministic stats digests the
  goldens and the smoke job pin behavior with;
- :mod:`repro.scenario.smoke` — the ``python -m repro.scenario``
  validate-and-short-run CLI over scenario files.

Quickstart::

    from repro.scenario import ScenarioSpec

    spec = ScenarioSpec(name="web_sweep", workload="web", base="quick")
    for s in spec.sweep(scheme=["wb", "sib", "lbica"]):
        print(s.name, s.run().summary())
"""

from repro.scenario.fingerprint import stats_fingerprint
from repro.scenario.registry import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_descriptions,
)
from repro.scenario.spec import (
    ScenarioError,
    ScenarioSpec,
    load_scenario,
    scenario_from_dict,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioError",
    "load_scenario",
    "scenario_from_dict",
    "stats_fingerprint",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_descriptions",
]
