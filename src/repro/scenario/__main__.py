"""``python -m repro.scenario`` — see :mod:`repro.scenario.smoke`."""

import sys

from repro.scenario.smoke import main

sys.exit(main())
