"""Deterministic stats fingerprints of experiment runs.

A fingerprint is a JSON-stable digest of a :class:`RunResult`'s
statistics with no timing or memory numbers in it: two runs of the same
code, seed, and config produce the exact same fingerprint (floats
round-trip exactly through JSON via ``repr``).  The benchmark suite's
golden files (``benchmarks/golden/``), the CI scenario smoke job, and
the spec-equivalence tests all pin behavior with these digests — an
optimization or refactor must keep them bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import RunResult

__all__ = ["stats_fingerprint"]


def stats_fingerprint(result: "RunResult") -> dict[str, Any]:
    """A deterministic, JSON-stable digest of a run's statistics.

    Args:
        result: A :class:`~repro.experiments.system.RunResult`.
    """
    fp: dict[str, Any] = {
        "workload": result.workload,
        "scheme": result.scheme,
        "completed": result.completed,
        "events_processed": result.events_processed,
        "mean_latency": result.mean_latency,
        "latency_sum": sum(result.latencies),
        "latency_max": max(result.latencies, default=0.0),
        "read_latency_sum": sum(result.read_latencies),
        "write_latency_sum": sum(result.write_latencies),
        "bypassed_requests": result.bypassed_requests,
        "cache_stats": result.cache_stats,
        "store_stats": result.store_stats,
        "ssd_queue_stats": result.ssd_queue_stats,
        "hdd_queue_stats": result.hdd_queue_stats,
        "workload_stats": result.workload_stats,
        "n_samples": len(result.samples),
        "cache_load_sum": sum(result.cache_load_series()),
        "disk_load_sum": sum(result.disk_load_series()),
        "n_policy_log": len(result.policy_log),
        "n_lbica_decisions": len(result.lbica_decisions),
        "tenant_stats": {str(t): s for t, s in result.tenant_stats.items()},
    }
    # Service-layer digests are appended only when the run produced
    # them: churn and SLOs are opt-in, and every pre-existing golden
    # (no lifecycles, no targets) must stay bit-identical.
    if result.slo_series:
        per_tenant: dict[str, Any] = {}
        for sample in result.slo_series:
            tid = str(sample["tenant_id"])
            entry = per_tenant.get(tid)
            if entry is None:
                entry = per_tenant[tid] = {
                    "intervals": 0,
                    "violations": 0,
                    "p99_sum": 0.0,
                    "hit_ratio_sum": 0.0,
                }
            entry["intervals"] += 1
            if not sample["compliant"]:
                entry["violations"] += 1
            entry["p99_sum"] += sample["p99_latency_us"]
            entry["hit_ratio_sum"] += sample["hit_ratio"]
        fp["slo_compliance"] = {
            "n_samples": len(result.slo_series),
            "tenants": per_tenant,
        }
    if result.service_stats:
        fp["service_stats"] = result.service_stats
    return fp
