"""``python -m repro`` — the umbrella command line.

Subcommands dispatch to the dedicated CLIs::

    python -m repro campaign run|status|report|diff ...
    python -m repro experiments fig4 ...     # = python -m repro.experiments

(The installed console scripts are ``repro`` for this dispatcher and
``lbica-experiments`` for the experiments CLI.)
"""

import sys
from typing import Optional, Sequence

_USAGE = """\
usage: repro <command> ...

commands:
  campaign     run / status / report / diff persistent experiment campaigns
  experiments  regenerate paper figures (same as `lbica-experiments`)
  lint         simulation-core invariant linter (simlint)
  obs          record / summarize / export run telemetry (metrics, traces)

flags (forwarded to `experiments`):
  --list-schemes / --list-workloads / --list-scenarios
"""


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch to a subsystem CLI; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(_USAGE)
        return 0 if args else 2
    if args[0].startswith("-"):
        # `repro --list-schemes` and friends: bare flags go to the
        # experiments CLI, which owns all the listing options
        from repro.experiments.cli import main as experiments_main

        return experiments_main(args)
    command, rest = args[0], args[1:]
    if command == "campaign":
        from repro.campaign.cli import main as campaign_main

        return campaign_main(rest)
    if command == "experiments":
        from repro.experiments.cli import main as experiments_main

        return experiments_main(rest)
    if command == "lint":
        from repro.devtools.simlint.cli import main as lint_main

        return lint_main(rest)
    if command == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(rest)
    print(f"unknown command {command!r}\n\n{_USAGE}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
