"""Content-addressed persistence for experiment runs.

Layout (everything JSON, everything human-inspectable)::

    <root>/
    ├── index.json            digest -> {name, workload, scheme, created_at}
    ├── bench_history.jsonl   append-only benchmark trajectory (suite --store)
    └── runs/
        └── <sha256>.json     one envelope per stored run

A run's address (:class:`RunKey`) is the SHA-256 of the canonical JSON
of ``(store schema version, scenario canonical key, SystemConfig
digest)`` — fully determined by *what would be simulated*, never by when
or where it ran.  Re-running the same scenario under the same config is
therefore a store hit; changing any config field (or bumping
:data:`SCHEMA_VERSION`) changes the address and never aliases old
results.

Durability rules:

- **Atomic writes** — artifacts land via write-temp-then-``os.replace``,
  so readers (and a killed writer's next invocation) only ever see
  whole files.
- **Corruption detection** — every envelope carries a checksum over its
  canonical payload plus its own digest; truncation, bit flips, renamed
  files, and payload/key mismatches all raise
  :class:`StoreCorruptionError` at read time.
- **Schema refusal** — an envelope written by a different store schema
  raises :class:`SchemaMismatchError` instead of being silently
  misread.
- **Index is a cache** — ``runs/`` is the source of truth;
  ``index.json`` only accelerates listings.  Concurrent writers may
  race its read-modify-write, but :meth:`RunStore.get` and
  :meth:`RunStore.digests` never consult it, and :meth:`RunStore.reindex`
  rebuilds it from the files.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from repro.store.artifact import RunArtifact, _canonical

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.experiments.system import RunResult
    from repro.scenario.spec import ScenarioSpec

__all__ = [
    "SCHEMA_VERSION",
    "RunKey",
    "RunStore",
    "StoreError",
    "StoreCorruptionError",
    "SchemaMismatchError",
    "StoreMissError",
    "provenance",
    "stamped_artifact",
]

#: Bump when the artifact payload layout changes incompatibly; old
#: artifacts then stop matching new keys and explicit reads are refused.
SCHEMA_VERSION = 1


class StoreError(Exception):
    """Base class for run-store failures."""


class StoreMissError(StoreError, KeyError):
    """The requested key/digest is not in the store."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return Exception.__str__(self)


class StoreCorruptionError(StoreError):
    """A stored artifact is truncated, altered, or internally inconsistent."""


class SchemaMismatchError(StoreError):
    """A stored artifact was written under a different store schema."""


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=1)
def _git_commit() -> Optional[str]:
    """The current git commit hash, or ``None`` outside a work tree.

    Memoized: the answer cannot change within one process, and
    provenance is stamped once per stored artifact — a 200-scenario
    campaign must not pay 200 subprocess spawns for it.
    """
    for cwd in (Path.cwd(), Path(__file__).resolve().parents[3]):
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    return None


def provenance() -> dict[str, Optional[str]]:
    """Who/what produced an artifact: repro version, git commit, time."""
    import repro  # lazy: repro/__init__ imports this package

    return {
        "repro_version": repro.__version__,
        "git_commit": _git_commit(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def stamped_artifact(
    spec: "ScenarioSpec",
    result: "RunResult",
    *,
    config: Optional["SystemConfig"] = None,
    perf: Optional[Mapping[str, Any]] = None,
) -> RunArtifact:
    """A :class:`RunArtifact` stamped with this checkout's provenance.

    The single definition of the store-provenance stamping step — the
    experiment runner's write-through and the benchmark suite both build
    their stored artifacts here, so the provenance block (repro version,
    git commit, creation time) can never drift between the two.

    Args:
        spec: The scenario that ran.
        result: Its :class:`~repro.experiments.system.RunResult`.
        config: The :class:`~repro.config.SystemConfig` actually used
            when it differs from ``spec.to_config()`` (the benchmark
            suite's injected quick/seed config).
        perf: Optional perf counters to record.
    """
    return RunArtifact.from_result(
        spec, result, config=config, perf=perf, provenance=provenance()
    )


@dataclass(frozen=True)
class RunKey:
    """The content address of one stored run.

    Attributes:
        spec_key: Canonical JSON of the scenario spec dict
            (:meth:`ScenarioSpec.key`).
        config_digest: SHA-256 of the canonical JSON of the exact
            :class:`~repro.config.SystemConfig` dict the run used.
        schema_version: Store schema the artifact is written under.
    """

    spec_key: str
    config_digest: str
    schema_version: int = SCHEMA_VERSION

    @property
    def digest(self) -> str:
        """The SHA-256 hex address (``runs/<digest>.json``)."""
        return _sha256(
            _canonical(
                {
                    "schema_version": self.schema_version,
                    "spec_key": self.spec_key,
                    "config_digest": self.config_digest,
                }
            )
        )

    @classmethod
    def from_payload(cls, spec: dict[str, Any], config: dict[str, Any]) -> "RunKey":
        """The key of an artifact payload's ``spec``/``config`` dicts."""
        return cls(
            spec_key=_canonical(spec),
            config_digest=_sha256(_canonical(config)),
        )

    @classmethod
    def for_spec(
        cls, spec: "ScenarioSpec", config: Optional["SystemConfig"] = None
    ) -> "RunKey":
        """The key a :class:`~repro.scenario.ScenarioSpec` run stores under.

        Args:
            spec: The scenario (sweeps must be expanded first — a sweep
                spec never runs, so it has no run key).
            config: The :class:`~repro.config.SystemConfig` actually
                driving the run when it differs from the spec's own
                ``base`` + ``system`` (the benchmark suite's injected
                ``--quick``/``--seed`` config); defaults to
                ``spec.to_config()``.
        """
        cfg = config if config is not None else spec.to_config()
        return cls.from_payload(spec.to_dict(), dataclasses.asdict(cfg))

    @classmethod
    def for_artifact(cls, artifact: RunArtifact) -> "RunKey":
        """The key a stored artifact addresses to (recomputed, not read)."""
        return cls.from_payload(artifact.spec, artifact.config)


class RunStore:
    """On-disk, content-addressed store of :class:`RunArtifact` documents."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.index_path = self.root / "index.json"
        self.history_path = self.root / "bench_history.jsonl"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def _digest_of(key: Union[RunKey, str]) -> str:
        return key.digest if isinstance(key, RunKey) else str(key)

    def path_for(self, key: Union[RunKey, str]) -> Path:
        """The artifact file a key/digest addresses."""
        return self.runs_dir / f"{self._digest_of(key)}.json"

    def contains(self, key: Union[RunKey, str]) -> bool:
        """Whether an artifact file exists for this key/digest."""
        return self.path_for(key).is_file()

    def digests(self) -> list[str]:
        """Every stored digest, sorted (scans ``runs/`` — never the index)."""
        return sorted(p.stem for p in self.runs_dir.glob("*.json"))

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: Union[RunKey, str]) -> RunArtifact:
        """Load and verify one stored artifact.

        Raises:
            StoreMissError: No artifact for this key/digest.
            SchemaMismatchError: Written under a different store schema.
            StoreCorruptionError: Truncated/altered/mismatched content.
        """
        digest = self._digest_of(key)
        path = self.path_for(digest)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise StoreMissError(f"no stored run {digest}") from None
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{path.name}: invalid JSON (truncated write?): {exc}"
            ) from None
        if not isinstance(envelope, dict) or not {
            "schema_version",
            "digest",
            "checksum",
            "payload",
        } <= set(envelope):
            raise StoreCorruptionError(f"{path.name}: not a run-store envelope")
        if envelope["schema_version"] != SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"{path.name}: written under store schema "
                f"{envelope['schema_version']!r}, this build reads "
                f"{SCHEMA_VERSION} — refusing to reinterpret it"
            )
        payload = envelope["payload"]
        if envelope["checksum"] != _sha256(_canonical(payload)):
            raise StoreCorruptionError(
                f"{path.name}: checksum mismatch (content altered on disk)"
            )
        if envelope["digest"] != digest:
            raise StoreCorruptionError(
                f"{path.name}: envelope addresses {envelope['digest'][:12]}… "
                f"but was read as {digest[:12]}… (file renamed?)"
            )
        try:
            artifact = RunArtifact.from_dict(payload)
        except ValueError as exc:
            raise StoreCorruptionError(f"{path.name}: {exc}") from None
        if RunKey.for_artifact(artifact).digest != digest:
            raise StoreCorruptionError(
                f"{path.name}: payload does not hash to its own address"
            )
        return artifact

    def load_all(self, on_error: str = "raise") -> dict[str, RunArtifact]:
        """Every stored artifact by digest.

        Args:
            on_error: ``"raise"`` propagates the first corrupt file;
                ``"skip"`` silently drops unreadable artifacts (campaign
                status enumerates them separately).
        """
        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        out: dict[str, RunArtifact] = {}
        for digest in self.digests():
            try:
                out[digest] = self.get(digest)
            except StoreError:
                if on_error == "raise":
                    raise
        return out

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(
        self, artifact: RunArtifact, key: Optional[RunKey] = None
    ) -> str:
        """Store an artifact atomically; returns its digest.

        The key is recomputed from the artifact's own ``spec``/``config``
        payload unless given, so an artifact can never be filed under an
        address its content does not hash to.  Re-putting the same key
        overwrites (same content address = same run).
        """
        derived = RunKey.for_artifact(artifact)
        if key is not None and key.digest != derived.digest:
            raise StoreError(
                "artifact content does not hash to the given key "
                f"({derived.digest[:12]}… vs {key.digest[:12]}…)"
            )
        digest = derived.digest
        payload = artifact.to_dict()
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "digest": digest,
            "checksum": _sha256(_canonical(payload)),
            "payload": payload,
        }
        self._atomic_write(
            self.path_for(digest),
            json.dumps(envelope, indent=1, sort_keys=True) + "\n",
        )
        self._index_add(digest, artifact)
        return digest

    def _atomic_write(self, path: Path, text: str) -> None:
        tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Index (an acceleration cache over runs/)
    # ------------------------------------------------------------------
    @staticmethod
    def _index_entry(artifact: RunArtifact) -> dict[str, Any]:
        return {
            "name": artifact.name,
            "workload": artifact.workload,
            "scheme": artifact.scheme,
            "created_at": artifact.provenance.get("created_at"),
        }

    def _load_index(self) -> dict[str, dict[str, Any]]:
        try:
            index = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return {}
        entries = index.get("entries") if isinstance(index, dict) else None
        return entries if isinstance(entries, dict) else {}

    def _write_index(self, entries: dict[str, dict[str, Any]]) -> None:
        self._atomic_write(
            self.index_path,
            json.dumps(
                {"schema_version": SCHEMA_VERSION, "entries": entries},
                indent=1,
                sort_keys=True,
            )
            + "\n",
        )

    def _index_add(self, digest: str, artifact: RunArtifact) -> None:
        entries = self._load_index()
        entries[digest] = self._index_entry(artifact)
        self._write_index(entries)

    def entries(self) -> dict[str, dict[str, Any]]:
        """The index view (digest → name/workload/scheme/created_at).

        Self-healing: any stored digest missing from the index (lost to
        a concurrent-writer race or a deleted index file) triggers a
        rebuild from the artifact files.
        """
        entries = self._load_index()
        if set(entries) != set(self.digests()):
            entries, _ = self.reindex()
        return entries

    def reindex(self) -> tuple[dict[str, dict[str, Any]], dict[str, str]]:
        """Rebuild ``index.json`` from the artifact files.

        Returns:
            ``(entries, problems)`` — the rebuilt index plus
            ``{digest: error}`` for artifacts that failed verification
            (corrupt/foreign-schema files are reported, never indexed).
        """
        entries: dict[str, dict[str, Any]] = {}
        problems: dict[str, str] = {}
        for digest in self.digests():
            try:
                entries[digest] = self._index_entry(self.get(digest))
            except StoreError as exc:
                problems[digest] = str(exc)
        self._write_index(entries)
        return entries, problems

    # ------------------------------------------------------------------
    # Benchmark trajectory (suite --store)
    # ------------------------------------------------------------------
    def append_history(self, doc: dict[str, Any]) -> None:
        """Append one benchmark-suite document to ``bench_history.jsonl``.

        Append-only by design: re-running the suite accumulates a
        trajectory (one line per invocation) instead of overwriting —
        the store keeps *every* measurement even though the
        content-addressed artifacts converge to one per key.
        """
        line = json.dumps(doc, sort_keys=True) + "\n"
        with open(self.history_path, "a", encoding="utf-8") as fh:
            fh.write(line)

    def history(self) -> list[dict[str, Any]]:
        """Every recorded benchmark document, oldest first."""
        try:
            raw = self.history_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        return [json.loads(line) for line in raw.splitlines() if line.strip()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.root)!r}, {len(self.digests())} runs)"
