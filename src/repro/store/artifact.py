"""The stored form of one experiment run.

A :class:`RunArtifact` is the JSON document the run store keeps per
scenario: the scenario spec and the exact :class:`~repro.config.
SystemConfig` it ran under (both as plain dicts), the deterministic
stats fingerprint (:func:`~repro.scenario.fingerprint.stats_fingerprint`
— the same digest the benchmark goldens pin), per-tenant stat tables,
:class:`~repro.analysis.metrics.LatencySummary` views of the overall /
read / write latency populations, free-form perf counters (wall clock,
events/sec — never part of the fingerprint), and provenance (repro
version, git commit, creation time).

Artifacts are summaries, not pickles: they hold everything campaign
status / report / diff need, but not the raw latency populations or
interval series — a store hit answers "what did this run measure",
re-simulation answers "give me the full :class:`RunResult`".
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.analysis.metrics import LatencySummary, latency_summary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.experiments.system import RunResult
    from repro.scenario.spec import ScenarioSpec

__all__ = ["RunArtifact"]

#: Keys of the artifact payload dict (strict round-trip).
_ARTIFACT_KEYS = {
    "spec",
    "config",
    "fingerprint",
    "latency",
    "tenant_stats",
    "service",
    "perf",
    "telemetry",
    "provenance",
}

#: The three latency populations summarized per run.
_LATENCY_SECTIONS = ("overall", "read", "write")


def _canonical(obj: Any) -> str:
    """Canonical JSON — the digest and checksum input form."""
    return json.dumps(obj, sort_keys=True)


@dataclass
class RunArtifact:
    """One stored run: spec + config + measured summaries.

    Attributes:
        spec: The scenario spec in dict form (``ScenarioSpec.to_dict``).
        config: The exact ``SystemConfig`` the run used, as a nested
            dict (``dataclasses.asdict``) — recorded separately from the
            spec because callers may inject a config override
            (``spec.run(config=...)``, as the benchmark suite does).
        fingerprint: Deterministic stats digest of the ``RunResult``.
        latency: ``{"overall"|"read"|"write": LatencySummary.as_dict()}``.
        tenant_stats: Per-VM stat table (``RunResult.tenant_stats`` with
            string tenant ids, as in the fingerprint).
        service: Service-layer record for churn/SLO runs —
            ``{"churn": ChurnManager.summary(), "slo": {"series": [...],
            "stats": SloMonitor.summary()}}``.  Empty for runs without
            tenant lifecycles or SLO targets (the key is additive; old
            stored artifacts rehydrate with an empty dict).
        perf: Free-form perf counters (wall clock, events/sec, RSS …);
            never compared by ``diff``.
        telemetry: The obs layer's run payload (``RunResult.telemetry``)
            for telemetry-enabled runs — metrics series + summaries and
            span counts.  Empty for ordinary runs (the key is additive;
            old stored artifacts rehydrate with an empty dict); never
            compared by ``diff``.
        provenance: Who/when/what produced this artifact (repro version,
            git commit, ISO timestamp); never compared by ``diff``.
    """

    spec: dict[str, Any]
    config: dict[str, Any]
    fingerprint: dict[str, Any]
    latency: dict[str, Any] = field(default_factory=dict)
    tenant_stats: dict[str, Any] = field(default_factory=dict)
    service: dict[str, Any] = field(default_factory=dict)
    perf: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        spec: "ScenarioSpec",
        result: "RunResult",
        config: Optional["SystemConfig"] = None,
        perf: Optional[Mapping[str, Any]] = None,
        provenance: Optional[Mapping[str, Any]] = None,
    ) -> "RunArtifact":
        """Summarize one finished run into its stored form.

        Args:
            spec: The :class:`~repro.scenario.ScenarioSpec` that ran.
            result: Its :class:`~repro.experiments.system.RunResult`.
            config: The :class:`~repro.config.SystemConfig` actually
                used (defaults to ``spec.to_config()``; pass the
                override when the run was driven with one).
            perf: Optional perf counters to record.
            provenance: Optional provenance dict to record.
        """
        from repro.scenario.fingerprint import stats_fingerprint

        cfg = config if config is not None else spec.to_config()
        fingerprint = stats_fingerprint(result)
        service: dict[str, Any] = {}
        if result.service_stats:
            service["churn"] = copy.deepcopy(result.service_stats)
        if result.slo_series or result.slo_stats:
            service["slo"] = {
                "series": copy.deepcopy(result.slo_series),
                "stats": copy.deepcopy(result.slo_stats),
            }
        return cls(
            spec=spec.to_dict(),
            config=dataclasses.asdict(cfg),
            fingerprint=fingerprint,
            latency={
                "overall": latency_summary(result.latencies).as_dict(),
                "read": latency_summary(result.read_latencies).as_dict(),
                "write": latency_summary(result.write_latencies).as_dict(),
            },
            tenant_stats=copy.deepcopy(fingerprint["tenant_stats"]),
            service=service,
            perf=dict(perf or {}),
            telemetry=copy.deepcopy(result.telemetry) if result.telemetry else {},
            provenance=dict(provenance or {}),
        )

    # ------------------------------------------------------------------
    # Dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data payload; :meth:`from_dict` round-trips it."""
        return {
            "spec": copy.deepcopy(self.spec),
            "config": copy.deepcopy(self.config),
            "fingerprint": copy.deepcopy(self.fingerprint),
            "latency": copy.deepcopy(self.latency),
            "tenant_stats": copy.deepcopy(self.tenant_stats),
            "service": copy.deepcopy(self.service),
            "perf": copy.deepcopy(self.perf),
            "telemetry": copy.deepcopy(self.telemetry),
            "provenance": copy.deepcopy(self.provenance),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunArtifact":
        """Rehydrate a stored payload (strict: unknown keys raise).

        The latency summaries are round-tripped through
        :meth:`LatencySummary.from_dict`, so a malformed or truncated
        summary fails here instead of producing wrong report numbers.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"run artifact: expected a mapping, got {type(payload).__name__}"
            )
        unknown = set(payload) - _ARTIFACT_KEYS
        if unknown:
            raise ValueError(f"run artifact: unknown keys {sorted(unknown)}")
        missing = {"spec", "config", "fingerprint"} - set(payload)
        if missing:
            raise ValueError(f"run artifact: missing keys {sorted(missing)}")
        latency = dict(payload.get("latency") or {})
        unknown_sections = set(latency) - set(_LATENCY_SECTIONS)
        if unknown_sections:
            raise ValueError(
                f"run artifact: unknown latency sections {sorted(unknown_sections)}"
            )
        for section, summary in latency.items():
            # validates keys/types and proves the summary rehydrates exactly
            LatencySummary.from_dict(summary)
        return cls(
            spec=copy.deepcopy(dict(payload["spec"])),
            config=copy.deepcopy(dict(payload["config"])),
            fingerprint=copy.deepcopy(dict(payload["fingerprint"])),
            latency=copy.deepcopy(latency),
            tenant_stats=copy.deepcopy(dict(payload.get("tenant_stats") or {})),
            service=copy.deepcopy(dict(payload.get("service") or {})),
            perf=copy.deepcopy(dict(payload.get("perf") or {})),
            telemetry=copy.deepcopy(dict(payload.get("telemetry") or {})),
            provenance=copy.deepcopy(dict(payload.get("provenance") or {})),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The scenario name this artifact stores."""
        return self.spec.get("name", "?")

    @property
    def workload(self) -> str:
        """Workload label (``<inline>`` for inline workload specs)."""
        workload = self.spec.get("workload", "?")
        return workload if isinstance(workload, str) else "<inline>"

    @property
    def scheme(self) -> str:
        """The scheme the run used."""
        return self.spec.get("scheme", "?")

    @property
    def completed(self) -> int:
        """Completed application requests."""
        return int(self.fingerprint.get("completed", 0))

    @property
    def mean_latency(self) -> float:
        """Mean application latency (µs)."""
        return float(self.fingerprint.get("mean_latency", 0.0))

    def latency_summaries(self) -> dict[str, LatencySummary]:
        """The stored summaries rehydrated as :class:`LatencySummary`."""
        return {
            section: LatencySummary.from_dict(summary)
            for section, summary in self.latency.items()
        }

    def summary(self) -> str:
        """One-line human-readable view (mirrors ``RunResult.summary``)."""
        hit_ratio = self.fingerprint.get("cache_stats", {}).get(
            "read_hit_ratio", 0.0
        )
        return (
            f"{self.name}: {self.workload}/{self.scheme}, "
            f"{self.completed} requests, mean latency "
            f"{self.mean_latency:.1f}µs, hit ratio {hit_ratio:.2%}"
        )

    def tenant_table(self) -> str:
        """Fixed-width per-VM breakdown (mirrors ``RunResult.tenant_table``)."""
        lines = [
            f"{'vm':>4} {'completed':>10} {'mean µs':>10} {'hit ratio':>10} "
            f"{'bypassed':>9} {'reads':>8} {'writes':>8}"
        ]
        for tid in sorted(self.tenant_stats, key=int):
            ts = self.tenant_stats[tid]
            lines.append(
                f"{tid:>4} {ts['completed']:>10} {ts['mean_latency']:>10.1f} "
                f"{ts['read_hit_ratio']:>10.2%} {ts['bypassed']:>9} "
                f"{ts['reads']:>8} {ts['writes']:>8}"
            )
        return "\n".join(lines)

    def spec_key(self) -> str:
        """Canonical JSON of the stored scenario spec (the key input)."""
        return _canonical(self.spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunArtifact({self.name!r}, {self.workload}/{self.scheme})"
