"""Persistent run store: content-addressed on-disk experiment results.

- :mod:`repro.store.artifact` — :class:`RunArtifact`, the JSON document
  stored per run (scenario spec, exact config, deterministic stats
  fingerprint, per-tenant tables, latency summaries, perf counters,
  provenance);
- :mod:`repro.store.run_store` — :class:`RunKey` (the content address:
  scenario canonical key + :class:`~repro.config.SystemConfig` digest +
  store schema version) and :class:`RunStore` (atomic writes under
  ``runs/`` with an index file, corruption detection, schema-version
  refusal).

The store is what makes experiment campaigns resumable: a key is fully
determined by *what would be simulated*, so a re-run of the same
scenario under the same config is a store hit and never simulates.
:class:`~repro.experiments.runner.ExperimentRunner` write-throughs every
simulated spec when given a ``store=``, and :mod:`repro.campaign` skips
keys the store already holds.

Quickstart::

    from repro.scenario import ScenarioSpec
    from repro.store import RunStore
    from repro.experiments.runner import ExperimentRunner

    store = RunStore("results/store")
    runner = ExperimentRunner(store=store)
    runner.run_spec(ScenarioSpec(name="demo", workload="web", base="quick"))
    print(store.digests())          # ['<sha256...>']
"""

from repro.store.artifact import RunArtifact
from repro.store.run_store import (
    RunKey,
    RunStore,
    SCHEMA_VERSION,
    SchemaMismatchError,
    StoreCorruptionError,
    StoreError,
    StoreMissError,
    provenance,
    stamped_artifact,
)

__all__ = [
    "RunArtifact",
    "RunKey",
    "RunStore",
    "SCHEMA_VERSION",
    "StoreError",
    "StoreCorruptionError",
    "SchemaMismatchError",
    "StoreMissError",
    "provenance",
    "stamped_artifact",
]
