"""Figure 4: I/O load (max latency) on the **I/O cache** per interval.

Reproduces: Fig. 4 of Ahmadian et al., "LBICA: A Load Balancer for I/O
Cache Architectures" (DATE 2019), and the §IV-B claim that LBICA cuts
cache load ~30% vs SIB on average.

The paper plots, for each of TPC-C / mail / web, the cache's maximum
queue latency per 10-minute interval under WB, SIB, and LBICA (Eq. 1 on
the SSD queue).  The qualitative shape to preserve:

- WB is the highest curve in burst regions — the cache absorbs
  everything and becomes the bottleneck;
- SIB sits below WB (it sheds some queue) but above LBICA;
- LBICA's curve collapses after each burst is detected and its policy
  assigned (§IV-B: "LBICA, compared to SIB, reduces the load on the I/O
  cache by 30% on average").
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii_plot import ascii_line_chart
from repro.analysis.metrics import load_reduction
from repro.analysis.series import IntervalSeries
from repro.experiments.figures import FigureResult, ShapeCheck
from repro.experiments.runner import PAPER_WORKLOADS, ExperimentRunner

__all__ = ["generate_fig4", "generate_load_figure"]


def generate_load_figure(
    runner: ExperimentRunner,
    figure_id: str,
    title: str,
    series_fn_name: str,
    device_label: str,
    workloads: tuple[str, ...] = PAPER_WORKLOADS,
) -> FigureResult:
    """Shared generator for Fig. 4 (cache load) and Fig. 5 (disk load).

    Args:
        runner: Memoizing experiment runner.
        figure_id: ``"fig4"`` or ``"fig5"``.
        title: Figure title.
        series_fn_name: ``RunResult`` method producing the per-interval
            series (``cache_load_series`` / ``disk_load_series``).
        device_label: For chart labels (``"I/O cache"`` / ``"disk"``).
        workloads: Panels to generate (one per workload, as the paper).
    """
    panels: dict[str, list[IntervalSeries]] = {}
    charts: list[str] = []
    checks: list[ShapeCheck] = []

    for workload in workloads:
        series: list[IntervalSeries] = []
        values: dict[str, list[float]] = {}
        for scheme in ("wb", "sib", "lbica"):
            result = runner.run(workload, scheme)
            vals = getattr(result, series_fn_name)()
            values[scheme] = vals
            series.append(IntervalSeries(scheme, vals))
        panels[workload] = series
        charts.append(
            ascii_line_chart(
                {s.name.upper(): s.values for s in series},
                title=f"{figure_id}({workload}): {device_label} load, max latency per interval (µs)",
                width=90,
                height=12,
                y_label="µs",
            )
        )
        if figure_id == "fig4":
            cut_wb = load_reduction(values["wb"], values["lbica"])
            cut_sib = load_reduction(values["sib"], values["lbica"])
            checks.append(
                ShapeCheck(
                    name=f"{workload}: LBICA below WB",
                    paper_statement="WB cache fails to balance; LBICA lowest",
                    measured_statement=f"mean cache load cut vs WB: {cut_wb:.0%}",
                    passed=cut_wb > 0,
                )
            )
            checks.append(
                ShapeCheck(
                    name=f"{workload}: LBICA below SIB",
                    paper_statement="LBICA cuts cache load ~30% vs SIB (avg)",
                    measured_statement=f"mean cache load cut vs SIB: {cut_sib:.0%}",
                    passed=cut_sib > 0,
                )
            )
        else:  # fig5: disk side
            mean_wb = sum(values["wb"]) / max(len(values["wb"]), 1)
            mean_lb = sum(values["lbica"]) / max(len(values["lbica"]), 1)
            mean_sib = sum(values["sib"]) / max(len(values["sib"]), 1)
            checks.append(
                ShapeCheck(
                    name=f"{workload}: LBICA shifts load to disk",
                    paper_statement="bypassed requests served by the disk",
                    measured_statement=(
                        f"mean disk load: WB {mean_wb:.0f} → LBICA {mean_lb:.0f}µs"
                    ),
                    passed=mean_lb >= mean_wb * 0.9,
                )
            )
            checks.append(
                ShapeCheck(
                    name=f"{workload}: SIB keeps disk loaded",
                    paper_statement="WT mirrors every write to the disk",
                    measured_statement=(
                        f"mean disk load: SIB {mean_sib:.0f} vs LBICA {mean_lb:.0f}µs"
                    ),
                    passed=mean_sib > mean_lb,
                )
            )

    return FigureResult(
        figure_id=figure_id,
        title=title,
        ascii_chart="\n\n".join(charts),
        series=panels,
        checks=checks,
    )


def generate_fig4(
    runner: Optional[ExperimentRunner] = None,
    workloads: tuple[str, ...] = PAPER_WORKLOADS,
) -> FigureResult:
    """Regenerate Fig. 4 (I/O cache load under WB / SIB / LBICA)."""
    runner = runner or ExperimentRunner()
    return generate_load_figure(
        runner,
        "fig4",
        "Fig. 4: I/O load (max latency) on the I/O cache by WB, SIB, and LBICA",
        "cache_load_series",
        "I/O cache",
        workloads,
    )
