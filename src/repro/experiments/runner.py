"""Grid runner: execute scenario specs and cache results.

Every run — the figure generators' nine (workload × scheme)
combinations, ad-hoc grids, declarative sweeps — flows through one path:
a :class:`~repro.scenario.ScenarioSpec` is built (or given), and its
``run()`` produces the :class:`RunResult`.  :class:`ExperimentRunner`
memoizes by the spec's canonical JSON key, so a full ``fig4 + fig5 +
fig6 + fig7 + headline`` regeneration simulates each combination exactly
once.

Grids can be fanned out across processes: each scenario is an
independent simulation fully determined by its spec, so
:meth:`ExperimentRunner.run_many` (and :func:`run_spec_grid`) with
``max_workers > 1`` produce bit-identical results to the serial run —
workers share nothing, and every spec derives its randomness from its
config's root seed alone.  Completed results land in the same memo cache
the serial path uses.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.config import SystemConfig, paper_config
from repro.experiments.system import SCHEMES, RunResult
from repro.scenario.spec import ScenarioSpec

__all__ = ["ExperimentRunner", "run_grid", "run_spec_grid", "PAPER_WORKLOADS"]

#: The three evaluation workloads of Section IV.
PAPER_WORKLOADS = ("tpcc", "mail", "web")


def _simulate_spec(spec: ScenarioSpec) -> RunResult:
    """Worker entry point: run one scenario spec (picklable)."""
    return spec.run()


class ExperimentRunner:
    """Runs and memoizes experiment scenarios.

    The classic ``run(workload, scheme)`` interface is preserved — it
    wraps the runner's config and the combination into a
    :class:`ScenarioSpec` and feeds :meth:`run_spec`, which is also the
    entry point for caller-built specs.
    """

    def __init__(self, config: SystemConfig | None = None, verbose: bool = False) -> None:
        self.config = config or paper_config()
        self.verbose = verbose
        self._cache: dict[str, RunResult] = {}

    def spec_for(self, workload: str, scheme: str) -> ScenarioSpec:
        """The scenario spec one (workload, scheme) combination runs as."""
        return ScenarioSpec.from_config(
            self.config, workload=workload, scheme=scheme, name=f"{workload}/{scheme}"
        )

    def run(self, workload: str, scheme: str) -> RunResult:
        """Run one combination under the runner's config (memoized)."""
        return self.run_spec(self.spec_for(workload, scheme))

    def run_spec(self, spec: ScenarioSpec) -> RunResult:
        """Run one scenario spec (memoized by its canonical JSON key)."""
        key = spec.key()
        if key not in self._cache:
            if self.verbose:
                print(f"[runner] simulating {spec.name} ...", flush=True)
            self._cache[key] = _simulate_spec(spec)
            if self.verbose:
                print(f"[runner]   {self._cache[key].summary()}", flush=True)
        return self._cache[key]

    def run_specs(
        self, specs: Sequence[ScenarioSpec], max_workers: int = 1
    ) -> dict[str, RunResult]:
        """Run a list of specs; returns ``{spec.name: result}``.

        Args:
            specs: Scenarios to run (sweep specs are not expanded here —
                call :meth:`ScenarioSpec.expand` first).  Names must be
                unique; equal specs (same canonical key) are simulated
                once.
            max_workers: Process count for the fan-out.  ``1`` (the
                default) runs serially in this process; larger values
                simulate missing scenarios concurrently.  Results are
                identical either way, and memoization is shared:
                already-cached scenarios are never re-run.
        """
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("spec names must be unique within a grid")
        missing: dict[str, ScenarioSpec] = {}
        for spec in specs:
            key = spec.key()
            if key not in self._cache and key not in missing:
                missing[key] = spec
        if max_workers > 1 and len(missing) > 1:
            if self.verbose:
                print(
                    f"[runner] simulating {len(missing)} scenarios "
                    f"across {max_workers} workers ...",
                    flush=True,
                )
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                results = pool.map(_simulate_spec, list(missing.values()))
                for key, result in zip(missing, results):
                    self._cache[key] = result
                    if self.verbose:
                        print(f"[runner]   {result.summary()}", flush=True)
        return {spec.name: self.run_spec(spec) for spec in specs}

    def run_many(
        self,
        workloads: Iterable[str] = PAPER_WORKLOADS,
        schemes: Iterable[str] = SCHEMES,
        max_workers: int = 1,
    ) -> dict[tuple[str, str], RunResult]:
        """Run a (workload × scheme) grid; returns ``{(workload, scheme): result}``.

        Args:
            workloads: Workload names (rows of the grid).
            schemes: Scheme names (columns of the grid).
            max_workers: Process count for the fan-out (see
                :meth:`run_specs`).
        """
        keys = [(w, s) for w in workloads for s in schemes]
        specs = {key: self.spec_for(*key) for key in dict.fromkeys(keys)}
        self.run_specs(list(specs.values()), max_workers=max_workers)
        return {key: self.run_spec(specs[key]) for key in keys}

    def invalidate(self) -> None:
        """Drop all memoized results."""
        self._cache.clear()


def run_grid(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    schemes: Sequence[str] = SCHEMES,
    config: SystemConfig | None = None,
    verbose: bool = False,
    max_workers: int = 1,
) -> dict[tuple[str, str], RunResult]:
    """Convenience wrapper: run a fresh (workload × scheme) grid.

    ``max_workers > 1`` fans the combinations out across processes (see
    :meth:`ExperimentRunner.run_many`); serial and parallel runs of the
    same config/seed produce identical results.
    """
    return ExperimentRunner(config, verbose=verbose).run_many(
        workloads, schemes, max_workers=max_workers
    )


def run_spec_grid(
    specs: Sequence[ScenarioSpec],
    max_workers: int = 1,
    verbose: bool = False,
) -> dict[str, RunResult]:
    """Run a scenario-spec grid (e.g. a ``sweep()`` expansion).

    Args:
        specs: Expanded scenario specs (names must be unique).
        max_workers: Process count; ``>1`` fans out via
            ``ProcessPoolExecutor`` with bit-identical results.
        verbose: Print per-scenario progress.

    Returns:
        ``{spec.name: result}`` in the given order.
    """
    return ExperimentRunner(verbose=verbose).run_specs(
        specs, max_workers=max_workers
    )
