"""Grid runner: execute (workload × scheme) combinations and cache results.

The figure generators all consume the same nine runs (three workloads ×
three schemes); :class:`ExperimentRunner` memoizes them so a full
``fig4 + fig5 + fig6 + fig7 + headline`` regeneration simulates each
combination exactly once.

Grids can be fanned out across processes: each (workload, scheme)
combination is an independent simulation built from the same seeded
config, so :meth:`ExperimentRunner.run_many` with ``max_workers > 1``
produces bit-identical results to the serial run — workers share
nothing, and every combination derives its randomness from the config's
root seed alone.  Completed results land in the same memo cache the
serial path uses.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.config import SystemConfig, paper_config
from repro.experiments.system import SCHEMES, ExperimentSystem, RunResult

__all__ = ["ExperimentRunner", "run_grid", "PAPER_WORKLOADS"]

#: The three evaluation workloads of Section IV.
PAPER_WORKLOADS = ("tpcc", "mail", "web")


def _simulate_combination(
    workload: str, scheme: str, config: SystemConfig
) -> RunResult:
    """Worker entry point: build and run one combination (picklable)."""
    return ExperimentSystem.build(workload, scheme, config).run()


class ExperimentRunner:
    """Runs and memoizes experiment combinations."""

    def __init__(self, config: SystemConfig | None = None, verbose: bool = False) -> None:
        self.config = config or paper_config()
        self.verbose = verbose
        self._cache: dict[tuple[str, str], RunResult] = {}

    def run(self, workload: str, scheme: str) -> RunResult:
        """Run one combination (memoized)."""
        key = (workload, scheme)
        if key not in self._cache:
            if self.verbose:
                print(f"[runner] simulating {workload}/{scheme} ...", flush=True)
            self._cache[key] = _simulate_combination(workload, scheme, self.config)
            if self.verbose:
                print(f"[runner]   {self._cache[key].summary()}", flush=True)
        return self._cache[key]

    def run_many(
        self,
        workloads: Iterable[str] = PAPER_WORKLOADS,
        schemes: Iterable[str] = SCHEMES,
        max_workers: int = 1,
    ) -> dict[tuple[str, str], RunResult]:
        """Run a grid; returns ``{(workload, scheme): result}``.

        Args:
            workloads: Workload names (rows of the grid).
            schemes: Scheme names (columns of the grid).
            max_workers: Process count for the fan-out.  ``1`` (the
                default) runs serially in this process; larger values
                simulate missing combinations concurrently.  Results are
                identical either way — combinations are independent and
                fully determined by the config's seed — and memoization
                is shared: already-cached combinations are never re-run.
        """
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        keys = [(w, s) for w in workloads for s in schemes]
        missing = [k for k in dict.fromkeys(keys) if k not in self._cache]
        if max_workers > 1 and len(missing) > 1:
            if self.verbose:
                print(
                    f"[runner] simulating {len(missing)} combinations "
                    f"across {max_workers} workers ...",
                    flush=True,
                )
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                results = pool.map(
                    _simulate_combination,
                    [k[0] for k in missing],
                    [k[1] for k in missing],
                    [self.config] * len(missing),
                )
                for key, result in zip(missing, results):
                    self._cache[key] = result
                    if self.verbose:
                        print(f"[runner]   {result.summary()}", flush=True)
        return {key: self.run(*key) for key in keys}

    def invalidate(self) -> None:
        """Drop all memoized results."""
        self._cache.clear()


def run_grid(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    schemes: Sequence[str] = SCHEMES,
    config: SystemConfig | None = None,
    verbose: bool = False,
    max_workers: int = 1,
) -> dict[tuple[str, str], RunResult]:
    """Convenience wrapper: run a fresh grid and return the results.

    ``max_workers > 1`` fans the combinations out across processes (see
    :meth:`ExperimentRunner.run_many`); serial and parallel runs of the
    same config/seed produce identical results.
    """
    return ExperimentRunner(config, verbose=verbose).run_many(
        workloads, schemes, max_workers=max_workers
    )
