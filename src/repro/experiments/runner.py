"""Grid runner: execute (workload × scheme) combinations and cache results.

The figure generators all consume the same nine runs (three workloads ×
three schemes); :class:`ExperimentRunner` memoizes them so a full
``fig4 + fig5 + fig6 + fig7 + headline`` regeneration simulates each
combination exactly once.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.config import SystemConfig, paper_config
from repro.experiments.system import SCHEMES, ExperimentSystem, RunResult

__all__ = ["ExperimentRunner", "run_grid", "PAPER_WORKLOADS"]

#: The three evaluation workloads of Section IV.
PAPER_WORKLOADS = ("tpcc", "mail", "web")


class ExperimentRunner:
    """Runs and memoizes experiment combinations."""

    def __init__(self, config: SystemConfig | None = None, verbose: bool = False) -> None:
        self.config = config or paper_config()
        self.verbose = verbose
        self._cache: dict[tuple[str, str], RunResult] = {}

    def run(self, workload: str, scheme: str) -> RunResult:
        """Run one combination (memoized)."""
        key = (workload, scheme)
        if key not in self._cache:
            if self.verbose:
                print(f"[runner] simulating {workload}/{scheme} ...", flush=True)
            system = ExperimentSystem.build(workload, scheme, self.config)
            self._cache[key] = system.run()
            if self.verbose:
                print(f"[runner]   {self._cache[key].summary()}", flush=True)
        return self._cache[key]

    def run_many(
        self,
        workloads: Iterable[str] = PAPER_WORKLOADS,
        schemes: Iterable[str] = SCHEMES,
    ) -> dict[tuple[str, str], RunResult]:
        """Run a grid; returns ``{(workload, scheme): result}``."""
        out: dict[tuple[str, str], RunResult] = {}
        for workload in workloads:
            for scheme in schemes:
                out[(workload, scheme)] = self.run(workload, scheme)
        return out

    def invalidate(self) -> None:
        """Drop all memoized results."""
        self._cache.clear()


def run_grid(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    schemes: Sequence[str] = SCHEMES,
    config: SystemConfig | None = None,
    verbose: bool = False,
) -> dict[tuple[str, str], RunResult]:
    """Convenience wrapper: run a fresh grid and return the results."""
    return ExperimentRunner(config, verbose=verbose).run_many(workloads, schemes)
