"""Grid runner: execute scenario specs and cache results.

Every run — the figure generators' nine (workload × scheme)
combinations, ad-hoc grids, declarative sweeps — flows through one path:
a :class:`~repro.scenario.ScenarioSpec` is built (or given), and its
``run()`` produces the :class:`RunResult`.  :class:`ExperimentRunner`
memoizes by the spec's canonical JSON key, so a full ``fig4 + fig5 +
fig6 + fig7 + headline`` regeneration simulates each combination exactly
once.

Grids can be fanned out across processes: each scenario is an
independent simulation fully determined by its spec, so
:meth:`ExperimentRunner.run_many` (and :func:`run_spec_grid`) with
``max_workers > 1`` produce bit-identical results to the serial run —
workers share nothing, and every spec derives its randomness from its
config's root seed alone.  Completed results land in the same memo cache
the serial path uses.

With a :class:`~repro.store.RunStore` attached (the opt-in ``store=``
argument), every simulated spec is **written through** to disk as a
:class:`~repro.store.RunArtifact`, and :meth:`ExperimentRunner.
artifact_for` **reads through** the store — a key the store already
holds answers without simulating.  Artifacts are summaries (fingerprint,
latency summaries, per-tenant tables, perf counters), so anything that
needs a full :class:`RunResult` — figures, series — still simulates;
the campaign layer, which only needs summaries, is what read-through
makes resumable.  With ``store=None`` (the default) nothing changes:
results and goldens are bit-identical to a store-less build.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional, Sequence

from repro.config import SystemConfig, paper_config
from repro.experiments.system import SCHEMES, RunResult
from repro.scenario.spec import ScenarioSpec
from repro.store import RunArtifact, RunKey, RunStore, StoreError, stamped_artifact

__all__ = [
    "ExperimentRunner",
    "run_grid",
    "run_spec_grid",
    "run_perf_counters",
    "PAPER_WORKLOADS",
]

#: The three evaluation workloads of Section IV.
PAPER_WORKLOADS = ("tpcc", "mail", "web")


def _simulate_spec_timed(spec: ScenarioSpec) -> tuple[RunResult, float]:
    """Worker entry point: run one spec, returning (result, wall seconds).

    The wall clock never feeds back into the simulation — it only lands
    in the stored artifact's ``perf`` section — so timed and untimed
    runs are bit-identical.
    """
    t0 = time.perf_counter()
    result = spec.run()
    return result, time.perf_counter() - t0


def run_perf_counters(result: RunResult, wall_s: Optional[float]) -> dict:
    """Perf counters for one run (timing block only when timed).

    The single definition of the perf block: stored artifacts use it
    as-is, and ``benchmarks/suite.py`` builds its per-scenario ``perf``
    section from it (adding only the RSS high-water mark), so the two
    can never drift apart.  The result's own cheap counters (blktrace
    record/drop totals) are always included — trace truncation is
    visible even on untimed runs.
    """
    counters = dict(result.perf_counters)
    if wall_s is None:
        return counters
    counters.update(
        {
            "wall_clock_s": round(wall_s, 4),
            "events_processed": result.events_processed,
            "events_per_sec": round(result.events_processed / wall_s)
            if wall_s
            else 0,
            "completed_requests": result.completed,
            "simulated_ios_per_sec": round(result.completed / wall_s)
            if wall_s
            else 0,
        }
    )
    return counters


class ExperimentRunner:
    """Runs and memoizes experiment scenarios.

    The classic ``run(workload, scheme)`` interface is preserved — it
    wraps the runner's config and the combination into a
    :class:`ScenarioSpec` and feeds :meth:`run_spec`, which is also the
    entry point for caller-built specs.

    Args:
        config: Config the classic (workload, scheme) interface runs
            under (caller-built specs carry their own).
        verbose: Print per-scenario progress.
        store: Optional :class:`~repro.store.RunStore` — every simulated
            spec is written through to it, and :meth:`artifact_for`
            reads through it.  ``None`` (the default) leaves behavior
            bit-identical to a store-less runner.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        verbose: bool = False,
        store: RunStore | None = None,
    ) -> None:
        self.config = config or paper_config()
        self.verbose = verbose
        self.store = store
        self._cache: dict[str, RunResult] = {}

    def spec_for(self, workload: str, scheme: str) -> ScenarioSpec:
        """The scenario spec one (workload, scheme) combination runs as."""
        return ScenarioSpec.from_config(
            self.config, workload=workload, scheme=scheme, name=f"{workload}/{scheme}"
        )

    def run(self, workload: str, scheme: str) -> RunResult:
        """Run one combination under the runner's config (memoized)."""
        return self.run_spec(self.spec_for(workload, scheme))

    def run_spec(self, spec: ScenarioSpec) -> RunResult:
        """Run one scenario spec (memoized by its canonical JSON key).

        With a store attached the fresh result is written through as a
        :class:`RunArtifact` — the simulation itself is untouched.
        """
        key = spec.key()
        if key not in self._cache:
            if self.verbose:
                print(f"[runner] simulating {spec.name} ...", flush=True)  # simlint: ignore[SL008] opt-in progress
            result, wall = _simulate_spec_timed(spec)
            self._cache[key] = result
            self._write_through(spec, result, wall)
            if self.verbose:
                print(f"[runner]   {self._cache[key].summary()}", flush=True)  # simlint: ignore[SL008] opt-in progress
        return self._cache[key]

    def _write_through(
        self, spec: ScenarioSpec, result: RunResult, wall_s: Optional[float]
    ) -> None:
        """Persist one simulated result into the attached store, if any.

        Provenance stamping lives in :func:`repro.store.stamped_artifact`
        — the one helper this runner and ``benchmarks/suite.py`` share.
        """
        if self.store is None:
            return
        self.store.put(
            stamped_artifact(spec, result, perf=run_perf_counters(result, wall_s))
        )

    def artifact_for(self, spec: ScenarioSpec) -> RunArtifact:
        """The stored artifact for a spec, simulating only on a store miss.

        This is the read-through path: a key the store already holds
        (from any earlier process) answers from disk.  On a miss — or a
        corrupt/foreign-schema artifact, which is treated as a miss —
        the spec is simulated via :meth:`run_spec` (which writes
        through) and the fresh artifact is returned.  Requires a store.
        """
        if self.store is None:
            raise ValueError("artifact_for requires a runner with a store")
        run_key = RunKey.for_spec(spec)
        if self.store.contains(run_key):
            try:
                return self.store.get(run_key)
            except StoreError:
                pass  # unreadable artifact: fall through and heal it
        result = self.run_spec(spec)
        try:
            return self.store.get(run_key)
        except StoreError:
            # either run_spec was a memo hit (nothing simulated, nothing
            # written) or the on-disk artifact is still the unreadable
            # one — persist the in-memory result over it (untimed: perf
            # counters stay empty rather than invented)
            self._write_through(spec, result, None)
        return self.store.get(run_key)

    def run_specs(
        self, specs: Sequence[ScenarioSpec], max_workers: int = 1
    ) -> dict[str, RunResult]:
        """Run a list of specs; returns ``{spec.name: result}``.

        Args:
            specs: Scenarios to run (sweep specs are not expanded here —
                call :meth:`ScenarioSpec.expand` first).  Names must be
                unique; equal specs (same canonical key) are simulated
                once.
            max_workers: Process count for the fan-out.  ``1`` (the
                default) runs serially in this process; larger values
                simulate missing scenarios concurrently.  Results are
                identical either way, and memoization is shared:
                already-cached scenarios are never re-run.
        """
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("spec names must be unique within a grid")
        missing: dict[str, ScenarioSpec] = {}
        for spec in specs:
            key = spec.key()
            if key not in self._cache and key not in missing:
                missing[key] = spec
        if max_workers > 1 and len(missing) > 1:
            if self.verbose:
                print(  # simlint: ignore[SL008] opt-in progress
                    f"[runner] simulating {len(missing)} scenarios "
                    f"across {max_workers} workers ...",
                    flush=True,
                )
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                results = pool.map(_simulate_spec_timed, list(missing.values()))
                # zip streams: each result is cached (and written through
                # to the store) as it arrives, so a killed grid keeps
                # every completed scenario on disk
                for (key, spec), (result, wall) in zip(missing.items(), results):
                    self._cache[key] = result
                    self._write_through(spec, result, wall)
                    if self.verbose:
                        print(f"[runner]   {result.summary()}", flush=True)  # simlint: ignore[SL008] opt-in progress
        return {spec.name: self.run_spec(spec) for spec in specs}

    def run_many(
        self,
        workloads: Iterable[str] = PAPER_WORKLOADS,
        schemes: Iterable[str] = SCHEMES,
        max_workers: int = 1,
    ) -> dict[tuple[str, str], RunResult]:
        """Run a (workload × scheme) grid; returns ``{(workload, scheme): result}``.

        Args:
            workloads: Workload names (rows of the grid).
            schemes: Scheme names (columns of the grid).
            max_workers: Process count for the fan-out (see
                :meth:`run_specs`).
        """
        keys = [(w, s) for w in workloads for s in schemes]
        specs = {key: self.spec_for(*key) for key in dict.fromkeys(keys)}
        self.run_specs(list(specs.values()), max_workers=max_workers)
        return {key: self.run_spec(specs[key]) for key in keys}

    def invalidate(self) -> None:
        """Drop all memoized results."""
        self._cache.clear()


def run_grid(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    schemes: Sequence[str] = SCHEMES,
    config: SystemConfig | None = None,
    verbose: bool = False,
    max_workers: int = 1,
) -> dict[tuple[str, str], RunResult]:
    """Convenience wrapper: run a fresh (workload × scheme) grid.

    ``max_workers > 1`` fans the combinations out across processes (see
    :meth:`ExperimentRunner.run_many`); serial and parallel runs of the
    same config/seed produce identical results.
    """
    return ExperimentRunner(config, verbose=verbose).run_many(
        workloads, schemes, max_workers=max_workers
    )


def run_spec_grid(
    specs: Sequence[ScenarioSpec],
    max_workers: int = 1,
    verbose: bool = False,
    store: RunStore | None = None,
) -> dict[str, RunResult]:
    """Run a scenario-spec grid (e.g. a ``sweep()`` expansion).

    Args:
        specs: Expanded scenario specs (names must be unique).
        max_workers: Process count; ``>1`` fans out via
            ``ProcessPoolExecutor`` with bit-identical results.
        verbose: Print per-scenario progress.
        store: Optional :class:`~repro.store.RunStore` to write every
            simulated result through to.

    Returns:
        ``{spec.name: result}`` in the given order.
    """
    return ExperimentRunner(verbose=verbose, store=store).run_specs(
        specs, max_workers=max_workers
    )
