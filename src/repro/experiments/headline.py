"""The paper's headline numbers (abstract / §IV-B / §IV-C / §IV-D).

Reproduces: the abstract's quantitative claims of Ahmadian et al.
(DATE 2019) as a paper-vs-measured table (H1/H2/H3 below).

Claims reproduced, each as a paper-vs-measured row:

- **H1** (§IV-B): LBICA reduces the load on the I/O cache vs SIB by 30%
  on average.
- **H2** (§IV-C): during burst intervals LBICA's policy assignment cuts
  cache load by up to 70% (48% on average) relative to the unbalanced WB
  baseline over the same intervals.
- **H3** (§IV-D): average latency improves up to 22% / 11.7% vs WB / SIB
  (14% / 7% on average); TPC-C benefits most, mail least.

Absolute percentages depend on the testbed; the verdict column records
whether the *direction and ordering* hold, and the measured magnitudes
are reported alongside the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.metrics import load_reduction
from repro.analysis.report import format_table
from repro.experiments.runner import PAPER_WORKLOADS, ExperimentRunner

__all__ = ["HeadlineReport", "generate_headline"]


@dataclass
class HeadlineReport:
    """Measured counterparts of the paper's headline claims."""

    cache_cut_vs_sib: dict[str, float] = field(default_factory=dict)
    cache_cut_vs_wb_burst: dict[str, float] = field(default_factory=dict)
    latency_gain_vs_wb: dict[str, float] = field(default_factory=dict)
    latency_gain_vs_sib: dict[str, float] = field(default_factory=dict)
    rows: list[tuple[str, str, str, str]] = field(default_factory=list)

    @property
    def avg_cache_cut_vs_sib(self) -> float:
        """Mean cache-load reduction vs SIB across workloads."""
        return float(np.mean(list(self.cache_cut_vs_sib.values())))

    @property
    def avg_cache_cut_vs_wb_burst(self) -> float:
        """Mean burst-interval cache-load reduction vs WB."""
        return float(np.mean(list(self.cache_cut_vs_wb_burst.values())))

    @property
    def all_directions_hold(self) -> bool:
        """Whether every headline claim holds directionally."""
        return (
            all(v > 0 for v in self.cache_cut_vs_sib.values())
            and all(v > 0 for v in self.cache_cut_vs_wb_burst.values())
            and all(v > 0 for v in self.latency_gain_vs_wb.values())
            and all(v > 0 for v in self.latency_gain_vs_sib.values())
        )

    def table(self) -> str:
        """Fixed-width paper-vs-measured table."""
        return format_table(
            ["claim", "paper", "measured", "verdict"], self.rows, title="headline claims"
        )


def generate_headline(
    runner: Optional[ExperimentRunner] = None,
    workloads: tuple[str, ...] = PAPER_WORKLOADS,
) -> HeadlineReport:
    """Compute the headline comparison across the standard grid."""
    runner = runner or ExperimentRunner()
    report = HeadlineReport()

    for workload in workloads:
        wb = runner.run(workload, "wb")
        sib = runner.run(workload, "sib")
        lbica = runner.run(workload, "lbica")

        report.cache_cut_vs_sib[workload] = load_reduction(
            sib.cache_load_series(), lbica.cache_load_series()
        )
        # burst intervals: where the WB run's cache queue exceeded its
        # disk queue (the unbalanced system's own Eq. 1 readings)
        burst_ivals = [
            s.index for s in wb.samples if s.bottleneck_is_cache
        ]
        report.cache_cut_vs_wb_burst[workload] = load_reduction(
            wb.cache_load_series(), lbica.cache_load_series(), intervals=burst_ivals
        )
        report.latency_gain_vs_wb[workload] = (
            (wb.mean_latency - lbica.mean_latency) / wb.mean_latency
            if wb.mean_latency > 0
            else 0.0
        )
        report.latency_gain_vs_sib[workload] = (
            (sib.mean_latency - lbica.mean_latency) / sib.mean_latency
            if sib.mean_latency > 0
            else 0.0
        )

    def verdict(ok: bool) -> str:
        return "direction holds" if ok else "DIVERGES"

    report.rows = [
        (
            "H1: cache load cut vs SIB (avg)",
            "30%",
            f"{report.avg_cache_cut_vs_sib:.0%}",
            verdict(all(v > 0 for v in report.cache_cut_vs_sib.values())),
        ),
        (
            "H2: burst cache load cut (avg)",
            "48% (up to 70%)",
            f"{report.avg_cache_cut_vs_wb_burst:.0%} "
            f"(up to {max(report.cache_cut_vs_wb_burst.values()):.0%})",
            verdict(all(v > 0 for v in report.cache_cut_vs_wb_burst.values())),
        ),
        (
            "H3a: latency gain vs WB (avg)",
            "14% (up to 22%)",
            f"{float(np.mean(list(report.latency_gain_vs_wb.values()))):.0%} "
            f"(up to {max(report.latency_gain_vs_wb.values()):.0%})",
            verdict(all(v > 0 for v in report.latency_gain_vs_wb.values())),
        ),
        (
            "H3b: latency gain vs SIB (avg)",
            "7% (up to 11.7%)",
            f"{float(np.mean(list(report.latency_gain_vs_sib.values()))):.0%} "
            f"(up to {max(report.latency_gain_vs_sib.values()):.0%})",
            verdict(all(v > 0 for v in report.latency_gain_vs_sib.values())),
        ),
    ]
    return report
