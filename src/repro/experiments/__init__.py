"""Experiment harness: one module per paper figure.

- :mod:`repro.experiments.system` — builds a runnable (workload × scheme)
  stack from a :class:`~repro.config.SystemConfig`.
- :mod:`repro.experiments.runner` — runs grids and caches results.
- :mod:`repro.experiments.fig4` / :mod:`~repro.experiments.fig5` — cache
  and disk load curves (max latency per interval) for WB / SIB / LBICA.
- :mod:`repro.experiments.fig6` — LBICA's burst-detection and policy
  timeline.
- :mod:`repro.experiments.fig7` — average latency bars.
- :mod:`repro.experiments.headline` — the paper's headline percentages.
- :mod:`repro.experiments.ablation` — design-choice ablations (policy
  table vs. fixed policies, tail bypass on/off, replacement sweep,
  strict WT+WO SIB).
- :mod:`repro.experiments.cli` — ``python -m repro.experiments`` entry.
"""

from repro.experiments.ablation import run_ablations, run_disk_headroom_sweep
from repro.experiments.repeat import run_repeated
from repro.experiments.report_md import generate_markdown_report
from repro.experiments.runner import ExperimentRunner, run_grid
from repro.experiments.system import ExperimentSystem, RunResult, SCHEMES, WORKLOADS

__all__ = [
    "ExperimentSystem",
    "RunResult",
    "ExperimentRunner",
    "run_grid",
    "run_ablations",
    "run_disk_headroom_sweep",
    "run_repeated",
    "generate_markdown_report",
    "SCHEMES",
    "WORKLOADS",
]
