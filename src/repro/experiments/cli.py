"""Command-line entry point: regenerate any paper figure from a terminal.

Examples::

    lbica-experiments fig4                 # cache-load curves, all workloads
    lbica-experiments fig6 --workloads mail
    lbica-experiments all --out results/   # every figure + headline + CSVs
    lbica-experiments ablation --workloads mail
    lbica-experiments all --jobs 4         # fan the grid out across processes
    lbica-experiments fig4 --workloads consolidated3   # multi-VM scenario
    lbica-experiments fig7 --vms tpcc web  # ad-hoc consolidation of 2 VMs
    lbica-experiments --list-workloads     # registered workloads + one-liners
    lbica-experiments --list-scenarios     # registered scenario specs
    lbica-experiments --list-schemes       # registered allocation schemes
    lbica-experiments schemes --quick      # 5-scheme latency/hit-ratio table
    lbica-experiments --scenario examples/scenarios/consolidated3.json
    lbica-experiments --dump-scenario consolidated3 > my_scenario.json
    lbica-experiments campaign run examples/campaigns/smoke.json \
        --store results/store              # persistent campaigns (see
                                           # repro.campaign.cli)
    python -m repro.experiments fig7       # module form

Each figure prints its ASCII chart and shape-check table; ``--out``
additionally writes CSV and text artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config import paper_config, quick_config
from repro.experiments.ablation import run_ablations
from repro.experiments.fig4 import generate_fig4
from repro.experiments.fig5 import generate_fig5
from repro.experiments.fig6 import generate_fig6
from repro.experiments.fig7 import generate_fig7
from repro.experiments.figures import save_figure_artifacts
from repro.experiments.headline import generate_headline
from repro.experiments.runner import PAPER_WORKLOADS, ExperimentRunner, run_spec_grid
from repro.experiments.scheme_compare import generate_scheme_compare
from repro.experiments.system import (
    SCHEMES,
    register_consolidation,
    resolve_workload_name,
    workload_descriptions,
)
from repro.scenario import (
    get_scenario,
    load_scenario,
    scenario_descriptions,
    stats_fingerprint,
)
from repro.schemes import scheme_descriptions, scheme_names

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig4": generate_fig4,
    "fig5": generate_fig5,
    "fig6": generate_fig6,
    "fig7": generate_fig7,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="lbica-experiments",
        description="Regenerate the LBICA paper's figures on the simulator.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        choices=[*sorted(_FIGURES), "headline", "ablation", "schemes", "all"],
        help=(
            "which figure/report to regenerate ('schemes' compares every "
            "registered scheme, not just the paper trio)"
        ),
    )
    parser.add_argument(
        "--list-workloads",
        action="store_true",
        help="print every registered workload with its one-line description and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print every registered scenario with its one-line description and exit",
    )
    parser.add_argument(
        "--list-schemes",
        action="store_true",
        help="print every registered scheme with its one-line description and exit",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="FILE.json",
        help=(
            "run a declarative scenario file (sweeps are expanded into a "
            "grid; --jobs fans the grid across processes) and exit"
        ),
    )
    parser.add_argument(
        "--dump-scenario",
        default=None,
        metavar="NAME",
        help="print a registered scenario as JSON (a template for --scenario) and exit",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(PAPER_WORKLOADS),
        help=f"workload subset (default: {' '.join(PAPER_WORKLOADS)})",
    )
    parser.add_argument(
        "--out", default=None, help="directory for CSV/text artifacts"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down configuration (shorter intervals; CI-friendly)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="root random seed (default 7)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    parser.add_argument(
        "--vms",
        nargs="+",
        default=None,
        metavar="WORKLOAD",
        help=(
            "consolidate these workloads as VMs on one shared cache and "
            "run the figures on that scenario (repeats allowed)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="processes for the simulation grid (default 1 = serial)",
    )
    return parser


def _print_descriptions(descriptions: dict) -> None:
    width = max(len(name) for name in descriptions)
    for name, description in descriptions.items():
        print(f"{name:<{width}}  {description}")


def _run_scenario_file(
    path: str,
    jobs: int = 1,
    quiet: bool = False,
    quick: bool = False,
    seed: Optional[int] = None,
) -> int:
    """Run one scenario file (expanding sweeps); prints each result.

    ``quick``/``seed`` override the file's base preset and seed, so the
    flags mean the same thing with ``--scenario`` as everywhere else.
    """
    try:
        spec = load_scenario(path)
        if quick:
            spec.base = "quick"
        if seed is not None:
            spec = spec.with_value("system.seed", seed)
        spec.validate()
        specs = spec.expand()
    except (ValueError, OSError) as exc:
        # ValueError covers ScenarioError and the workload layer's
        # SpecError — any malformed file exits 2 before simulating
        print(str(exc), file=sys.stderr)
        return 2
    results = run_spec_grid(specs, max_workers=jobs, verbose=not quiet)
    for name, result in results.items():
        print(f"=== {name} ===")
        print(result.summary())
        if len(result.tenant_stats) > 1:
            print(result.tenant_table())
        fingerprint = stats_fingerprint(result)
        print(
            f"fingerprint: completed={fingerprint['completed']} "
            f"events={fingerprint['events_processed']} "
            f"mean_latency={fingerprint['mean_latency']:.3f}µs"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args_list = list(sys.argv[1:] if argv is None else argv)
    if args_list and args_list[0] == "campaign":
        # persistent campaigns have their own subcommand tree; delegate
        # before argparse sees the figure-target grammar
        from repro.campaign.cli import main as campaign_main

        return campaign_main(args_list[1:])
    parser = build_parser()
    args = parser.parse_args(args_list)
    if args.list_workloads:
        _print_descriptions(workload_descriptions())
        return 0
    if args.list_scenarios:
        _print_descriptions(scenario_descriptions())
        return 0
    if args.list_schemes:
        _print_descriptions(scheme_descriptions())
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if (args.scenario is not None or args.dump_scenario is not None) and (
        args.target is not None
    ):
        parser.error(
            "--scenario/--dump-scenario run instead of a figure target; "
            "drop one or the other"
        )
    if args.dump_scenario is not None:
        try:
            print(get_scenario(args.dump_scenario).to_json())
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        return 0
    if args.scenario is not None:
        return _run_scenario_file(
            args.scenario,
            jobs=args.jobs,
            quiet=args.quiet,
            quick=args.quick,
            seed=args.seed,
        )
    if args.target is None:
        parser.error(
            "a target is required (or use --list-workloads / --list-scenarios "
            "/ --scenario / --dump-scenario)"
        )
    seed = 7 if args.seed is None else args.seed
    config = quick_config(seed) if args.quick else paper_config(seed)
    runner = ExperimentRunner(config, verbose=not args.quiet)
    workloads = tuple(args.workloads)
    if args.vms:
        try:
            workloads = (register_consolidation(args.vms),)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        for workload in workloads:
            resolve_workload_name(workload)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.jobs > 1 and args.target != "ablation":
        # pre-simulate the grid in parallel; figures and the reports
        # then read the memo cache (ablation builds its own systems and
        # never consults the runner).  The scheme comparison spans the
        # whole registry, not just the paper trio.
        grid_schemes = scheme_names() if args.target == "schemes" else SCHEMES
        runner.run_many(workloads, grid_schemes, max_workers=args.jobs)

    targets = sorted(_FIGURES) if args.target == "all" else [args.target]
    if args.target == "all":
        targets += ["headline"]

    failed = False
    for target in targets:
        if target == "headline":
            report = generate_headline(runner, workloads)
            print(report.table())
            failed = failed or not report.all_directions_hold
            continue
        if target == "schemes":
            comparison = generate_scheme_compare(runner, workloads)
            print(comparison.table())
            print()
            print(comparison.checks_table())
            failed = failed or not comparison.all_passed
            continue
        if target == "ablation":
            result = run_ablations(workloads[0], config)
            print(result.table())
            continue
        fig = _FIGURES[target](runner, workloads)
        print(fig.ascii_chart)
        print()
        print(fig.checks_table())
        print()
        save_figure_artifacts(fig, args.out)
        failed = failed or not fig.all_passed

    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
