"""Figure 5: I/O load (max latency) on the **disk subsystem** per interval.

Reproduces: Fig. 5 of Ahmadian et al. (DATE 2019) — the disk-side mirror
of Fig. 4, showing bypassed load landing on the under-utilized disk.

The mirror of Fig. 4: the same nine runs, plotted on the HDD queue.  The
shapes to preserve:

- under WB the disk is mostly idle during cache-bound bursts (the whole
  point of the paper's "poor load balancing" observation);
- LBICA moves load *to* the disk — its disk curve rises where its cache
  curve falls, staying below what the cache was suffering before;
- SIB's write-through design keeps the disk loaded at all times (every
  write is mirrored), so its disk curve is the highest on write-heavy
  workloads.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.fig4 import generate_load_figure
from repro.experiments.figures import FigureResult
from repro.experiments.runner import PAPER_WORKLOADS, ExperimentRunner

__all__ = ["generate_fig5"]


def generate_fig5(
    runner: Optional[ExperimentRunner] = None,
    workloads: tuple[str, ...] = PAPER_WORKLOADS,
) -> FigureResult:
    """Regenerate Fig. 5 (disk subsystem load under WB / SIB / LBICA)."""
    runner = runner or ExperimentRunner()
    return generate_load_figure(
        runner,
        "fig5",
        "Fig. 5: I/O load (max latency) on the disk subsystem by WB, SIB, and LBICA",
        "disk_load_series",
        "disk",
        workloads,
    )
