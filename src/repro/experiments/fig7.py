"""Figure 7: average latency achieved by WB cache, SIB, and LBICA.

Reproduces: Fig. 7 of Ahmadian et al. (DATE 2019) and the §IV-D latency
claims (up to 22%/11.7% better than WB/SIB; TPC-C most, mail least).

One bar per (workload × scheme).  Shapes to preserve (§IV-D):

- LBICA has the lowest average latency on every workload;
- the largest LBICA-vs-SIB gain is on TPC-C;
- the smallest gain is on the mail server (its RO span bypasses 70% of
  requests to the disk, so improvement is modest).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii_plot import ascii_bar_chart
from repro.analysis.series import IntervalSeries
from repro.experiments.figures import FigureResult, ShapeCheck
from repro.experiments.runner import PAPER_WORKLOADS, ExperimentRunner

__all__ = ["generate_fig7"]


def generate_fig7(
    runner: Optional[ExperimentRunner] = None,
    workloads: tuple[str, ...] = PAPER_WORKLOADS,
) -> FigureResult:
    """Regenerate Fig. 7 (average latency bars)."""
    runner = runner or ExperimentRunner()
    bars: dict[str, dict[str, float]] = {}
    for workload in workloads:
        bars[workload.upper()] = {
            scheme.upper(): runner.run(workload, scheme).mean_latency
            for scheme in ("wb", "sib", "lbica")
        }

    checks: list[ShapeCheck] = []
    gains: dict[str, float] = {}
    for workload in workloads:
        row = bars[workload.upper()]
        checks.append(
            ShapeCheck(
                name=f"{workload}: LBICA fastest",
                paper_statement="LBICA improves latency vs WB and SIB",
                measured_statement=(
                    f"WB {row['WB']:.0f} / SIB {row['SIB']:.0f} / "
                    f"LBICA {row['LBICA']:.0f} µs"
                ),
                passed=row["LBICA"] < row["WB"] and row["LBICA"] < row["SIB"],
            )
        )
        gains[workload] = (
            (row["SIB"] - row["LBICA"]) / row["SIB"] if row["SIB"] > 0 else 0.0
        )
    if {"tpcc", "mail"} <= set(workloads):
        checks.append(
            ShapeCheck(
                name="largest gain on TPC-C, smallest on mail",
                paper_statement="highest improvement for TPC-C; mail only ~4%",
                measured_statement=", ".join(
                    f"{w}: {gains[w]:.0%} vs SIB" for w in workloads
                ),
                passed=gains["tpcc"] >= max(gains.values()) - 1e-9
                and gains["mail"] <= min(gains.values()) + 1e-9,
            )
        )

    series = {
        "bars": [
            IntervalSeries(
                f"{wl}:{sc}", [bars[wl.upper()][sc.upper()]]
            )
            for wl in workloads
            for sc in ("wb", "sib", "lbica")
        ]
    }
    return FigureResult(
        figure_id="fig7",
        title="Fig. 7: average latency achieved by WB cache, SIB, and LBICA",
        ascii_chart=ascii_bar_chart(
            bars,
            title="average latency (µs), lower is better",
            width=60,
            y_label="µs",
        ),
        series=series,
        checks=checks,
        extra={"bars": bars, "gains_vs_sib": gains},
    )
