"""Ablations of LBICA's design choices (beyond the paper's evaluation).

Reproduces: no single figure — this grid isolates the design decisions
the paper argues for in §II–III (adaptive policy table vs fixed
policies, tail bypass, strict SIB, replacement- and margin-sensitivity)
to check each claim's direction independently.

The paper motivates several design decisions without isolating them; the
ablation grid does:

- **adaptive vs fixed policy**: LBICA's per-group table vs pinning WO or
  RO for the whole run (the paper's criticism of one-policy schemes);
- **tail bypass on/off** for write-intensive bursts (Group 3);
- **strict WT+WO SIB** (Kim et al.'s literal design, no read promotion)
  vs the default read-promoting WT SIB;
- **replacement policy sweep** (LRU / FIFO / CLOCK / LFU) — LBICA's gains
  should be replacement-agnostic;
- **detection margin sweep** for Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cache.write_policy import WritePolicy
from repro.config import SystemConfig, paper_config
from repro.experiments.system import RunResult
from repro.scenario.spec import ScenarioSpec

__all__ = ["AblationResult", "run_ablations", "run_fixed_policy"]


def _run_variant(
    workload: str,
    scheme: str,
    config: SystemConfig,
    fixed_policy: Optional[str] = None,
) -> RunResult:
    """Run one ablation variant through the scenario layer."""
    spec = ScenarioSpec.from_config(config, workload=workload, scheme=scheme)
    spec.fixed_policy = fixed_policy
    return spec.run()


@dataclass
class AblationResult:
    """All ablation rows: variant name -> summary metrics."""

    rows: dict[str, dict] = field(default_factory=dict)

    def add(self, name: str, result: RunResult) -> None:
        """Record one variant's key metrics."""
        series = result.cache_load_series()
        self.rows[name] = {
            "mean_latency_us": result.mean_latency,
            "mean_cache_load_us": sum(series) / len(series) if series else 0.0,
            "peak_cache_load_us": max(series, default=0.0),
            "completed": result.completed,
            "bypassed": result.bypassed_requests,
        }

    def table(self) -> str:
        """Fixed-width summary table."""
        from repro.analysis.report import format_table

        return format_table(
            ["variant", "mean lat (µs)", "mean cache load", "peak cache load", "done"],
            [
                (
                    name,
                    f"{row['mean_latency_us']:.0f}",
                    f"{row['mean_cache_load_us']:.0f}",
                    f"{row['peak_cache_load_us']:.0f}",
                    row["completed"],
                )
                for name, row in self.rows.items()
            ],
            title="ablation summary",
        )


def run_fixed_policy(
    workload: str, policy: WritePolicy, config: SystemConfig
) -> RunResult:
    """Run a workload with one write policy pinned for the whole run."""
    return _run_variant(workload, "wb", config, fixed_policy=policy.value)


def run_ablations(
    workload: str = "mail",
    config: Optional[SystemConfig] = None,
    include_replacement_sweep: bool = True,
    include_margin_sweep: bool = True,
) -> AblationResult:
    """Run the ablation grid on one workload (mail by default — it is the
    only workload exercising all three policy transitions)."""
    config = config or paper_config()
    out = AblationResult()

    # adaptive LBICA vs fixed policies
    out.add("lbica (adaptive)", _run_variant(workload, "lbica", config))
    out.add("fixed WB", _run_variant(workload, "wb", config))
    for policy in (WritePolicy.WO, WritePolicy.RO, WritePolicy.WT):
        out.add(f"fixed {policy.value}", run_fixed_policy(workload, policy, config))

    # tail bypass off (Group 3 keeps WB but sheds nothing)
    no_bypass = replace(
        config, lbica=replace(config.lbica, max_bypass_per_round=1)
    )
    out.add("lbica, tail bypass ~off", _run_variant(workload, "lbica", no_bypass))

    # strict WT+WO SIB (no read promotion — Kim et al.'s literal design)
    strict = replace(config, sib=replace(config.sib, promote_on_miss=False))
    out.add("sib (default WT)", _run_variant(workload, "sib", config))
    out.add("sib (strict WT+WO)", _run_variant(workload, "sib", strict))

    # the remaining grids are declarative sweeps over the base spec
    base = ScenarioSpec.from_config(config, workload=workload, scheme="lbica")
    if include_replacement_sweep:
        replacements = ["lru", "fifo", "clock", "lfu"]
        for repl, spec in zip(
            replacements, base.sweep({"system.replacement": replacements})
        ):
            out.add(f"lbica, {repl}", spec.run())

    if include_margin_sweep:
        margins = [1.0, 1.5, 2.0]
        for margin, spec in zip(
            margins, base.sweep({"system.lbica.margin": margins})
        ):
            out.add(f"lbica, margin={margin}", spec.run())

    return out


def run_disk_headroom_sweep(
    workload: str = "mail",
    config: Optional[SystemConfig] = None,
    disk_counts: tuple[int, ...] = (1, 2, 4),
) -> AblationResult:
    """Sweep the disk subsystem's spindle count under LBICA.

    LBICA's RO and tail-bypass remedies push work onto the disk; this
    sweep quantifies how much the scheme gains from disk-side headroom
    (a striped array vs the paper's single drive).
    """
    config = config or paper_config()
    out = AblationResult()
    base = ScenarioSpec.from_config(config, workload=workload, scheme="lbica")
    for n_disks, spec in zip(
        disk_counts, base.sweep({"system.hdd_disks": list(disk_counts)})
    ):
        out.add(f"lbica, {n_disks} spindle(s)", spec.run())
    return out
