"""Shared machinery for the figure generators.

Every ``figN`` module produces a :class:`FigureResult`: the per-interval
(or per-bar) data, an ASCII rendering (there is no matplotlib in this
environment), optional CSV artifacts, and a set of named *shape checks* —
the qualitative properties of the paper's figure that the reproduction is
expected to preserve (who is highest, who is lowest, where the crossovers
are).  EXPERIMENTS.md and the benchmark suite consume the shape checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis.series import IntervalSeries, write_series_csv

__all__ = ["FigureResult", "ShapeCheck", "save_figure_artifacts"]


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative property of a paper figure."""

    name: str
    paper_statement: str
    measured_statement: str
    passed: bool


@dataclass
class FigureResult:
    """Everything one figure generator produces."""

    figure_id: str
    title: str
    ascii_chart: str
    series: dict[str, list[IntervalSeries]] = field(default_factory=dict)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        """Whether every shape check held."""
        return all(c.passed for c in self.checks)

    def checks_table(self) -> str:
        """Render the shape checks as a fixed-width table."""
        from repro.analysis.report import format_table

        return format_table(
            ["check", "paper", "measured", "ok"],
            [
                (c.name, c.paper_statement, c.measured_statement, "PASS" if c.passed else "FAIL")
                for c in self.checks
            ],
            title=f"{self.figure_id} shape checks",
        )


def save_figure_artifacts(
    result: FigureResult, out_dir: Optional[str | Path]
) -> list[Path]:
    """Write the figure's CSVs and ASCII chart under ``out_dir``.

    Returns the paths written (empty when ``out_dir`` is ``None``).
    """
    if out_dir is None:
        return []
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for panel, series in result.series.items():
        path = out / f"{result.figure_id}_{panel}.csv"
        write_series_csv(path, series)
        written.append(path)
    txt = out / f"{result.figure_id}.txt"
    txt.write_text(
        result.title
        + "\n\n"
        + result.ascii_chart
        + "\n\n"
        + result.checks_table()
        + "\n",
        encoding="utf-8",
    )
    written.append(txt)
    return written
