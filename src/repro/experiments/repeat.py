"""Multi-seed repetition: mean ± stddev over independent runs.

The paper reports single measured runs; a simulator can do better.
:func:`run_repeated` executes the same (workload × scheme) combination
under several seeds and aggregates the metrics the figures use, so every
claim can be checked for seed-robustness (``tests`` and the robustness
benchmark consume this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import SystemConfig, paper_config
from repro.experiments.system import RunResult
from repro.scenario.spec import ScenarioSpec

__all__ = ["RepeatedMetric", "RepeatedResult", "run_repeated"]


@dataclass(frozen=True)
class RepeatedMetric:
    """Mean/stddev/min/max of one metric over seeds."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, name: str, values: Sequence[float]) -> "RepeatedMetric":
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            name=name,
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    def format(self) -> str:
        """``mean ± std`` rendering."""
        return f"{self.mean:.1f} ± {self.std:.1f}"


@dataclass
class RepeatedResult:
    """Aggregated metrics for one (workload, scheme) over several seeds."""

    workload: str
    scheme: str
    seeds: tuple[int, ...]
    mean_latency: RepeatedMetric
    mean_cache_load: RepeatedMetric
    peak_cache_load: RepeatedMetric
    completed: RepeatedMetric
    runs: list[RunResult]

    def coefficient_of_variation(self) -> float:
        """Relative spread of the mean latency across seeds."""
        if self.mean_latency.mean == 0.0:
            return 0.0
        return self.mean_latency.std / self.mean_latency.mean


def run_repeated(
    workload: str,
    scheme: str,
    seeds: Sequence[int],
    config: SystemConfig | None = None,
) -> RepeatedResult:
    """Run one combination once per seed and aggregate.

    Args:
        workload: Registered workload name.
        scheme: ``wb`` / ``sib`` / ``lbica``.
        seeds: Seeds to run (must be non-empty).
        config: Base configuration; the seeds become a declarative
            ``system.seed`` sweep over it.
    """
    if not seeds:
        raise ValueError("at least one seed required")
    config = config or paper_config()
    base = ScenarioSpec.from_config(config, workload=workload, scheme=scheme)
    specs = base.sweep({"system.seed": [int(s) for s in seeds]})
    runs: list[RunResult] = [spec.run() for spec in specs]

    def metric(name: str, values: list[float]) -> RepeatedMetric:
        return RepeatedMetric.from_values(name, values)

    cache_means = [
        sum(r.cache_load_series()) / max(len(r.samples), 1) for r in runs
    ]
    return RepeatedResult(
        workload=workload,
        scheme=scheme,
        seeds=tuple(int(s) for s in seeds),
        mean_latency=metric("mean_latency_us", [r.mean_latency for r in runs]),
        mean_cache_load=metric("mean_cache_load_us", cache_means),
        peak_cache_load=metric(
            "peak_cache_load_us", [max(r.cache_load_series(), default=0.0) for r in runs]
        ),
        completed=metric("completed", [float(r.completed) for r in runs]),
        runs=runs,
    )
