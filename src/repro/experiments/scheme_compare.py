"""The five-scheme comparison: every registered scheme, one table.

The paper's Fig. 7 compares average latency across its three schemes;
this experiment generalizes that panel to the *whole registry* — the
paper trio plus the capacity-allocation competitors (``partition``,
``dynshare``) and anything registered downstream — and reports latency
(mean / p95 / max) alongside the read hit ratio, bypass count, and each
scheme's own decision-log size, per workload.

Shape checks are deliberately conservative: the paper's claims cover
only its own trio (LBICA beats WB on latency), so that ordering is
asserted per workload, while the competitors are only required to make
progress (complete requests, keep a sane hit ratio).  The point of the
table is the open comparison, not a pre-registered verdict.

Reproduces: the Fig. 7 latency comparison, widened to the scheme
registry (rows beyond ``wb``/``sib``/``lbica`` are this repo's
extension, not the paper's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.metrics import percentile
from repro.analysis.report import format_table
from repro.experiments.runner import PAPER_WORKLOADS, ExperimentRunner
from repro.schemes import scheme_names

__all__ = ["SchemeComparison", "generate_scheme_compare"]


@dataclass
class SchemeComparison:
    """The (workload × scheme) comparison table plus its shape checks."""

    workloads: tuple[str, ...]
    schemes: tuple[str, ...]
    #: ``(workload, scheme) -> row metrics`` (JSON-friendly scalars).
    cells: dict[tuple[str, str], dict] = field(default_factory=dict)
    #: ``(description, passed)`` shape checks.
    checks: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every shape check held."""
        return all(ok for _, ok in self.checks)

    def table(self) -> str:
        """Fixed-width latency/hit-ratio table, one row per combination."""
        rows = []
        for workload in self.workloads:
            for scheme in self.schemes:
                cell = self.cells[(workload, scheme)]
                rows.append(
                    (
                        workload,
                        scheme,
                        cell["completed"],
                        f"{cell['mean_latency']:.1f}",
                        f"{cell['p95_latency']:.1f}",
                        f"{cell['max_latency']:.1f}",
                        f"{cell['read_hit_ratio']:.2%}",
                        cell["bypassed"],
                        cell["decisions"],
                    )
                )
        return format_table(
            [
                "workload",
                "scheme",
                "completed",
                "mean µs",
                "p95 µs",
                "max µs",
                "hit ratio",
                "bypassed",
                "decisions",
            ],
            rows,
            title=f"scheme comparison ({len(self.schemes)} schemes)",
        )

    def checks_table(self) -> str:
        """Fixed-width shape-check table."""
        return format_table(
            ["check", "verdict"],
            [(desc, "pass" if ok else "FAIL") for desc, ok in self.checks],
            title="shape checks",
        )


def generate_scheme_compare(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    schemes: Optional[Sequence[str]] = None,
) -> SchemeComparison:
    """Run every scheme on every workload and build the comparison.

    Args:
        runner: Memoizing runner to draw results from (a paper-config
            runner is built when omitted).
        workloads: Workload names (rows).
        schemes: Scheme subset; defaults to the full registry.
    """
    runner = runner or ExperimentRunner()
    names = tuple(schemes) if schemes is not None else scheme_names()
    comparison = SchemeComparison(workloads=tuple(workloads), schemes=names)
    for workload in comparison.workloads:
        for scheme in names:
            result = runner.run(workload, scheme)
            comparison.cells[(workload, scheme)] = {
                "completed": result.completed,
                "mean_latency": result.mean_latency,
                "p95_latency": percentile(result.latencies, 95.0),
                "max_latency": max(result.latencies, default=0.0),
                "read_hit_ratio": result.cache_stats["read_hit_ratio"],
                "bypassed": result.bypassed_requests,
                "decisions": len(result.scheme_decisions),
            }
        for scheme in names:
            cell = comparison.cells[(workload, scheme)]
            comparison.checks.append(
                (
                    f"{workload}/{scheme}: completes requests",
                    cell["completed"] > 0,
                )
            )
        if {"wb", "lbica"} <= set(names):
            comparison.checks.append(
                (
                    f"{workload}: lbica mean latency below wb",
                    comparison.cells[(workload, "lbica")]["mean_latency"]
                    < comparison.cells[(workload, "wb")]["mean_latency"],
                )
            )
    return comparison
