"""Figure 6: LBICA's burst detection, characterization, and policy timeline.

Reproduces: Fig. 6 of Ahmadian et al. (DATE 2019) — per-workload policy
assignment sequences (tpcc: WO; mail: RO→WO→WB; web: RO).

The paper's Fig. 6 shows, for the LBICA runs only, the cache and disk
load curves annotated with the detected burst intervals, the detected
workload class, and the assigned write policy:

- TPC-C: one burst (interval 3), random read → **WO**;
- mail: mixed read-write at 23 → **RO**; random read at 128 → **WO**;
  write-intensive at 134 → **WB** (with tail bypass);
- web: mixed read-write at the first interval → **RO**.

This module renders the same content from the
:class:`~repro.core.lbica.LbicaDecision` log and checks that the
*sequence of assigned policies* matches the paper per workload (interval
positions shift with simulation scaling; the order and the policy-to-
group mapping must not).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii_plot import ascii_line_chart
from repro.analysis.report import format_table
from repro.analysis.series import IntervalSeries
from repro.experiments.figures import FigureResult, ShapeCheck
from repro.experiments.runner import PAPER_WORKLOADS, ExperimentRunner

__all__ = ["generate_fig6", "EXPECTED_POLICY_SEQUENCES"]

#: The paper's assigned-policy sequence per workload (Fig. 6 annotations).
#: The initial policy is always WB; mail's storm assignment restores WB.
EXPECTED_POLICY_SEQUENCES: dict[str, tuple[str, ...]] = {
    "tpcc": ("WO",),
    "mail": ("RO", "WO", "WB"),
    "web": ("RO",),
}


def generate_fig6(
    runner: Optional[ExperimentRunner] = None,
    workloads: tuple[str, ...] = PAPER_WORKLOADS,
) -> FigureResult:
    """Regenerate Fig. 6 (LBICA characterization and policy assignment)."""
    runner = runner or ExperimentRunner()
    panels: dict[str, list[IntervalSeries]] = {}
    charts: list[str] = []
    checks: list[ShapeCheck] = []
    timelines: dict[str, list[tuple[int, str, str, dict]]] = {}

    for workload in workloads:
        result = runner.run(workload, "lbica")
        cache = IntervalSeries("cache", result.cache_load_series())
        disk = IntervalSeries("disk", result.disk_load_series())
        panels[workload] = [cache, disk]
        charts.append(
            ascii_line_chart(
                {"I/O cache": cache.values, "disk": disk.values},
                title=f"fig6({workload}): LBICA load with policy assignments (µs)",
                width=90,
                height=12,
                y_label="µs",
            )
        )
        timeline: list[tuple[int, str, str, dict]] = []
        for decision in result.lbica_decisions:
            if decision.policy_assigned is not None:
                timeline.append(
                    (
                        decision.interval_index,
                        decision.policy_assigned.value,
                        decision.group.value if decision.group else "-",
                        {k: round(v, 3) for k, v in decision.mix.items()},
                    )
                )
        timelines[workload] = timeline
        charts.append(
            format_table(
                ["interval", "policy", "detected group", "queue mix"],
                [(i, p, g, str(m)) for i, p, g, m in timeline],
                title=f"{workload}: policy assignments",
            )
        )

        expected = EXPECTED_POLICY_SEQUENCES.get(workload)
        if expected is not None:
            assigned = tuple(p for _, p, _, _ in timeline)
            # The paper's sequence must appear as a prefix (extra
            # assignments after the scripted story are tolerated and
            # reported).
            passed = assigned[: len(expected)] == expected
            checks.append(
                ShapeCheck(
                    name=f"{workload}: policy sequence",
                    paper_statement=" → ".join(expected),
                    measured_statement=" → ".join(assigned) if assigned else "(none)",
                    passed=passed,
                )
            )
        bursts = [d.interval_index for d in result.lbica_decisions if d.burst]
        checks.append(
            ShapeCheck(
                name=f"{workload}: burst detected",
                paper_statement="burst interval(s) detected via Eq. 1",
                measured_statement=f"{len(bursts)} burst intervals, first at {bursts[0] if bursts else '-'}",
                passed=bool(bursts),
            )
        )

    return FigureResult(
        figure_id="fig6",
        title="Fig. 6: workload characterization and policy assignment by LBICA",
        ascii_chart="\n\n".join(charts),
        series=panels,
        checks=checks,
        extra={"timelines": timelines},
    )
