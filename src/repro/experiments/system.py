"""Build and run one (workload × scheme) experiment.

:class:`ExperimentSystem` wires the full stack together — simulator,
seeded RNG streams, SSD/HDD devices, cache store and controller,
writeback flusher, iostat monitor, blktrace tracer, the workload, and
one registered :class:`~repro.schemes.base.Scheme` (resolved through
:mod:`repro.schemes.registry` — the paper's ``wb`` / ``sib`` / ``lbica``
trio plus any registered competitor) — runs it to the end of the
workload script, and collects a :class:`RunResult` holding everything
the figure generators need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cache.controller import CacheController, PolicyChange
from repro.cache.store import CacheStore
from repro.cache.write_policy import WritePolicy
from repro.cache.writeback import WritebackFlusher
from repro.config import SystemConfig
from repro.core.lbica import LbicaDecision
from repro.devices.array import StripedArrayModel
from repro.devices.base import StorageDevice
from repro.devices.hdd import HddModel
from repro.devices.ssd import SsdModel
from repro.io.device_queue import DeviceQueue
from repro.io.request import Request
from repro.schemes import Scheme, get_scheme, paper_schemes
from repro.service.churn import ChurnManager
from repro.service.slo import SloMonitor
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.trace.blktrace import BlkTracer
from repro.trace.iostat import IntervalSample, IostatMonitor
from repro.workloads.mail import mail_server_workload
from repro.workloads.synthetic import (
    mixed_read_write_workload,
    random_read_workload,
    random_write_workload,
    sequential_read_workload,
    sequential_write_workload,
)
from repro.workloads.bootstorm import boot_storm_workload
from repro.workloads.multi_tenant import (
    MultiTenantWorkload,
    TenantSpec,
    bootstorm_neighbors_workload,
    consolidated3_workload,
)
from repro.workloads.tpcc import tpcc_workload
from repro.workloads.web import web_server_workload

__all__ = [
    "ExperimentSystem",
    "RunResult",
    "SCHEMES",
    "WORKLOADS",
    "register_consolidation",
    "resolve_workload_name",
    "workload_descriptions",
]

#: The comparison schemes of the paper's evaluation — derived from the
#: scheme registry's ``paper_baseline`` flags (importing
#: :mod:`repro.schemes` above registered the builtins).  This is the
#: trio the default figure grids iterate; the full registered set —
#: including the capacity-allocation competitors — is
#: :func:`repro.schemes.scheme_names`.
SCHEMES = paper_schemes()


def _random_read(interval_us, cache_blocks, rate_scale, max_outstanding):
    """Group 1 synthetic: uniform random reads, mostly hits, misses promoted."""
    return random_read_workload(
        interval_us,
        cache_blocks=cache_blocks,
        rate_scale=rate_scale,
        max_outstanding=max_outstanding,
    )


def _random_write(interval_us, cache_blocks, rate_scale, max_outstanding):
    """Group 3 synthetic: random writes over a footprint far beyond the cache."""
    return random_write_workload(
        interval_us,
        cache_blocks=cache_blocks,
        rate_scale=rate_scale,
        max_outstanding=max_outstanding,
    )


def _seq_read(interval_us, cache_blocks, rate_scale, max_outstanding):
    """Group 4 synthetic: a cold sequential scan — every read misses and promotes."""
    return sequential_read_workload(
        interval_us,
        cache_blocks=cache_blocks,
        rate_scale=rate_scale,
        max_outstanding=max_outstanding,
    )


def _seq_write(interval_us, cache_blocks, rate_scale, max_outstanding):
    """Group 3 synthetic: a streaming sequential write over a huge span."""
    return sequential_write_workload(
        interval_us,
        cache_blocks=cache_blocks,
        rate_scale=rate_scale,
        max_outstanding=max_outstanding,
    )


def _mixed_rw(interval_us, cache_blocks, rate_scale, max_outstanding):
    """Group 2 synthetic: reads on a hot set mixed with medium-footprint writes."""
    return mixed_read_write_workload(
        interval_us,
        cache_blocks=cache_blocks,
        rate_scale=rate_scale,
        max_outstanding=max_outstanding,
    )


#: Workload factories by name: f(interval_us, cache_blocks, rate_scale,
#: max_outstanding) -> Workload.  Every factory carries a one-line
#: docstring — that line is what ``workload_descriptions`` (and the CLI's
#: ``--list-workloads``) print.
WORKLOADS: dict[str, Callable] = {
    "tpcc": tpcc_workload,
    "mail": mail_server_workload,
    "web": web_server_workload,
    "bootstorm": boot_storm_workload,
    "random_read": _random_read,
    "random_write": _random_write,
    "seq_read": _seq_read,
    "seq_write": _seq_write,
    "mixed_rw": _mixed_rw,
    # consolidated multi-VM scenarios (one shared cache, per-VM accounting)
    "consolidated3": consolidated3_workload,
    "bootstorm_neighbors": bootstorm_neighbors_workload,
}


def workload_descriptions() -> dict[str, str]:
    """Every registered workload with its one-line docstring, sorted by name."""
    out: dict[str, str] = {}
    for name, factory in sorted(WORKLOADS.items()):
        doc = factory.__doc__ or ""
        first = doc.strip().splitlines()[0].strip() if doc.strip() else ""
        out[name] = first or "(no description)"
    return out

#: Workload names that already build multi-tenant compositions —
#: consolidating one of these again would nest tenants, which the
#: completion routing cannot support.
_MULTI_TENANT_NAMES = {"consolidated3", "bootstorm_neighbors"}


def register_consolidation(names: Sequence[str]) -> str:
    """Register an ad-hoc multi-VM scenario composing registered workloads.

    The registered name encodes its own composition
    (``"vms:web+web"``-style), so a worker process that never saw this
    call can rebuild the factory from the name alone — which is what
    keeps ``--vms`` + ``--jobs`` working under the ``spawn`` start
    method, where the parent's registry mutation is invisible.

    Args:
        names: Registered single-tenant workload names, one per VM
            (repeats allowed — ``("web", "web")`` consolidates two
            identical web servers).

    Returns:
        The registered name (reused if already present).
    """
    if not names:
        raise ValueError("at least one workload name required")
    missing = [n for n in names if n not in WORKLOADS]
    if missing:
        raise ValueError(
            f"unknown workloads {missing}; choose from {sorted(WORKLOADS)}"
        )
    nested = [n for n in names if n in _MULTI_TENANT_NAMES]
    if nested:
        raise ValueError(
            f"workloads {nested} are already multi-tenant; "
            "nested consolidation is not supported"
        )
    scenario = "vms:" + "+".join(names)
    if scenario in WORKLOADS:
        return scenario
    specs = [TenantSpec(WORKLOADS[n]) for n in names]

    def factory(interval_us, cache_blocks, rate_scale, max_outstanding):
        return MultiTenantWorkload.compose(
            scenario,
            specs,
            interval_us,
            cache_blocks=cache_blocks,
            rate_scale=rate_scale,
            max_outstanding=max_outstanding,
        )

    factory.__doc__ = (
        f"Ad-hoc consolidation: {' + '.join(names)} as VMs on one shared cache."
    )
    WORKLOADS[scenario] = factory
    _MULTI_TENANT_NAMES.add(scenario)
    return scenario


def resolve_workload_name(name: str) -> str:
    """Validate a workload name against the registry; returns it.

    The single place name resolution lives: plain names must be
    registered, and self-describing ``"vms:a+b"`` consolidations are
    (re-)registered from their encoded component names — which also
    validates the components.  The CLI pre-flight, scenario-spec
    validation, and :meth:`ExperimentSystem.build` all call this.

    Raises:
        ValueError: On an unknown name or invalid consolidation.
    """
    if name.startswith("vms:"):
        register_consolidation(name[len("vms:"):].split("+"))
    elif name not in WORKLOADS:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        )
    return name


@dataclass
class RunResult:
    """Everything collected from one experiment run."""

    workload: str
    scheme: str
    samples: list[IntervalSample]
    latencies: list[float]
    read_latencies: list[float]
    write_latencies: list[float]
    bypassed_requests: int
    cache_stats: dict
    store_stats: dict
    ssd_queue_stats: dict
    hdd_queue_stats: dict
    workload_stats: dict
    policy_log: list[PolicyChange]
    lbica_decisions: list[LbicaDecision] = field(default_factory=list)
    sib_rounds: int = 0
    sib_overhead_us: float = 0.0
    events_processed: int = 0
    #: The scheme's own decision log (``Scheme.decision_log()`` — one
    #: record per control-loop evaluation, scheme-specific type).  For
    #: lbica this aliases :attr:`lbica_decisions`.
    scheme_decisions: list = field(default_factory=list)
    #: Scheme-specific summary counters (``Scheme.summary_stats()``).
    scheme_stats: dict = field(default_factory=dict)
    #: Per-VM latency populations, keyed by ``tenant_id`` (single-tenant
    #: runs have everything under tenant 0).
    tenant_latencies: dict[int, list[float]] = field(default_factory=dict)
    #: Per-VM breakdown: completed / mean_latency / read_hit_ratio /
    #: bypassed / reads / writes per tenant.
    tenant_stats: dict[int, dict] = field(default_factory=dict)
    #: Per-interval SLO compliance samples (plain dicts; empty for runs
    #: without declared SLO targets).
    slo_series: list = field(default_factory=list)
    #: SLO monitor summary counters (empty without declared targets).
    slo_stats: dict = field(default_factory=dict)
    #: Churn executor counters (empty for runs without tenant churn).
    service_stats: dict = field(default_factory=dict)
    #: Always-on cheap counters (blktrace record/drop totals); stored
    #: artifacts merge these into their ``perf`` section.
    perf_counters: dict = field(default_factory=dict)
    #: Telemetry payload from the obs layer (empty unless the run's
    #: config had ``obs.enabled``): metrics series + summaries, trace
    #: span counts, wall-clock totals.
    telemetry: dict = field(default_factory=dict)

    @property
    def tenant_ids(self) -> list[int]:
        """Tenants observed in this run, sorted."""
        return sorted(self.tenant_stats)

    @property
    def mean_latency(self) -> float:
        """Mean application latency over the whole run (µs)."""
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def completed(self) -> int:
        """Completed application requests."""
        return len(self.latencies)

    def cache_load_series(self) -> list[float]:
        """Per-interval cache queue time (the Fig. 4 curve, µs)."""
        return [s.cache_qtime for s in self.samples]

    def disk_load_series(self) -> list[float]:
        """Per-interval disk queue time (the Fig. 5 curve, µs)."""
        return [s.disk_qtime for s in self.samples]

    def summary(self) -> str:
        """One-paragraph human-readable run summary."""
        text = (
            f"{self.workload}/{self.scheme}: {self.completed} requests, "
            f"mean latency {self.mean_latency:.1f}µs, "
            f"bypassed {self.bypassed_requests}, "
            f"hit ratio {self.cache_stats.get('read_hit_ratio', 0.0):.2%}, "
            f"peak cache Qtime {max(self.cache_load_series(), default=0.0):.0f}µs"
        )
        if len(self.tenant_stats) > 1:
            per_vm = ", ".join(
                f"vm{tid}: {ts['completed']} @ {ts['mean_latency']:.1f}µs"
                for tid, ts in sorted(self.tenant_stats.items())
            )
            text += f" [{per_vm}]"
        return text

    def tenant_table(self) -> str:
        """Fixed-width per-VM breakdown for reports."""
        lines = [
            f"{'vm':>4} {'completed':>10} {'mean µs':>10} {'hit ratio':>10} "
            f"{'bypassed':>9} {'reads':>8} {'writes':>8}"
        ]
        for tid in self.tenant_ids:
            ts = self.tenant_stats[tid]
            lines.append(
                f"{tid:>4} {ts['completed']:>10} {ts['mean_latency']:>10.1f} "
                f"{ts['read_hit_ratio']:>10.2%} {ts['bypassed']:>9} "
                f"{ts['reads']:>8} {ts['writes']:>8}"
            )
        return "\n".join(lines)


class ExperimentSystem:
    """One fully wired simulated storage system."""

    def __init__(
        self,
        workload,
        scheme: str,
        config: SystemConfig,
        trace_records: bool = True,
    ) -> None:
        # Resolve up front so an unknown name fails before any wiring —
        # the error names the registry and lists what *is* registered.
        scheme_cls = get_scheme(scheme)
        config.validate()
        self.config = config
        self.scheme = scheme
        self.workload = workload

        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)

        ssd_model = SsdModel(config.ssd, rng=self.rngs.stream("ssd.jitter"))
        hdd_rng = self.rngs.stream("hdd.jitter")
        if config.hdd_disks > 1:
            hdd_model = StripedArrayModel(
                n_disks=config.hdd_disks, config=config.hdd, rng=hdd_rng
            )
            hdd_depth = config.hdd_depth * config.hdd_disks
        else:
            hdd_model = HddModel(config.hdd, rng=hdd_rng)
            hdd_depth = config.hdd_depth
        self.ssd = StorageDevice(
            self.sim,
            "ssd",
            ssd_model,
            depth=config.ssd_depth,
            queue=DeviceQueue("ssd", config.max_merge_blocks),
        )
        self.hdd = StorageDevice(
            self.sim,
            "hdd",
            hdd_model,
            depth=hdd_depth,
            queue=DeviceQueue("hdd", config.max_merge_blocks),
        )
        self.store = CacheStore(
            config.cache_blocks,
            associativity=config.cache_associativity,
            replacement=config.replacement,
        )
        self.controller = CacheController(
            self.sim, self.ssd, self.hdd, self.store, policy=WritePolicy.WB
        )
        # ``trace_records=False`` keeps the tracer in counters-only mode
        # (no per-transition record retention); batch runs use it since
        # records feed only post-hoc capture/replay, never the stats.
        self.tracer = BlkTracer(self.sim, record_events=trace_records)
        self.tracer.attach(self.ssd)
        self.tracer.attach(self.hdd)
        self.monitor = IostatMonitor(
            self.sim, self.ssd, self.hdd, interval_us=config.interval_us
        )
        self.flusher = WritebackFlusher(self.sim, self.controller, config.writeback)

        # The registry owns construction: each scheme's ``from_system``
        # builds against the wired stack and attaches (installing any
        # datapath hooks it needs, e.g. a cache allocator).
        self.balancer: Scheme = scheme_cls.from_system(self)

        # Service layer (opt-in): a churn executor when any tenant
        # declares a lifecycle event, an SLO monitor when any tenant
        # declares targets.  Lifecycle-free workloads build neither, so
        # their event sequences stay bit-identical.
        self.churn: ChurnManager | None = None
        if getattr(workload, "has_churn", False):
            self.churn = ChurnManager(
                self.sim, self.controller, workload, balancer=self.balancer
            )
        slo_targets = getattr(workload, "slo_targets", None)
        targets = slo_targets() if callable(slo_targets) else {}
        self.slo_monitor: SloMonitor | None = None
        if targets:
            self.slo_monitor = SloMonitor(
                self.sim,
                self.controller,
                targets,
                interval_us=config.interval_us,
                activity_probe=(
                    self.churn.is_active if self.churn is not None else None
                ),
            )
            self.controller.add_completion_hook(self.slo_monitor.record_completion)

        # request accounting
        self._latencies: list[float] = []
        self._read_latencies: list[float] = []
        self._write_latencies: list[float] = []
        self._tenant_latencies: dict[int, list[float]] = {}
        self._bypassed = 0
        self.controller.add_completion_hook(self._on_complete)
        self.controller.add_completion_hook(self.monitor.record_completion)
        self.controller.add_completion_hook(self.workload.on_request_complete)

        # Observability (opt-in): the telemetry orchestrator registers
        # sample hooks and completion/transition observers on the stack
        # built above.  A disabled config builds nothing — this branch is
        # the entire overhead of the obs layer when it is off.
        self.telemetry = None
        if config.obs.enabled:
            from repro.obs.runtime import RunTelemetry

            self.telemetry = RunTelemetry(self, config.obs)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        workload_name: str,
        scheme: str,
        config: SystemConfig,
        trace_records: bool = True,
    ) -> "ExperimentSystem":
        """Construct a system from a registered workload name.

        ``"vms:a+b"``-style names are self-describing: if unknown, the
        consolidation is (re-)registered from the encoded workload
        names — a spawned worker process can therefore build ad-hoc
        scenarios its parent registered.
        """
        factory = WORKLOADS[resolve_workload_name(workload_name)]
        workload = factory(
            config.interval_us,
            cache_blocks=config.cache_blocks,
            rate_scale=config.rate_scale,
            max_outstanding=config.max_outstanding,
        )
        return cls(workload, scheme, config, trace_records=trace_records)

    @classmethod
    def from_spec(cls, spec, config: SystemConfig | None = None) -> "ExperimentSystem":
        """Build from a :class:`~repro.scenario.ScenarioSpec`.

        The scenario layer owns the data-to-system translation
        (registered vs inline workloads, fixed policies, config
        overrides); this delegates to :meth:`ScenarioSpec.build` so
        either layer can be the entry point.
        """
        return spec.build(config)

    # ------------------------------------------------------------------
    def _on_complete(self, request: Request) -> None:
        lat = request.complete_time - request.arrival
        self._latencies.append(lat)
        if request.is_write:
            self._write_latencies.append(lat)
        else:
            self._read_latencies.append(lat)
        tenant_lats = self._tenant_latencies.get(request.tenant_id)
        if tenant_lats is None:
            tenant_lats = self._tenant_latencies[request.tenant_id] = []
        tenant_lats.append(lat)
        if request.bypassed:
            self._bypassed += 1

    # ------------------------------------------------------------------
    def warm_cache(self) -> int:
        """Pre-load the workload's warm set into the cache (clean).

        Returns the number of blocks inserted.  This reproduces the
        paper's "past its warm-up interval" assumption without paying the
        cold-miss path at simulation start.
        """
        count = 0
        for lba in getattr(self.workload, "warm_blocks", ()):
            self.store.insert(lba, 0.0, dirty=False)
            count += 1
        for lba in getattr(self.workload, "warm_dirty_blocks", ()):
            self.store.insert(lba, 0.0, dirty=True)
            count += 1
        return count

    def run(self, until_us: float | None = None) -> RunResult:
        """Run the workload to completion and collect results.

        Args:
            until_us: Optional horizon override (µs).  The default runs
                the workload script to its scripted end plus the
                configured drain; scenario smoke runs pass a short
                horizon to truncate.
        """
        self.warm_cache()
        self.monitor.start()
        self.flusher.start()
        self.balancer.start()
        # The churn executor starts before the workload binds so a
        # same-time arrival's rewarm precedes the tenant's first request.
        if self.churn is not None:
            self.churn.start()
        if self.slo_monitor is not None:
            self.slo_monitor.start()
        self.workload.bind(
            self.sim, self.controller.submit, self.rngs.stream("workload.arrivals")
        )
        horizon = until_us
        if horizon is None:
            horizon = self.workload.duration_us + (
                self.config.drain_intervals * self.config.interval_us
            )
        if self.telemetry is not None:
            self.telemetry.start(horizon)
        self.sim.run(until=horizon)
        if self.telemetry is not None:
            self.telemetry.finish()

        # Dispatch on the registered scheme name rather than importing the
        # concrete controller classes (SL004): the registry owns those.
        lbica_decisions: list[LbicaDecision] = []
        sib_rounds = 0
        sib_overhead = 0.0
        if self.balancer.name == "lbica":
            lbica_decisions = self.balancer.decisions
        elif self.balancer.name == "sib":
            sib_rounds = len(self.balancer.rounds)
            sib_overhead = self.balancer.total_overhead_us

        stats = self.controller.stats
        wl_stats = getattr(self.workload, "stats", None)
        tenant_stats: dict[int, dict] = {}
        for tid, ts in sorted(stats.tenants.items()):
            lats = self._tenant_latencies.get(tid, [])
            tenant_stats[tid] = {
                "completed": ts.completed,
                "mean_latency": ts.mean_latency,
                "max_latency": max(lats, default=0.0),
                "read_hit_ratio": ts.read_hit_ratio,
                "bypassed": ts.bypassed,
                "reads": ts.reads,
                "writes": ts.writes,
            }
        return RunResult(
            workload=self.workload.name,
            scheme=self.scheme,
            samples=list(self.monitor.samples),
            latencies=self._latencies,
            read_latencies=self._read_latencies,
            write_latencies=self._write_latencies,
            bypassed_requests=self._bypassed,
            cache_stats={
                "requests": stats.requests,
                "read_hit_ratio": stats.read_hit_ratio,
                "promotes_issued": stats.promotes_issued,
                "promotes_cancelled": stats.promotes_cancelled,
                "evict_flushes": stats.evict_flushes,
                "writes_bypassed": stats.writes_bypassed,
                "reads_bypassed": stats.reads_bypassed,
                "policy_switches": stats.policy_switches,
                "mean_latency": stats.mean_latency,
            },
            store_stats={
                "occupied": self.store.occupied,
                "dirty": self.store.dirty_count,
                "hit_ratio": self.store.stats.hit_ratio,
                "evictions": self.store.stats.evictions,
                "dirty_evictions": self.store.stats.dirty_evictions,
            },
            ssd_queue_stats=self.ssd.queue.stats.snapshot(),
            hdd_queue_stats=self.hdd.queue.stats.snapshot(),
            workload_stats={
                "generated": getattr(wl_stats, "generated", 0),
                "throttled": getattr(wl_stats, "throttled", 0),
                # Only replay runs drop records; emitting the key
                # conditionally keeps non-replay fingerprints (and every
                # committed golden) byte-identical.
                **(
                    {"skipped": skipped}
                    if (skipped := getattr(wl_stats, "skipped", 0))
                    else {}
                ),
            },
            policy_log=list(stats.policy_log),
            lbica_decisions=lbica_decisions,
            sib_rounds=sib_rounds,
            sib_overhead_us=sib_overhead,
            scheme_decisions=list(self.balancer.decision_log()),
            scheme_stats=self.balancer.summary_stats(),
            events_processed=self.sim.events_processed,
            tenant_latencies={
                tid: list(lats)
                for tid, lats in sorted(self._tenant_latencies.items())
            },
            tenant_stats=tenant_stats,
            slo_series=(
                [s.as_dict() for s in self.slo_monitor.samples]
                if self.slo_monitor is not None
                else []
            ),
            slo_stats=(
                self.slo_monitor.summary() if self.slo_monitor is not None else {}
            ),
            service_stats=self.churn.summary() if self.churn is not None else {},
            perf_counters={
                "trace_records": len(self.tracer.records),
                "trace_dropped": self.tracer.dropped,
                "trace_record_events": self.tracer.record_events,
            },
            telemetry=(
                self.telemetry.result_section()
                if self.telemetry is not None
                else {}
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentSystem({self.workload.name}/{self.scheme})"
