"""repro — a full reproduction of *LBICA: A Load Balancer for I/O Cache
Architectures* (Ahmadian, Salkhordeh, Asadi — DATE 2019).

The package rebuilds the paper's entire stack as a trace-driven
discrete-event simulation:

- :mod:`repro.sim` — the event engine and seeded random streams;
- :mod:`repro.io` — requests, R/W/P/E-tagged device operations, queues;
- :mod:`repro.devices` — SSD (write-cliff) and HDD (write-cache) models;
- :mod:`repro.cache` — an EnhanceIO-like cache with WB/WT/RO/WO policies;
- :mod:`repro.trace` — iostat / blktrace substrates (Eq. 1, queue mixes);
- :mod:`repro.workloads` — TPC-C / mail / web burst workloads and the
  four synthetic characterization groups;
- :mod:`repro.core` — **LBICA** itself (detect → characterize → balance);
- :mod:`repro.baselines` — the WB and SIB comparison schemes;
- :mod:`repro.schemes` — the pluggable scheme layer: the
  :class:`~repro.schemes.Scheme` ABC and registry (``wb`` / ``sib`` /
  ``lbica`` plus the ``partition`` and ``dynshare`` capacity
  allocators; register your own with
  :func:`~repro.schemes.register_scheme`);
- :mod:`repro.analysis` — metrics, series, ASCII plots, reports;
- :mod:`repro.experiments` — one harness per paper figure (4, 5, 6, 7)
  plus headline numbers and ablations;
- :mod:`repro.scenario` — declarative :class:`ScenarioSpec` scenarios
  (JSON in, bit-identical experiment out), the scenario registry, and
  the smoke runner;
- :mod:`repro.store` — the content-addressed on-disk run store
  (atomic JSON artifacts keyed by scenario + config + schema version);
- :mod:`repro.campaign` — resumable campaigns over the store
  (``repro campaign run|status|report|diff``).

Quickstart::

    from repro import ExperimentSystem, paper_config

    system = ExperimentSystem.build("tpcc", "lbica", paper_config())
    result = system.run()
    print(result.summary())

or, the same run as data::

    from repro import ScenarioSpec

    result = ScenarioSpec(name="demo", workload="tpcc", scheme="lbica").run()
"""

from repro.config import SystemConfig, paper_config, quick_config
from repro.cache.write_policy import WritePolicy
from repro.core import (
    LbicaConfig,
    LbicaController,
    WorkloadCharacterizer,
    WorkloadGroup,
)
from repro.experiments.system import ExperimentSystem, RunResult
from repro.scenario import ScenarioSpec, load_scenario
from repro.schemes import Scheme, register_scheme, scheme_names
from repro.store import RunArtifact, RunKey, RunStore
from repro.campaign import CampaignSpec, load_campaign, run_campaign

__all__ = [
    "SystemConfig",
    "paper_config",
    "quick_config",
    "WritePolicy",
    "WorkloadGroup",
    "WorkloadCharacterizer",
    "LbicaController",
    "LbicaConfig",
    "ExperimentSystem",
    "RunResult",
    "Scheme",
    "register_scheme",
    "scheme_names",
    "ScenarioSpec",
    "load_scenario",
    "RunStore",
    "RunKey",
    "RunArtifact",
    "CampaignSpec",
    "load_campaign",
    "run_campaign",
]

__version__ = "1.0.0"
