"""Mail-server-like workload (Fig. 4b / 5b / 6b).

The paper's mail server is the richest timeline — three distinct bursts
with three different LBICA reactions:

- **interval 23**: a mixed read-write burst (queue mix R 13.9% / W 70.4%
  / P 3.9% / E 11.8%) → Group 2 → **RO** assigned; writes bypass to the
  disk for the next ~100 intervals.
- **interval 128**: a random-read burst (R and P dominate) → Group 1 →
  **WO** assigned.
- **interval 134**: a write-intensive burst (~90% W and E) → Group 3 →
  **WB** restored with tail bypass.

The generator scripts those phases directly: a write-heavy delivery mix
(new mail appended across a footprint several times the cache, evicting
dirty blocks), a mailbox-scan read burst, and a delivery storm over a
large footprint that churns dirty evictions.
"""

from __future__ import annotations

from repro.workloads.access_patterns import HotColdPattern, UniformPattern
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["mail_server_workload", "MAIL_TOTAL_INTERVALS", "MAIL_BURSTS"]

#: Number of monitoring intervals in the paper's mail run (Fig. 4b).
MAIL_TOTAL_INTERVALS = 200
#: The paper's detected burst starts: (interval, expected group label).
MAIL_BURSTS = ((23, "mixed_rw"), (128, "random_read"), (134, "write_intensive"))


def mail_server_workload(
    interval_us: float,
    cache_blocks: int = 4096,
    rate_scale: float = 1.0,
    max_outstanding: int = 256,
) -> Workload:
    """Mail server: mixed R/W, a scan burst, then a delivery write storm (paper workload 2)."""
    hot_span = int(cache_blocks * 0.44)
    reads_hot = HotColdPattern(
        hot_start=0,
        hot_span=hot_span,
        cold_start=cache_blocks * 32,
        cold_span=cache_blocks * 24,
        hot_prob=0.95,
    )
    reads_scan = HotColdPattern(
        hot_start=0,
        hot_span=hot_span,
        cold_start=cache_blocks * 32,
        cold_span=cache_blocks * 24,
        hot_prob=0.99,
    )
    writes_medium = UniformPattern(cache_blocks * 8, int(cache_blocks * 0.44))
    writes_large = UniformPattern(cache_blocks * 8, cache_blocks * 15)

    phases = [
        PhaseSpec(
            label="delivery-normal",
            n_intervals=23,
            rate_iops=400.0 * rate_scale,
            write_frac=0.45,
            pattern_read=reads_hot,
            pattern_write=writes_medium,
        ),
        PhaseSpec(
            label="mixed-rw-burst",
            n_intervals=105,  # intervals 23..127
            rate_iops=800.0 * rate_scale,
            write_frac=0.72,
            pattern_read=reads_hot,
            pattern_write=writes_medium,
            burst=True,
        ),
        PhaseSpec(
            label="mailbox-scan-burst",
            n_intervals=6,  # intervals 128..133
            rate_iops=9000.0 * rate_scale,
            write_frac=0.02,
            pattern_read=reads_scan,
            pattern_write=writes_medium,
            burst=True,
        ),
        PhaseSpec(
            label="delivery-storm",
            n_intervals=37,  # intervals 134..170
            rate_iops=650.0 * rate_scale,
            write_frac=0.90,
            pattern_read=reads_hot,
            pattern_write=writes_large,
            burst=True,
        ),
        PhaseSpec(
            label="cooldown",
            n_intervals=MAIL_TOTAL_INTERVALS - 171,
            rate_iops=400.0 * rate_scale,
            write_frac=0.45,
            pattern_read=reads_hot,
            pattern_write=writes_medium,
        ),
    ]
    warm = list(range(hot_span)) + list(
        range(cache_blocks * 8, cache_blocks * 8 + int(cache_blocks * 0.44))
    )
    # Pending-delivery spool: dirty write-back data accumulated before the
    # observed window.  Evicting it during the delivery storm produces the
    # E share of the paper's interval-134 queue mix.
    spool = range(cache_blocks * 200, cache_blocks * 200 + cache_blocks // 16)
    return Workload(
        "mail",
        phases,
        interval_us,
        max_outstanding=max_outstanding,
        warm_blocks=warm,
        warm_dirty_blocks=spool,
    )
