"""The phase-scripted workload engine.

A :class:`Workload` is a list of :class:`PhaseSpec` entries, each lasting
a whole number of monitoring intervals and defining an arrival rate, a
read/write mix, address patterns, and request sizes.  Arrivals follow a
Poisson process (exponential inter-arrival times) subject to
**application backpressure**: at most ``max_outstanding`` requests may be
in flight, mirroring a real application's bounded I/O concurrency.
Backpressure is what keeps queue growth — and therefore simulated
latencies — finite during bursts while still saturating the device under
test.

Arrival pre-generation
----------------------
The open-loop path used to re-arm itself one event at a time: each
``_arrive`` drew a request and its next gap with scalar ``Generator``
calls and ``schedule_call``-ed the next arrival.  Those scalar draws
dominated the whole-run profile, so arrivals are now *pre-generated in
chunks*: :class:`repro.sim.fastdraw.RawDraws` prefetches raw PCG64
words and decodes the exact same draw sequence (bit for bit — the
golden fingerprints pin it), a chunk of future arrivals enters the
calendar as one sorted batch behind a single cancellable event, and the
delivery callback refills the next chunk at a low-water mark so memory
stays O(chunk), not O(horizon).  Backpressure and tenant departure roll
the generator back to the last delivered arrival (state snapshot +
``advance``), after which the scalar path resumes draw-for-draw where a
never-chunked run would be.  The chunked path assumes the workload owns
its RNG stream exclusively (which is how
:class:`~repro.sim.rng.RngRegistry` hands them out); it engages only
for phases whose patterns it can replicate and falls back to the scalar
path everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.io.request import Request
from repro.sim.fastdraw import RawDraws, replication_verified
from repro.workloads.access_patterns import (
    AddressPattern,
    HotColdPattern,
    MixPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)

__all__ = ["PhaseSpec", "Workload", "WorkloadStats"]


def _chunkable(pattern: AddressPattern, stateful: list) -> bool:
    """Whether ``pattern``'s draws can be replicated by :class:`RawDraws`.

    Exact-type checks on purpose: a subclass may override ``sample`` with
    draws the decoder does not know.  Stateful (sequential) patterns are
    collected into ``stateful`` so chunk rollback can restore their
    positions.
    """
    kind = type(pattern)
    if kind is UniformPattern or kind is ZipfPattern:
        return True
    if kind is SequentialPattern:
        stateful.append(pattern)
        return True
    if kind is HotColdPattern:
        return type(pattern.hot) is UniformPattern and type(pattern.cold) is UniformPattern
    if kind is MixPattern:
        return all(_chunkable(p, stateful) for p in pattern._patterns)
    return False


class _ArrivalChunk:
    """Bookkeeping for one pre-generated run of arrivals.

    ``entries[i]`` is ``(time, phase_idx, is_write, lba, nblocks)``; a
    ``phase_idx`` of ``-1`` marks the trailing "script expired" arrival
    (the scalar path's one post-duration no-op event).  ``positions[i]``
    is the :class:`RawDraws` stream position *after* entry ``i``'s
    draws, so a rollback to "entry ``i`` never happened" parks the
    generator at ``positions[i-1]`` (or ``base_pos``).  Sequential
    patterns touched by the chunk are listed in ``stateful`` with their
    pre-touch positions in ``stateful_base`` and per-entry snapshots in
    ``seq_snaps``.
    """

    __slots__ = (
        "base_state",
        "base_pos",
        "event",
        "entries",
        "triples",
        "positions",
        "seq_snaps",
        "stateful",
        "stateful_base",
        "next_i",
        "refill_at",
        "refilled",
        "t_next",
        "fidx_next",
        "final",
    )


@dataclass
class PhaseSpec:
    """One workload phase.

    Attributes:
        label: Human-readable phase name (shows up in experiment logs).
        n_intervals: Duration in monitoring intervals.
        rate_iops: Poisson arrival rate, requests per second.
        write_frac: Probability a request is a write.
        pattern_read: Address pattern for reads.
        pattern_write: Address pattern for writes (defaults to
            ``pattern_read``).
        size_blocks: Request size in 4-KiB blocks — either an int or a
            ``(choices, probabilities)`` pair.
        burst: Whether this phase is a scripted burst window (annotation
            only; the simulator discovers bursts through Eq. 1).
    """

    label: str
    n_intervals: int
    rate_iops: float
    write_frac: float
    pattern_read: AddressPattern
    pattern_write: Optional[AddressPattern] = None
    size_blocks: int | tuple[Sequence[int], Sequence[float]] = 1
    burst: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.n_intervals <= 0:
            raise ValueError(f"phase {self.label!r}: n_intervals must be positive")
        if self.rate_iops <= 0:
            raise ValueError(f"phase {self.label!r}: rate_iops must be positive")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ValueError(f"phase {self.label!r}: write_frac must be in [0, 1]")

    @property
    def write_pattern(self) -> AddressPattern:
        """The effective write address pattern."""
        if self.pattern_write is not None:
            return self.pattern_write
        return self.pattern_read


@dataclass(slots=True)
class WorkloadStats:
    """Counters for one workload run."""

    generated: int = 0
    reads: int = 0
    writes: int = 0
    throttled: int = 0  #: arrivals deferred by backpressure
    skipped: int = 0  #: trace records dropped during replay (non-application events)
    finished: bool = False


class Workload:
    """A multi-phase request generator bound to a simulator.

    Args:
        name: Workload name (``tpcc`` / ``mail`` / ``web`` / ...).
        phases: Phase script (validated on construction).
        interval_us: Monitoring interval length — phases are expressed in
            these units so workload scripts line up with iostat samples.
        max_outstanding: Application concurrency bound (backpressure).
        warm_blocks: Block addresses to pre-load into the cache before the
            run — the paper assumes "the workload has passed its warm-up
            interval" (Section III-B footnote), so hot working sets start
            resident instead of being filled through the miss path.
        warm_dirty_blocks: Addresses pre-loaded *dirty* — write-back data
            accumulated before the observed window (a mail server's
            pending deliveries, a web server's session state).  Evicting
            these is what produces the ``E`` share of the paper's queue
            mixes.

    Attributes:
        chunk_size: Arrivals pre-generated per chunk (when the chunked
            path engages).
        low_water: Remaining-arrival count at which the next chunk is
            filled from the delivery callback.
    """

    #: Class-level kill switch for arrival pre-generation — the
    #: equivalence tests flip it to force the scalar path and assert the
    #: two produce identical streams.
    pregen_enabled: bool = True

    #: Consecutive throttle-aborts that each discarded most of a chunk
    #: before the instance falls back to the scalar path for good.  A
    #: closed-loop workload at saturation would otherwise pre-draw and
    #: revoke a full chunk per backpressure cycle — O(chunk) per
    #: throttle where the scalar path pays O(1).
    pregen_max_strikes: int = 4

    def __init__(
        self,
        name: str,
        phases: Sequence[PhaseSpec],
        interval_us: float,
        max_outstanding: int = 256,
        warm_blocks: Sequence[int] = (),
        warm_dirty_blocks: Sequence[int] = (),
    ) -> None:
        if not phases:
            raise ValueError("at least one phase required")
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        if max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        for phase in phases:
            phase.validate()
        self.name = name
        self.phases = list(phases)
        self.interval_us = interval_us
        self.max_outstanding = max_outstanding
        self.warm_blocks = list(warm_blocks)
        self.warm_dirty_blocks = list(warm_dirty_blocks)
        self.stats = WorkloadStats()
        # phase boundaries in absolute µs
        self._bounds: list[float] = []
        t = 0.0
        for phase in self.phases:
            t += phase.n_intervals * interval_us
            self._bounds.append(t)
        self._phase_idx = 0
        self._outstanding = 0
        self._throttled = False
        self._sim = None
        self._submit: Optional[Callable[[Request], None]] = None
        self._rng: Optional[np.random.Generator] = None
        # Derived values of the phase currently generating arrivals,
        # recomputed only on phase change (see _derived_for).
        self._phase_derived: Optional[tuple] = None
        # Arrival pre-generation (see the module docstring).
        self.chunk_size = 256
        self.low_water = 16
        self._pregen = False
        self._pregen_strikes = 0
        self._chunks: list[_ArrivalChunk] = []

    # ------------------------------------------------------------------
    @property
    def total_intervals(self) -> int:
        """Total scripted duration in monitoring intervals."""
        return sum(p.n_intervals for p in self.phases)

    @property
    def duration_us(self) -> float:
        """Total scripted duration in µs."""
        return self._bounds[-1]

    def phase_at(self, time_us: float) -> PhaseSpec:
        """The phase active at ``time_us`` (clamped to the last phase)."""
        idx = int(np.searchsorted(self._bounds, time_us, side="right"))
        return self.phases[min(idx, len(self.phases) - 1)]

    def shift(self, offset_us: float) -> None:
        """Delay the whole phase script by ``offset_us``.

        Used by multi-tenant composition to stagger VM start times: the
        phase boundaries are stored in absolute simulation time, so a
        tenant bound ``offset_us`` into the run must have its script
        pushed out by the same amount to keep phases aligned with its
        own arrival stream.
        """
        if offset_us < 0:
            raise ValueError("offset_us must be non-negative")
        self._bounds = [b + offset_us for b in self._bounds]

    def stop(self) -> None:
        """Truncate the phase script at the current time (tenant departure).

        Every phase boundary is clamped to *now*, so ``_current_phase``
        sees an expired script: the next pending arrival event is a
        no-op and backpressure resumption stops rescheduling.  The
        boundaries stay monotonic and ``duration_us`` reflects the
        truncated script.  Idempotent; stopping a never-bound workload
        truncates it to zero length.
        """
        now = self._sim.now if self._sim is not None else 0.0
        self._bounds = [min(b, now) for b in self._bounds]
        self.stats.finished = True
        if self._chunks:
            # Pre-generated arrivals past the truncation point must be
            # revoked and their draws undone; the scalar world keeps
            # exactly one pending arrival event (a no-op against the
            # expired script), so reschedule that one.
            head = self._chunks[0]
            i = head.next_i
            t_next = head.entries[i][0]
            self._abort_pregen(head, i)
            self._sim.schedule_call(t_next - now, self._arrive)

    def burst_intervals(self) -> list[int]:
        """Interval indices covered by scripted burst phases."""
        out: list[int] = []
        start = 0
        for phase in self.phases:
            if phase.burst:
                out.extend(range(start, start + phase.n_intervals))
            start += phase.n_intervals
        return out

    # ------------------------------------------------------------------
    # Binding to a simulator
    # ------------------------------------------------------------------
    def bind(
        self, sim, submit: Callable[[Request], None], rng: np.random.Generator
    ) -> None:
        """Attach to a simulator and start generating arrivals.

        The workload assumes ``rng`` is its own stream (as the
        :class:`~repro.sim.rng.RngRegistry` and multi-tenant binding
        provide): the chunked arrival path prefetches draws ahead of
        simulated time, which preserves draw-for-draw equivalence only
        when nothing else consumes from the same generator.
        """
        self._sim = sim
        self._submit = submit
        self._rng = rng
        bit_gen = getattr(rng, "bit_generator", None)
        self._pregen = (
            type(self).pregen_enabled
            and hasattr(sim, "schedule_sorted_calls")
            and type(bit_gen).__name__ == "PCG64"
            and replication_verified()
        )
        sim.schedule_call(self._next_gap(), self._arrive)

    def on_request_complete(self, request: Request) -> None:
        """Backpressure hook: wire to the cache controller's completion."""
        self._outstanding -= 1
        if self._throttled and self._outstanding < self.max_outstanding:
            self._throttled = False
            if self._sim.now < self.duration_us:
                self._sim.schedule_call(self._next_gap(), self._arrive)

    # ------------------------------------------------------------------
    def _current_phase(self) -> Optional[PhaseSpec]:
        now = self._sim.now
        if now >= self.duration_us:
            return None
        while (
            self._phase_idx < len(self._bounds) - 1
            and now >= self._bounds[self._phase_idx]
        ):
            self._phase_idx += 1
        return self.phases[self._phase_idx]

    def _derived_for(self, phase: PhaseSpec) -> tuple:
        """Cached per-phase derived values, recomputed on phase change.

        The tuple is ``(phase, write_frac, sample_read, sample_write,
        fixed_size, mean_gap_us, chunkable, stateful_patterns)`` — every
        attribute chain, isinstance dispatch, and division the arrival
        paths (open loop, chunk fill, and the closed-loop re-arm) would
        otherwise repeat per arrival.
        """
        derived = self._phase_derived
        if derived is None or derived[0] is not phase:
            pattern_write = phase.write_pattern
            size = phase.size_blocks
            fixed = size if isinstance(size, int) else None
            stateful: list[SequentialPattern] = []
            chunkable = (
                fixed is not None
                and _chunkable(phase.pattern_read, stateful)
                and _chunkable(pattern_write, stateful)
            )
            derived = (
                phase,
                phase.write_frac,
                phase.pattern_read.sample,
                pattern_write.sample,
                fixed,
                1e6 / phase.rate_iops,
                chunkable,
                tuple(dict.fromkeys(stateful)),
            )
            self._phase_derived = derived
        return derived

    def _next_gap(self) -> float:
        phase = self.phases[min(self._phase_idx, len(self.phases) - 1)]
        return float(self._rng.exponential(self._derived_for(phase)[5]))

    def _draw_size(self, phase: PhaseSpec) -> int:
        size = phase.size_blocks
        if isinstance(size, int):
            return size
        choices, probs = size
        return int(self._rng.choice(choices, p=probs))

    def _arrive(self) -> None:
        phase = self._current_phase()
        if phase is None:
            self.stats.finished = True
            return
        if self._outstanding >= self.max_outstanding:
            self.stats.throttled += 1
            self._throttled = True
            return  # resumed by on_request_complete
        derived = self._derived_for(phase)
        if self._pregen and derived[6]:
            # Chunked path: pre-draw a run of arrivals (this one
            # included), batch-schedule the rest, deliver this one now.
            chunk = self._fill_chunk(self._sim.now, self._phase_idx)
            # Entry 0 rides this very event; the rest enter as a batch.
            chunk.event = self._sim.schedule_sorted_calls(chunk.triples[1:])
            self._chunks.append(chunk)
            self._deliver(chunk, 0)
            return
        rng = self._rng
        # Scalar path: one arrival per event.  Phase-derived lookups are
        # cached until the phase changes; RNG draw order is untouched.
        _, write_frac, sample_read, sample_write, fixed_size, mean_gap, _, _ = derived
        is_write = bool(rng.random() < write_frac)
        lba = sample_write(rng) if is_write else sample_read(rng)
        nblocks = fixed_size if fixed_size is not None else self._draw_size(phase)
        request = Request(self._sim.now, lba, nblocks, is_write)
        stats = self.stats
        stats.generated += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        self._outstanding += 1
        self._submit(request)
        # _next_gap inlined: the active phase is already in hand.
        self._sim.schedule_call(float(rng.exponential(mean_gap)), self._arrive)

    # ------------------------------------------------------------------
    # Chunked arrival pre-generation
    # ------------------------------------------------------------------
    def _fill_chunk(self, t0: float, fidx0: int) -> "_ArrivalChunk":
        """Pre-draw up to ``chunk_size`` arrivals starting at ``t0``.

        Replays the scalar loop draw for draw — per arrival: the
        write-fraction double, the pattern draw(s), then the gap to the
        next arrival — while tracking phase boundaries against the
        arrival *times* exactly as ``_current_phase`` would at event
        time.  Stops early at a phase it cannot replicate (the caller
        falls back to a scalar arrival there) and appends the trailing
        post-duration no-op arrival when the script runs out.  On
        return, the real generator is parked at the end of everything
        drawn; rollback re-parks it at any recorded entry position.
        """
        bit_gen = self._rng.bit_generator
        base_state = bit_gen.state
        raw = RawDraws(bit_gen)
        chunk = _ArrivalChunk()
        chunk.base_state = base_state
        chunk.base_pos = (0, raw.has32, raw.carry32)
        chunk.stateful = []
        chunk.stateful_base = []
        bounds = self._bounds
        phases = self.phases
        duration = bounds[-1]
        n_last = len(bounds) - 1
        entries: list[tuple[float, int, bool, int, int]] = []
        triples: list[tuple[float, Callable[..., None], tuple[Any, ...]]] = []
        positions: list[tuple[int, bool, int]] = []
        seq_snaps: list[tuple[int, ...]] = []
        raw_random = raw.random
        raw_stdexp = raw.standard_exponential
        deliver = self._deliver
        cur_phase = None
        write_frac = sample_read = sample_write = fixed_size = mean_gap = None
        stateful: tuple[SequentialPattern, ...] = ()
        final = False
        t = t0
        fidx = fidx0
        for _ in range(self.chunk_size):
            if t >= duration:
                # The scalar world's one arrival past the script: it
                # fires, sees an expired script, draws nothing.
                triples.append((t, deliver, (chunk, len(entries))))
                entries.append((t, -1, False, 0, 0))
                positions.append((raw.words_used, raw.has32, raw.carry32))
                if chunk.stateful:
                    seq_snaps.append(tuple(p._pos for p in chunk.stateful))
                final = True
                break
            while fidx < n_last and t >= bounds[fidx]:
                fidx += 1
            phase = phases[fidx]
            if phase is not cur_phase:
                derived = self._derived_for(phase)
                if not derived[6]:
                    break  # unsupported phase: hand over to the scalar path
                _, write_frac, sample_read, sample_write, fixed_size, mean_gap, _, stateful = derived
                for p in stateful:
                    if p not in chunk.stateful:
                        if not chunk.stateful and entries:
                            # First stateful pattern appeared mid-chunk:
                            # earlier entries carry empty snapshots.
                            seq_snaps.extend(() for _ in entries)
                        chunk.stateful.append(p)
                        chunk.stateful_base.append(p._pos)
                cur_phase = phase
            is_write = raw_random() < write_frac
            lba = sample_write(raw) if is_write else sample_read(raw)
            triples.append((t, deliver, (chunk, len(entries))))
            entries.append((t, fidx, is_write, lba, fixed_size))
            # The scalar _arrive draws write, lba, *and the next gap* in
            # one event — the position "after entry i" must sit past the
            # gap draw or a rollback replays it as the resume gap.
            t = t + mean_gap * raw_stdexp()
            positions.append((raw.words_used, raw.has32, raw.carry32))
            if chunk.stateful:
                seq_snaps.append(tuple(p._pos for p in chunk.stateful))
        RawDraws.park(bit_gen, base_state, (raw.words_used, raw.has32, raw.carry32))
        chunk.entries = entries
        chunk.triples = triples
        chunk.positions = positions
        chunk.seq_snaps = seq_snaps
        chunk.next_i = 0
        chunk.refill_at = max(len(entries) - self.low_water, 1)
        chunk.refilled = False
        chunk.t_next = t
        chunk.fidx_next = fidx
        chunk.final = final
        return chunk

    def _deliver(self, chunk: "_ArrivalChunk", i: int) -> None:
        """Deliver pre-generated arrival ``i`` — the chunked ``_arrive``."""
        t, fidx, is_write, lba, nblocks = chunk.entries[i]
        if fidx < 0:  # the script expired at fill time
            self.stats.finished = True
            self._chunks.clear()
            return
        self._phase_idx = fidx
        if self._outstanding >= self.max_outstanding:
            self.stats.throttled += 1
            self._throttled = True
            # This arrival never happened: undo its draws and revoke the
            # rest of the chunk; on_request_complete re-arms scalar.
            # When most of the chunk is being thrown away the workload
            # is saturating its concurrency bound, and every resume
            # would refill a chunk only to revoke it again — after
            # pregen_max_strikes such aborts in a row, stay scalar for
            # good.  The rollback below restores the exact scalar
            # world, so the switch cannot perturb the stats.
            if i * 4 < len(chunk.entries):
                self._pregen_strikes += 1
                if self._pregen_strikes >= self.pregen_max_strikes:
                    self._pregen = False
            else:
                self._pregen_strikes = 0
            self._abort_pregen(chunk, i)
            return
        chunk.next_i = i + 1
        request = Request(t, lba, nblocks, is_write)
        stats = self.stats
        stats.generated += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        self._outstanding += 1
        self._submit(request)
        if chunk.next_i == len(chunk.entries):
            self._chunks.remove(chunk)
        if not chunk.refilled and not chunk.final and chunk.next_i >= chunk.refill_at:
            chunk.refilled = True
            self._pregen_strikes = 0  # a well-consumed chunk clears the count
            self._refill(chunk)

    def _refill(self, chunk: "_ArrivalChunk") -> None:
        """Low-water callback: pre-draw the chunk after ``chunk``."""
        new = self._fill_chunk(chunk.t_next, chunk.fidx_next)
        if not new.entries:
            # The continuation phase cannot be pre-generated: schedule
            # the one arrival the scalar world would have pending.
            self._sim.schedule_call(chunk.t_next - self._sim.now, self._arrive)
            return
        new.event = self._sim.schedule_sorted_calls(new.triples)
        self._chunks.append(new)

    def _abort_pregen(self, chunk: "_ArrivalChunk", i: int) -> None:
        """Roll the world back to "entry ``i`` of ``chunk`` never fired".

        Cancels every still-pending pre-generated arrival (one shared
        event per chunk), rewinds sequential-pattern positions, and
        parks the generator after entry ``i - 1``'s draws, so subsequent
        scalar draws continue bit-identically to a never-chunked run.
        Chunks filled after ``chunk`` are discarded wholesale — their
        draws sit past the park point and their pattern state is undone
        first (restores are absolute, latest fill first).
        """
        chunks = self._chunks
        for later in reversed(chunks):
            later.event.cancel()
            if later is chunk:
                break
            for idx, p in enumerate(later.stateful):
                p._pos = later.stateful_base[idx]
        if chunk.stateful:
            snap = chunk.seq_snaps[i - 1] if i else ()
            for idx, p in enumerate(chunk.stateful):
                p._pos = snap[idx] if idx < len(snap) else chunk.stateful_base[idx]
        pos = chunk.positions[i - 1] if i else chunk.base_pos
        RawDraws.park(self._rng.bit_generator, chunk.base_state, pos)
        chunks.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workload({self.name!r}, phases={len(self.phases)}, "
            f"intervals={self.total_intervals})"
        )
