"""The phase-scripted workload engine.

A :class:`Workload` is a list of :class:`PhaseSpec` entries, each lasting
a whole number of monitoring intervals and defining an arrival rate, a
read/write mix, address patterns, and request sizes.  Arrivals follow a
Poisson process (exponential inter-arrival times) subject to
**application backpressure**: at most ``max_outstanding`` requests may be
in flight, mirroring a real application's bounded I/O concurrency.
Backpressure is what keeps queue growth — and therefore simulated
latencies — finite during bursts while still saturating the device under
test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.io.request import Request
from repro.workloads.access_patterns import AddressPattern

__all__ = ["PhaseSpec", "Workload", "WorkloadStats"]


@dataclass
class PhaseSpec:
    """One workload phase.

    Attributes:
        label: Human-readable phase name (shows up in experiment logs).
        n_intervals: Duration in monitoring intervals.
        rate_iops: Poisson arrival rate, requests per second.
        write_frac: Probability a request is a write.
        pattern_read: Address pattern for reads.
        pattern_write: Address pattern for writes (defaults to
            ``pattern_read``).
        size_blocks: Request size in 4-KiB blocks — either an int or a
            ``(choices, probabilities)`` pair.
        burst: Whether this phase is a scripted burst window (annotation
            only; the simulator discovers bursts through Eq. 1).
    """

    label: str
    n_intervals: int
    rate_iops: float
    write_frac: float
    pattern_read: AddressPattern
    pattern_write: Optional[AddressPattern] = None
    size_blocks: int | tuple[Sequence[int], Sequence[float]] = 1
    burst: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.n_intervals <= 0:
            raise ValueError(f"phase {self.label!r}: n_intervals must be positive")
        if self.rate_iops <= 0:
            raise ValueError(f"phase {self.label!r}: rate_iops must be positive")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ValueError(f"phase {self.label!r}: write_frac must be in [0, 1]")

    @property
    def write_pattern(self) -> AddressPattern:
        """The effective write address pattern."""
        if self.pattern_write is not None:
            return self.pattern_write
        return self.pattern_read


@dataclass
class WorkloadStats:
    """Counters for one workload run."""

    generated: int = 0
    reads: int = 0
    writes: int = 0
    throttled: int = 0  #: arrivals deferred by backpressure
    finished: bool = False


class Workload:
    """A multi-phase request generator bound to a simulator.

    Args:
        name: Workload name (``tpcc`` / ``mail`` / ``web`` / ...).
        phases: Phase script (validated on construction).
        interval_us: Monitoring interval length — phases are expressed in
            these units so workload scripts line up with iostat samples.
        max_outstanding: Application concurrency bound (backpressure).
        warm_blocks: Block addresses to pre-load into the cache before the
            run — the paper assumes "the workload has passed its warm-up
            interval" (Section III-B footnote), so hot working sets start
            resident instead of being filled through the miss path.
        warm_dirty_blocks: Addresses pre-loaded *dirty* — write-back data
            accumulated before the observed window (a mail server's
            pending deliveries, a web server's session state).  Evicting
            these is what produces the ``E`` share of the paper's queue
            mixes.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[PhaseSpec],
        interval_us: float,
        max_outstanding: int = 256,
        warm_blocks: Sequence[int] = (),
        warm_dirty_blocks: Sequence[int] = (),
    ) -> None:
        if not phases:
            raise ValueError("at least one phase required")
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        if max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        for phase in phases:
            phase.validate()
        self.name = name
        self.phases = list(phases)
        self.interval_us = interval_us
        self.max_outstanding = max_outstanding
        self.warm_blocks = list(warm_blocks)
        self.warm_dirty_blocks = list(warm_dirty_blocks)
        self.stats = WorkloadStats()
        # phase boundaries in absolute µs
        self._bounds: list[float] = []
        t = 0.0
        for phase in self.phases:
            t += phase.n_intervals * interval_us
            self._bounds.append(t)
        self._phase_idx = 0
        self._outstanding = 0
        self._throttled = False
        self._sim = None
        self._submit: Optional[Callable[[Request], None]] = None
        self._rng: Optional[np.random.Generator] = None
        # Derived values of the phase currently generating arrivals,
        # recomputed only on phase change (see _arrive).
        self._phase_derived: Optional[tuple] = None

    # ------------------------------------------------------------------
    @property
    def total_intervals(self) -> int:
        """Total scripted duration in monitoring intervals."""
        return sum(p.n_intervals for p in self.phases)

    @property
    def duration_us(self) -> float:
        """Total scripted duration in µs."""
        return self._bounds[-1]

    def phase_at(self, time_us: float) -> PhaseSpec:
        """The phase active at ``time_us`` (clamped to the last phase)."""
        idx = int(np.searchsorted(self._bounds, time_us, side="right"))
        return self.phases[min(idx, len(self.phases) - 1)]

    def shift(self, offset_us: float) -> None:
        """Delay the whole phase script by ``offset_us``.

        Used by multi-tenant composition to stagger VM start times: the
        phase boundaries are stored in absolute simulation time, so a
        tenant bound ``offset_us`` into the run must have its script
        pushed out by the same amount to keep phases aligned with its
        own arrival stream.
        """
        if offset_us < 0:
            raise ValueError("offset_us must be non-negative")
        self._bounds = [b + offset_us for b in self._bounds]

    def stop(self) -> None:
        """Truncate the phase script at the current time (tenant departure).

        Every phase boundary is clamped to *now*, so ``_current_phase``
        sees an expired script: the next pending arrival event is a
        no-op and backpressure resumption stops rescheduling.  The
        boundaries stay monotonic and ``duration_us`` reflects the
        truncated script.  Idempotent; stopping a never-bound workload
        truncates it to zero length.
        """
        now = self._sim.now if self._sim is not None else 0.0
        self._bounds = [min(b, now) for b in self._bounds]
        self.stats.finished = True

    def burst_intervals(self) -> list[int]:
        """Interval indices covered by scripted burst phases."""
        out: list[int] = []
        start = 0
        for phase in self.phases:
            if phase.burst:
                out.extend(range(start, start + phase.n_intervals))
            start += phase.n_intervals
        return out

    # ------------------------------------------------------------------
    # Binding to a simulator
    # ------------------------------------------------------------------
    def bind(
        self, sim, submit: Callable[[Request], None], rng: np.random.Generator
    ) -> None:
        """Attach to a simulator and start generating arrivals."""
        self._sim = sim
        self._submit = submit
        self._rng = rng
        sim.schedule_call(self._next_gap(), self._arrive)

    def on_request_complete(self, request: Request) -> None:
        """Backpressure hook: wire to the cache controller's completion."""
        self._outstanding -= 1
        if self._throttled and self._outstanding < self.max_outstanding:
            self._throttled = False
            if self._sim.now < self.duration_us:
                self._sim.schedule_call(self._next_gap(), self._arrive)

    # ------------------------------------------------------------------
    def _current_phase(self) -> Optional[PhaseSpec]:
        now = self._sim.now
        if now >= self.duration_us:
            return None
        while (
            self._phase_idx < len(self._bounds) - 1
            and now >= self._bounds[self._phase_idx]
        ):
            self._phase_idx += 1
        return self.phases[self._phase_idx]

    def _next_gap(self) -> float:
        phase = self.phases[min(self._phase_idx, len(self.phases) - 1)]
        mean_gap_us = 1e6 / phase.rate_iops
        return float(self._rng.exponential(mean_gap_us))

    def _draw_size(self, phase: PhaseSpec) -> int:
        size = phase.size_blocks
        if isinstance(size, int):
            return size
        choices, probs = size
        return int(self._rng.choice(choices, p=probs))

    def _arrive(self) -> None:
        phase = self._current_phase()
        if phase is None:
            self.stats.finished = True
            return
        if self._outstanding >= self.max_outstanding:
            self.stats.throttled += 1
            self._throttled = True
            return  # resumed by on_request_complete
        rng = self._rng
        # One arrival per event makes this the generator's inner loop:
        # phase-derived lookups (properties, isinstance dispatch) are
        # cached until the phase changes.  RNG draw order is untouched.
        derived = self._phase_derived
        if derived is None or derived[0] is not phase:
            pattern_write = phase.write_pattern
            size = phase.size_blocks
            derived = (
                phase,
                phase.write_frac,
                phase.pattern_read.sample,
                pattern_write.sample,
                size if isinstance(size, int) else None,
            )
            self._phase_derived = derived
        _, write_frac, sample_read, sample_write, fixed_size = derived
        is_write = bool(rng.random() < write_frac)
        lba = sample_write(rng) if is_write else sample_read(rng)
        nblocks = fixed_size if fixed_size is not None else self._draw_size(phase)
        request = Request(self._sim.now, lba, nblocks, is_write)
        stats = self.stats
        stats.generated += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        self._outstanding += 1
        self._submit(request)
        # _next_gap inlined: the active phase is already in hand.
        self._sim.schedule_call(
            float(rng.exponential(1e6 / phase.rate_iops)), self._arrive
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workload({self.name!r}, phases={len(self.phases)}, "
            f"intervals={self.total_intervals})"
        )
