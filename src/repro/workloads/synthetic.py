"""Single-pattern synthetic workloads for the paper's four groups.

Section III-B defines four characterization groups; each factory here
produces a workload whose steady queue mix lands in one group, which the
unit and integration tests use to validate the characterizer end-to-end:

- :func:`random_read_workload` → Group 1 (R + P)
- :func:`mixed_read_write_workload` → Group 2 (R + W)
- :func:`random_write_workload` → Group 3 (W + E, W-heavy → random write)
- :func:`sequential_write_workload` → Group 3 (sequential write)
- :func:`sequential_read_workload` → Group 4 (P dominant)
"""

from __future__ import annotations

from repro.workloads.access_patterns import (
    HotColdPattern,
    SequentialPattern,
    UniformPattern,
)
from repro.workloads.base import PhaseSpec, Workload

__all__ = [
    "random_read_workload",
    "random_write_workload",
    "sequential_read_workload",
    "sequential_write_workload",
    "mixed_read_write_workload",
]


def random_read_workload(
    interval_us: float,
    n_intervals: int = 20,
    cache_blocks: int = 4096,
    rate_iops: float = 5000.0,
    rate_scale: float = 1.0,
    hot_prob: float = 0.97,
    max_outstanding: int = 256,
) -> Workload:
    """Group 1: random reads, mostly hits, misses promoted."""
    reads = HotColdPattern(
        hot_start=0,
        hot_span=int(cache_blocks * 0.73),
        cold_start=cache_blocks * 32,
        cold_span=cache_blocks * 24,
        hot_prob=hot_prob,
    )
    phase = PhaseSpec(
        label="random-read",
        n_intervals=n_intervals,
        rate_iops=rate_iops * rate_scale,
        write_frac=0.0,
        pattern_read=reads,
        burst=True,
    )
    return Workload(
        "random_read",
        [phase],
        interval_us,
        max_outstanding,
        warm_blocks=range(int(cache_blocks * 0.73)),
    )


def random_write_workload(
    interval_us: float,
    n_intervals: int = 20,
    cache_blocks: int = 4096,
    rate_iops: float = 1100.0,
    rate_scale: float = 1.0,
    max_outstanding: int = 256,
) -> Workload:
    """Group 3 (random write): writes over a footprint ≫ cache.

    The default rate intentionally exceeds the disk subsystem's sustained
    write (destage) capacity: bypassing *all* writes (RO) would overload
    the disk, which is exactly why the paper keeps WB and sheds only the
    over-threshold queue tail for this group.
    """
    writes = UniformPattern(0, cache_blocks * 15)
    phase = PhaseSpec(
        label="random-write",
        n_intervals=n_intervals,
        rate_iops=rate_iops * rate_scale,
        write_frac=0.97,
        pattern_read=writes,
        pattern_write=writes,
        burst=True,
    )
    return Workload("random_write", [phase], interval_us, max_outstanding)


def sequential_read_workload(
    interval_us: float,
    n_intervals: int = 20,
    cache_blocks: int = 4096,
    rate_iops: float = 1200.0,
    rate_scale: float = 1.0,
    size_blocks: int = 8,
    max_outstanding: int = 256,
) -> Workload:
    """Group 4: a cold sequential scan — every read misses and promotes."""
    span = cache_blocks * 64  # far larger than cache: never re-hit
    reads = SequentialPattern(cache_blocks * 64, span, stride=size_blocks)
    phase = PhaseSpec(
        label="seq-read",
        n_intervals=n_intervals,
        rate_iops=rate_iops * rate_scale,
        write_frac=0.0,
        pattern_read=reads,
        size_blocks=size_blocks,
        burst=True,
    )
    return Workload("seq_read", [phase], interval_us, max_outstanding)


def sequential_write_workload(
    interval_us: float,
    n_intervals: int = 20,
    cache_blocks: int = 4096,
    rate_iops: float = 700.0,
    rate_scale: float = 1.0,
    size_blocks: int = 8,
    max_outstanding: int = 256,
) -> Workload:
    """Group 3 (sequential write): a streaming write over a huge span."""
    span = cache_blocks * 64
    writes = SequentialPattern(cache_blocks * 160, span, stride=size_blocks)
    phase = PhaseSpec(
        label="seq-write",
        n_intervals=n_intervals,
        rate_iops=rate_iops * rate_scale,
        write_frac=1.0,
        pattern_read=writes,
        pattern_write=writes,
        size_blocks=size_blocks,
        burst=True,
    )
    return Workload("seq_write", [phase], interval_us, max_outstanding)


def mixed_read_write_workload(
    interval_us: float,
    n_intervals: int = 20,
    cache_blocks: int = 4096,
    rate_iops: float = 850.0,
    rate_scale: float = 1.0,
    write_frac: float = 0.70,
    max_outstanding: int = 256,
) -> Workload:
    """Group 2: reads on a hot set, writes over a medium footprint."""
    reads = HotColdPattern(
        hot_start=0,
        hot_span=int(cache_blocks * 0.44),
        cold_start=cache_blocks * 32,
        cold_span=cache_blocks * 24,
        hot_prob=0.95,
    )
    writes = UniformPattern(cache_blocks * 8, int(cache_blocks * 0.44))
    phase = PhaseSpec(
        label="mixed-rw",
        n_intervals=n_intervals,
        rate_iops=rate_iops * rate_scale,
        write_frac=write_frac,
        pattern_read=reads,
        pattern_write=writes,
        burst=True,
    )
    warm = list(range(int(cache_blocks * 0.44))) + list(
        range(cache_blocks * 8, cache_blocks * 8 + int(cache_blocks * 0.44))
    )
    return Workload("mixed_rw", [phase], interval_us, max_outstanding, warm_blocks=warm)
