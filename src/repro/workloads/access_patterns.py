"""Block-address generators.

Every pattern maps a random draw to a 4-KiB block address inside its
footprint.  Footprint size relative to cache capacity is what controls
the hit ratio, and hence the promote (``P``) and evict (``E``) traffic
that drives the paper's workload characterization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right

import numpy as np

__all__ = [
    "AddressPattern",
    "UniformPattern",
    "ZipfPattern",
    "HotColdPattern",
    "SequentialPattern",
    "MixPattern",
]


class AddressPattern(ABC):
    """A stateful or stateless generator of block addresses."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw the next block address."""

    @property
    @abstractmethod
    def footprint(self) -> int:
        """Number of distinct blocks the pattern can touch."""


class UniformPattern(AddressPattern):
    """Uniform random addresses in ``[start, start + span)``."""

    def __init__(self, start: int, span: int) -> None:
        if span <= 0:
            raise ValueError("span must be positive")
        self.start = start
        self.span = span

    def sample(self, rng: np.random.Generator) -> int:
        return self.start + int(rng.integers(0, self.span))

    @property
    def footprint(self) -> int:
        return self.span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformPattern({self.start}+{self.span})"


class ZipfPattern(AddressPattern):
    """Zipf-distributed addresses over a bounded span.

    Block ``k`` (0-based rank) is drawn with probability proportional to
    ``1 / (k + 1) ** s``.  Ranks are mapped to addresses through a fixed
    permutation seedable per pattern, so "hot" blocks are scattered over
    the footprint instead of clustered at low addresses (which would
    otherwise interact with set indexing).
    """

    def __init__(
        self, start: int, span: int, s: float = 1.1, perm_seed: int = 1
    ) -> None:
        if span <= 0:
            raise ValueError("span must be positive")
        if s <= 0:
            raise ValueError("skew s must be positive")
        self.start = start
        self.span = span
        self.s = s
        weights = 1.0 / np.power(np.arange(1, span + 1, dtype=np.float64), s)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        # Only Python-list forms are kept: bisect on a list beats a
        # scalar np.searchsorted call, returns the identical index (both
        # are exact binary searches over the same doubles), and dropping
        # the numpy originals halves the per-pattern resident footprint.
        self._cdf: list[float] = cdf.tolist()
        self._perm: list[int] = (
            np.random.default_rng(perm_seed).permutation(span).tolist()
        )

    def sample(self, rng: np.random.Generator) -> int:
        rank = bisect_right(self._cdf, rng.random())
        if rank >= self.span:
            rank = self.span - 1
        return self.start + self._perm[rank]

    @property
    def footprint(self) -> int:
        return self.span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ZipfPattern({self.start}+{self.span}, s={self.s})"


class HotColdPattern(AddressPattern):
    """Two-tier locality: a hot region hit with ``hot_prob``, else cold.

    The classic 90/10 knob: with a hot region that fits in the cache and
    a cold region that does not, ``1 - hot_prob`` directly dials the miss
    (and therefore promotion) rate.
    """

    def __init__(
        self,
        hot_start: int,
        hot_span: int,
        cold_start: int,
        cold_span: int,
        hot_prob: float = 0.9,
    ) -> None:
        if not 0.0 <= hot_prob <= 1.0:
            raise ValueError("hot_prob must be in [0, 1]")
        self.hot = UniformPattern(hot_start, hot_span)
        self.cold = UniformPattern(cold_start, cold_span)
        self.hot_prob = hot_prob

    def sample(self, rng: np.random.Generator) -> int:
        if rng.random() < self.hot_prob:
            return self.hot.sample(rng)
        return self.cold.sample(rng)

    @property
    def footprint(self) -> int:
        return self.hot.span + self.cold.span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HotColdPattern(hot={self.hot.start}+{self.hot.span}, "
            f"cold={self.cold.start}+{self.cold.span}, p={self.hot_prob})"
        )


class SequentialPattern(AddressPattern):
    """A sequential stream over ``[start, start + span)``, wrapping.

    ``stride`` blocks are consumed per sample (use together with the same
    request size for a contiguous scan).
    """

    def __init__(self, start: int, span: int, stride: int = 1) -> None:
        if span <= 0 or stride <= 0:
            raise ValueError("span and stride must be positive")
        self.start = start
        self.span = span
        self.stride = stride
        self._pos = 0

    def sample(self, rng: np.random.Generator) -> int:
        lba = self.start + self._pos
        self._pos = (self._pos + self.stride) % self.span
        return lba

    @property
    def footprint(self) -> int:
        return self.span

    def reset(self) -> None:
        """Rewind the stream to its start."""
        self._pos = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SequentialPattern({self.start}+{self.span}, stride={self.stride})"


class MixPattern(AddressPattern):
    """A probabilistic mixture of other patterns."""

    def __init__(self, components: list[tuple[float, AddressPattern]]) -> None:
        if not components:
            raise ValueError("at least one component required")
        total = sum(p for p, _ in components)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._cut: list[float] = np.cumsum(
            [p / total for p, _ in components]
        ).tolist()
        self._patterns = [pat for _, pat in components]

    def sample(self, rng: np.random.Generator) -> int:
        idx = bisect_right(self._cut, rng.random())
        if idx >= len(self._patterns):
            idx = len(self._patterns) - 1
        return self._patterns[idx].sample(rng)

    @property
    def footprint(self) -> int:
        return sum(p.footprint for p in self._patterns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MixPattern({len(self._patterns)} components)"
