"""Declarative workload specifications (dict / JSON).

Lets experiments be described as data rather than code — useful for
sweeps, external tooling, and storing workload definitions next to their
results.  A spec is a dict of the form::

    {
      "name": "my_workload",
      "max_outstanding": 256,
      "warm": [{"kind": "range", "start": 0, "span": 2048, "dirty": false}],
      "phases": [
        {
          "label": "burst",
          "n_intervals": 40,
          "rate_iops": 5000,
          "write_frac": 0.02,
          "burst": true,
          "size_blocks": 1,
          "read_pattern":  {"kind": "hotcold", "hot_start": 0,
                             "hot_span": 3000, "cold_start": 131072,
                             "cold_span": 98304, "hot_prob": 0.97},
          "write_pattern": {"kind": "uniform", "start": 0, "span": 3000}
        }
      ]
    }

Pattern kinds: ``uniform``, ``zipf``, ``hotcold``, ``sequential``,
``mix`` (with ``components: [{"weight": ..., "pattern": {...}}]``).

:func:`workload_from_spec` builds a live
:class:`~repro.workloads.base.Workload`; :func:`load_workload_spec`
parses a JSON file first.  Unknown keys raise — specs are validated, not
silently pruned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.workloads.access_patterns import (
    AddressPattern,
    HotColdPattern,
    MixPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["workload_from_spec", "load_workload_spec", "pattern_from_spec", "SpecError"]


class SpecError(ValueError):
    """Raised for malformed workload specifications."""


def _require(spec: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in spec:
        raise SpecError(f"{context}: missing required key {key!r}")
    return spec[key]


def _check_keys(spec: Mapping[str, Any], allowed: set[str], context: str) -> None:
    unknown = set(spec) - allowed
    if unknown:
        raise SpecError(f"{context}: unknown keys {sorted(unknown)}")


def pattern_from_spec(spec: Mapping[str, Any]) -> AddressPattern:
    """Build an address pattern from its spec dict."""
    kind = _require(spec, "kind", "pattern")
    if kind == "uniform":
        _check_keys(spec, {"kind", "start", "span"}, "uniform pattern")
        return UniformPattern(int(_require(spec, "start", "uniform")),
                              int(_require(spec, "span", "uniform")))
    if kind == "zipf":
        _check_keys(spec, {"kind", "start", "span", "s", "perm_seed"}, "zipf pattern")
        return ZipfPattern(
            int(_require(spec, "start", "zipf")),
            int(_require(spec, "span", "zipf")),
            s=float(spec.get("s", 1.1)),
            perm_seed=int(spec.get("perm_seed", 1)),
        )
    if kind == "hotcold":
        _check_keys(
            spec,
            {"kind", "hot_start", "hot_span", "cold_start", "cold_span", "hot_prob"},
            "hotcold pattern",
        )
        return HotColdPattern(
            int(_require(spec, "hot_start", "hotcold")),
            int(_require(spec, "hot_span", "hotcold")),
            int(_require(spec, "cold_start", "hotcold")),
            int(_require(spec, "cold_span", "hotcold")),
            hot_prob=float(spec.get("hot_prob", 0.9)),
        )
    if kind == "sequential":
        _check_keys(spec, {"kind", "start", "span", "stride"}, "sequential pattern")
        return SequentialPattern(
            int(_require(spec, "start", "sequential")),
            int(_require(spec, "span", "sequential")),
            stride=int(spec.get("stride", 1)),
        )
    if kind == "mix":
        _check_keys(spec, {"kind", "components"}, "mix pattern")
        components = _require(spec, "components", "mix")
        if not isinstance(components, list) or not components:
            raise SpecError("mix pattern: components must be a non-empty list")
        built = []
        for comp in components:
            _check_keys(comp, {"weight", "pattern"}, "mix component")
            built.append(
                (
                    float(_require(comp, "weight", "mix component")),
                    pattern_from_spec(_require(comp, "pattern", "mix component")),
                )
            )
        return MixPattern(built)
    raise SpecError(f"unknown pattern kind {kind!r}")


def _phase_from_spec(spec: Mapping[str, Any], index: int) -> PhaseSpec:
    context = f"phase[{index}]"
    _check_keys(
        spec,
        {
            "label",
            "n_intervals",
            "rate_iops",
            "write_frac",
            "burst",
            "size_blocks",
            "read_pattern",
            "write_pattern",
        },
        context,
    )
    size: Any = spec.get("size_blocks", 1)
    if isinstance(size, list):
        choices = [int(c) for c, _ in size]
        probs = [float(p) for _, p in size]
        size = (choices, probs)
    phase = PhaseSpec(
        label=str(spec.get("label", f"phase{index}")),
        n_intervals=int(_require(spec, "n_intervals", context)),
        rate_iops=float(_require(spec, "rate_iops", context)),
        write_frac=float(spec.get("write_frac", 0.0)),
        pattern_read=pattern_from_spec(_require(spec, "read_pattern", context)),
        pattern_write=(
            pattern_from_spec(spec["write_pattern"])
            if "write_pattern" in spec
            else None
        ),
        size_blocks=size,
        burst=bool(spec.get("burst", False)),
    )
    phase.validate()
    return phase


def _warm_from_spec(entries: list, context: str) -> tuple[list[int], list[int]]:
    clean: list[int] = []
    dirty: list[int] = []
    for i, entry in enumerate(entries):
        _check_keys(entry, {"kind", "start", "span", "dirty"}, f"{context}[{i}]")
        if entry.get("kind", "range") != "range":
            raise SpecError(f"{context}[{i}]: only 'range' warm entries supported")
        start = int(_require(entry, "start", f"{context}[{i}]"))
        span = int(_require(entry, "span", f"{context}[{i}]"))
        target = dirty if entry.get("dirty", False) else clean
        target.extend(range(start, start + span))
    return clean, dirty


def workload_from_spec(
    spec: Mapping[str, Any], interval_us: float
) -> Workload:
    """Build a :class:`Workload` from a spec dict.

    Args:
        spec: The specification (see module docstring).
        interval_us: Monitoring interval the phases are expressed in.

    Raises:
        SpecError: On missing/unknown keys or invalid values.
    """
    _check_keys(
        spec, {"name", "max_outstanding", "warm", "phases"}, "workload spec"
    )
    phases_spec = _require(spec, "phases", "workload spec")
    if not isinstance(phases_spec, list) or not phases_spec:
        raise SpecError("workload spec: phases must be a non-empty list")
    phases = [_phase_from_spec(p, i) for i, p in enumerate(phases_spec)]
    warm_clean, warm_dirty = _warm_from_spec(spec.get("warm", []), "warm")
    return Workload(
        str(spec.get("name", "spec_workload")),
        phases,
        interval_us,
        max_outstanding=int(spec.get("max_outstanding", 256)),
        warm_blocks=warm_clean,
        warm_dirty_blocks=warm_dirty,
    )


def load_workload_spec(path: str | Path, interval_us: float) -> Workload:
    """Parse a JSON spec file and build the workload."""
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: invalid JSON ({exc})") from None
    return workload_from_spec(spec, interval_us)
