"""Declarative workload specifications (dict / JSON).

Lets experiments be described as data rather than code — useful for
sweeps, external tooling, and storing workload definitions next to their
results.  A spec is a dict of the form::

    {
      "name": "my_workload",
      "max_outstanding": 256,
      "warm": [{"kind": "range", "start": 0, "span": 2048, "dirty": false}],
      "phases": [
        {
          "label": "burst",
          "n_intervals": 40,
          "rate_iops": 5000,
          "write_frac": 0.02,
          "burst": true,
          "size_blocks": 1,
          "read_pattern":  {"kind": "hotcold", "hot_start": 0,
                             "hot_span": 3000, "cold_start": 131072,
                             "cold_span": 98304, "hot_prob": 0.97},
          "write_pattern": {"kind": "uniform", "start": 0, "span": 3000}
        }
      ]
    }

Pattern kinds: ``uniform``, ``zipf``, ``hotcold``, ``sequential``,
``mix`` (with ``components: [{"weight": ..., "pattern": {...}}]``).

Multi-VM consolidations are data too: a spec with a ``tenants`` section
instead of ``phases`` builds a
:class:`~repro.workloads.multi_tenant.MultiTenantWorkload` — fair-share
footprint sizing, disjoint LBA striding, per-VM RNG streams, and phase
``shift`` offsets all included::

    {
      "name": "consolidated3",
      "tenants": [
        {"workload": "tpcc", "rate_scale": 0.55},
        {"workload": "mail", "rate_scale": 0.75, "offset_intervals": 5},
        {"workload": {... inline phases spec ...}, "label": "custom"}
      ]
    }

Each tenant's ``workload`` is either a registered workload name or a
nested inline spec of this same schema (``phases`` form only — tenants
cannot nest).

Tenant entries may additionally declare a **service lifecycle** —
``arrive_at_us`` / ``depart_at_us`` / ``migrate_at_us`` times and an
``slo`` block (``p99_latency_us`` / ``min_hit_ratio``) — and a
top-level ``churn`` block (``seed``, ``arrive_window_intervals``,
``mean_lifetime_intervals``, ``min_lifetime_intervals``,
``keep_first``) draws a seeded churn process for every tenant that did
not declare explicit times.  See :mod:`repro.service`.

A third form replays a **trace file** instead of generating arrivals: a
spec with a ``trace`` section builds a streaming
:class:`~repro.workloads.replay.ReplayWorkload` — the file is read
lazily through a format adapter, optionally reshaped by trace
operators, and optionally cloned into N interleaved tenants::

    {
      "name": "prod_replay",
      "trace": {
        "path": "examples/traces/capture.trace",
        "adapter": "native",
        "operators": [{"op": "time_compress", "factor": 8}],
        "interleave": 3,
        "lba_stride_blocks": 65536,
        "duration_us": 2000000.0
      }
    }

Adapters come from :mod:`repro.trace.adapters`, operators from
:mod:`repro.trace.operators`; ``docs/TRACES.md`` walks through the whole
section.  Replay timestamps are authoritative, so the ``rate_scale`` /
``max_outstanding`` knobs do not apply to this form.

:func:`workload_from_spec` builds a live
:class:`~repro.workloads.base.Workload`; :func:`load_workload_spec`
parses a JSON file first.  Unknown keys raise — specs are validated, not
silently pruned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

from repro.workloads.access_patterns import (
    AddressPattern,
    HotColdPattern,
    MixPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["workload_from_spec", "load_workload_spec", "pattern_from_spec", "SpecError"]


class SpecError(ValueError):
    """Raised for malformed workload specifications."""


def _require(spec: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in spec:
        raise SpecError(f"{context}: missing required key {key!r}")
    return spec[key]


def _check_keys(spec: Mapping[str, Any], allowed: set[str], context: str) -> None:
    unknown = set(spec) - allowed
    if unknown:
        raise SpecError(f"{context}: unknown keys {sorted(unknown)}")


def pattern_from_spec(spec: Mapping[str, Any]) -> AddressPattern:
    """Build an address pattern from its spec dict."""
    kind = _require(spec, "kind", "pattern")
    if kind == "uniform":
        _check_keys(spec, {"kind", "start", "span"}, "uniform pattern")
        return UniformPattern(int(_require(spec, "start", "uniform")),
                              int(_require(spec, "span", "uniform")))
    if kind == "zipf":
        _check_keys(spec, {"kind", "start", "span", "s", "perm_seed"}, "zipf pattern")
        return ZipfPattern(
            int(_require(spec, "start", "zipf")),
            int(_require(spec, "span", "zipf")),
            s=float(spec.get("s", 1.1)),
            perm_seed=int(spec.get("perm_seed", 1)),
        )
    if kind == "hotcold":
        _check_keys(
            spec,
            {"kind", "hot_start", "hot_span", "cold_start", "cold_span", "hot_prob"},
            "hotcold pattern",
        )
        return HotColdPattern(
            int(_require(spec, "hot_start", "hotcold")),
            int(_require(spec, "hot_span", "hotcold")),
            int(_require(spec, "cold_start", "hotcold")),
            int(_require(spec, "cold_span", "hotcold")),
            hot_prob=float(spec.get("hot_prob", 0.9)),
        )
    if kind == "sequential":
        _check_keys(spec, {"kind", "start", "span", "stride"}, "sequential pattern")
        return SequentialPattern(
            int(_require(spec, "start", "sequential")),
            int(_require(spec, "span", "sequential")),
            stride=int(spec.get("stride", 1)),
        )
    if kind == "mix":
        _check_keys(spec, {"kind", "components"}, "mix pattern")
        components = _require(spec, "components", "mix")
        if not isinstance(components, list) or not components:
            raise SpecError("mix pattern: components must be a non-empty list")
        built = []
        for comp in components:
            _check_keys(comp, {"weight", "pattern"}, "mix component")
            built.append(
                (
                    float(_require(comp, "weight", "mix component")),
                    pattern_from_spec(_require(comp, "pattern", "mix component")),
                )
            )
        return MixPattern(built)
    raise SpecError(f"unknown pattern kind {kind!r}")


def _phase_from_spec(
    spec: Mapping[str, Any], index: int, rate_scale: float = 1.0
) -> PhaseSpec:
    context = f"phase[{index}]"
    _check_keys(
        spec,
        {
            "label",
            "n_intervals",
            "rate_iops",
            "write_frac",
            "burst",
            "size_blocks",
            "read_pattern",
            "write_pattern",
        },
        context,
    )
    size: Any = spec.get("size_blocks", 1)
    if isinstance(size, list):
        choices = [int(c) for c, _ in size]
        probs = [float(p) for _, p in size]
        size = (choices, probs)
    phase = PhaseSpec(
        label=str(spec.get("label", f"phase{index}")),
        n_intervals=int(_require(spec, "n_intervals", context)),
        rate_iops=float(_require(spec, "rate_iops", context)) * rate_scale,
        write_frac=float(spec.get("write_frac", 0.0)),
        pattern_read=pattern_from_spec(_require(spec, "read_pattern", context)),
        pattern_write=(
            pattern_from_spec(spec["write_pattern"])
            if "write_pattern" in spec
            else None
        ),
        size_blocks=size,
        burst=bool(spec.get("burst", False)),
    )
    phase.validate()
    return phase


def _warm_from_spec(entries: list, context: str) -> tuple[list[int], list[int]]:
    clean: list[int] = []
    dirty: list[int] = []
    for i, entry in enumerate(entries):
        _check_keys(entry, {"kind", "start", "span", "dirty"}, f"{context}[{i}]")
        if entry.get("kind", "range") != "range":
            raise SpecError(f"{context}[{i}]: only 'range' warm entries supported")
        start = int(_require(entry, "start", f"{context}[{i}]"))
        span = int(_require(entry, "span", f"{context}[{i}]"))
        target = dirty if entry.get("dirty", False) else clean
        target.extend(range(start, start + span))
    return clean, dirty


def _resolve_tenant_factory(workload: Any, context: str) -> Callable:
    """A registry-signature factory for one tenant's ``workload`` entry."""
    if isinstance(workload, str):
        # Imported lazily: the experiment harness sits above the workload
        # layer, and only tenant specs referencing registered names need
        # its registry.
        from repro.experiments.system import _MULTI_TENANT_NAMES, WORKLOADS

        factory = WORKLOADS.get(workload)
        if factory is None:
            raise SpecError(
                f"{context}: unknown workload {workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        if workload in _MULTI_TENANT_NAMES:
            raise SpecError(
                f"{context}: workload {workload!r} is already multi-tenant; "
                "tenants cannot nest"
            )
        return factory
    if isinstance(workload, Mapping):
        if "tenants" in workload:
            raise SpecError(f"{context}: tenants cannot nest tenant specs")

        def factory(
            interval_us: float,
            cache_blocks: int = 4096,
            rate_scale: float = 1.0,
            max_outstanding: int = 256,
        ) -> Workload:
            return workload_from_spec(
                workload,
                interval_us,
                cache_blocks=cache_blocks,
                rate_scale=rate_scale,
                max_outstanding=max_outstanding,
            )

        return factory
    raise SpecError(
        f"{context}: workload must be a registered name or an inline spec dict"
    )


def _lifecycle_from_entry(entry: Mapping[str, Any], context: str):
    """A :class:`TenantLifecycle` from one tenant entry's service keys."""
    from repro.service.churn import TenantLifecycle
    from repro.service.slo import ServiceError, SloTarget

    arrive = entry.get("arrive_at_us")
    depart = entry.get("depart_at_us")
    migrate = entry.get("migrate_at_us", [])
    slo_spec = entry.get("slo")
    if arrive is None and depart is None and not migrate and slo_spec is None:
        return None
    if not isinstance(migrate, list):
        raise SpecError(f"{context}: migrate_at_us must be a list of times")
    try:
        slo = None if slo_spec is None else SloTarget.from_spec(slo_spec, context)
        lifecycle = TenantLifecycle(
            arrive_at_us=None if arrive is None else float(arrive),
            depart_at_us=None if depart is None else float(depart),
            migrate_at_us=tuple(float(t) for t in migrate),
            slo=slo,
        )
        lifecycle.validate()
    except ServiceError as exc:
        raise SpecError(str(exc)) from None
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{context}: {exc}") from None
    return lifecycle


def _apply_churn_block(
    churn_spec: Mapping[str, Any], tenant_specs: list, interval_us: float
) -> None:
    """Fill tenant lifecycles from a seeded ``churn`` process block.

    Explicit per-tenant churn times win over generated ones; a tenant
    that only declared an SLO adopts the generated times alongside it.
    """
    from repro.service.churn import TenantLifecycle, generate_lifecycles
    from repro.service.slo import ServiceError

    _check_keys(
        churn_spec,
        {
            "seed",
            "arrive_window_intervals",
            "mean_lifetime_intervals",
            "min_lifetime_intervals",
            "keep_first",
        },
        "churn",
    )
    try:
        generated = generate_lifecycles(
            len(tenant_specs),
            interval_us,
            seed=int(_require(churn_spec, "seed", "churn")),
            arrive_window_intervals=float(
                churn_spec.get("arrive_window_intervals", 10.0)
            ),
            mean_lifetime_intervals=float(
                churn_spec.get("mean_lifetime_intervals", 40.0)
            ),
            min_lifetime_intervals=float(
                churn_spec.get("min_lifetime_intervals", 5.0)
            ),
            keep_first=bool(churn_spec.get("keep_first", True)),
        )
    except ServiceError as exc:
        raise SpecError(f"churn: {exc}") from None
    for i, tenant in enumerate(tenant_specs):
        if tenant.offset_intervals:
            raise SpecError(
                f"tenants[{i}]: offset_intervals cannot be combined with a "
                "churn block (arrival times come from the process)"
            )
        if tenant.lifecycle is None:
            tenant.lifecycle = generated[i]
        elif not tenant.lifecycle.has_churn:
            tenant.lifecycle = TenantLifecycle(
                arrive_at_us=generated[i].arrive_at_us,
                depart_at_us=generated[i].depart_at_us,
                migrate_at_us=generated[i].migrate_at_us,
                slo=tenant.lifecycle.slo,
            )


def _multi_tenant_from_spec(
    spec: Mapping[str, Any],
    interval_us: float,
    cache_blocks: int,
    rate_scale: float,
    max_outstanding: Optional[int],
):
    """Build a :class:`MultiTenantWorkload` from a ``tenants`` spec."""
    from repro.workloads.multi_tenant import MultiTenantWorkload, TenantSpec

    _check_keys(
        spec,
        {"name", "tenants", "lba_stride_blocks", "max_outstanding", "churn"},
        "tenant workload spec",
    )
    entries = _require(spec, "tenants", "tenant workload spec")
    if not isinstance(entries, list) or not entries:
        raise SpecError("tenant workload spec: tenants must be a non-empty list")
    tenant_specs = []
    for i, entry in enumerate(entries):
        context = f"tenants[{i}]"
        if not isinstance(entry, Mapping):
            raise SpecError(f"{context}: expected a mapping")
        _check_keys(
            entry,
            {
                "workload",
                "rate_scale",
                "offset_intervals",
                "label",
                "arrive_at_us",
                "depart_at_us",
                "migrate_at_us",
                "slo",
            },
            context,
        )
        tenant_specs.append(
            TenantSpec(
                factory=_resolve_tenant_factory(
                    _require(entry, "workload", context), context
                ),
                rate_scale=float(entry.get("rate_scale", 1.0)),
                offset_intervals=int(entry.get("offset_intervals", 0)),
                label=entry.get("label"),
                lifecycle=_lifecycle_from_entry(entry, context),
            )
        )
    churn_spec = spec.get("churn")
    if churn_spec is not None:
        if not isinstance(churn_spec, Mapping):
            raise SpecError("tenant workload spec: churn must be a mapping")
        _apply_churn_block(churn_spec, tenant_specs, interval_us)
    resolved_outstanding = int(
        spec.get(
            "max_outstanding", 256 if max_outstanding is None else max_outstanding
        )
    )
    stride = spec.get("lba_stride_blocks")
    try:
        return MultiTenantWorkload.compose(
            str(spec.get("name", "spec_scenario")),
            tenant_specs,
            interval_us,
            cache_blocks=cache_blocks,
            rate_scale=rate_scale,
            max_outstanding=resolved_outstanding,
            lba_stride_blocks=None if stride is None else int(stride),
        )
    except SpecError:
        raise
    except ValueError as exc:
        raise SpecError(f"tenant workload spec: {exc}") from None


def _replay_from_spec(spec: Mapping[str, Any]) -> Any:
    """Build a :class:`ReplayWorkload` from a ``trace`` spec.

    Validation is eager — the file must exist, the adapter must be
    registered, and every operator spec must compile — so a bad scenario
    fails at build time, not thousands of simulated microseconds in.
    The trace file itself stays unread until the run pulls its first
    chunk (streaming is preserved).
    """
    from repro.trace.adapters import get_adapter
    from repro.trace.operators import compile_operator, lba_shift
    from repro.trace.parser import iter_trace
    from repro.workloads.replay import ReplayWorkload

    _check_keys(spec, {"name", "trace"}, "trace workload spec")
    trace = _require(spec, "trace", "trace workload spec")
    if not isinstance(trace, Mapping):
        raise SpecError("trace workload spec: trace must be a mapping")
    _check_keys(
        trace,
        {
            "path",
            "adapter",
            "operators",
            "interleave",
            "lba_stride_blocks",
            "time_scale",
            "streaming",
            "chunk_records",
            "duration_us",
        },
        "trace",
    )
    path = Path(str(_require(trace, "path", "trace")))
    if not path.is_file():
        raise SpecError(f"trace: no such trace file: {path}")
    adapter = str(trace.get("adapter", "native"))
    try:
        get_adapter(adapter)  # existence probe; iter_trace re-resolves fresh
    except ValueError as exc:
        raise SpecError(f"trace: {exc}") from None
    op_specs = trace.get("operators", [])
    if not isinstance(op_specs, list):
        raise SpecError("trace: operators must be a list of operator specs")
    try:
        transforms = [compile_operator(op) for op in op_specs]
    except ValueError as exc:
        raise SpecError(f"trace: {exc}") from None
    tenants = int(trace.get("interleave", 1))
    if tenants < 1:
        raise SpecError("trace: interleave must be >= 1")
    stride = int(trace.get("lba_stride_blocks", 0))
    if stride < 0:
        raise SpecError("trace: lba_stride_blocks must be non-negative")
    streaming = trace.get("streaming")
    if streaming is not None:
        streaming = bool(streaming)
    if tenants > 1 and streaming is False:
        raise SpecError("trace: interleaved replay is always streaming")

    def stream(tenant: int):
        recs = iter_trace(path, adapter=adapter)
        for transform in transforms:
            recs = transform(recs)
        if stride and tenant:
            recs = lba_shift(recs, tenant * stride)
        return recs

    kwargs: dict[str, Any] = {
        "time_scale": float(trace.get("time_scale", 1.0)),
        "name": str(spec.get("name", "trace_replay")),
    }
    if "chunk_records" in trace:
        kwargs["chunk_records"] = int(trace["chunk_records"])
    if "duration_us" in trace:
        kwargs["duration_us"] = float(trace["duration_us"])
    try:
        if tenants == 1:
            return ReplayWorkload(stream(0), streaming=streaming, **kwargs)
        return ReplayWorkload(
            streams=[stream(t) for t in range(tenants)], **kwargs
        )
    except ValueError as exc:
        raise SpecError(f"trace: {exc}") from None


def workload_from_spec(
    spec: Mapping[str, Any],
    interval_us: float,
    *,
    cache_blocks: int = 4096,
    rate_scale: float = 1.0,
    max_outstanding: Optional[int] = None,
) -> Workload:
    """Build a :class:`Workload` from a spec dict.

    Args:
        spec: The specification (see module docstring) — ``phases`` form
            for a single-tenant workload, ``tenants`` form for a
            multi-VM consolidation, ``trace`` form for file replay.
        interval_us: Monitoring interval the phases are expressed in.
        cache_blocks: Shared cache capacity tenant fair-shares are sized
            against (``tenants`` form only).
        rate_scale: Multiplier applied to every phase's arrival rate (and
            composed with per-tenant rate scales) — the run-level knob
            :class:`~repro.config.SystemConfig` carries.  Ignored by the
            ``trace`` form (replay timestamps are authoritative; use the
            trace section's ``time_scale`` / operators instead).
        max_outstanding: Default application concurrency bound when the
            spec does not set its own ``max_outstanding``.  Ignored by
            the ``trace`` form (replay never throttles).

    Raises:
        SpecError: On missing/unknown keys or invalid values.
    """
    if isinstance(spec, Mapping) and "trace" in spec:
        return _replay_from_spec(spec)
    if isinstance(spec, Mapping) and "tenants" in spec:
        return _multi_tenant_from_spec(
            spec, interval_us, cache_blocks, rate_scale, max_outstanding
        )
    _check_keys(
        spec, {"name", "max_outstanding", "warm", "phases"}, "workload spec"
    )
    phases_spec = _require(spec, "phases", "workload spec")
    if not isinstance(phases_spec, list) or not phases_spec:
        raise SpecError("workload spec: phases must be a non-empty list")
    phases = [
        _phase_from_spec(p, i, rate_scale) for i, p in enumerate(phases_spec)
    ]
    warm_clean, warm_dirty = _warm_from_spec(spec.get("warm", []), "warm")
    return Workload(
        str(spec.get("name", "spec_workload")),
        phases,
        interval_us,
        max_outstanding=int(
            spec.get(
                "max_outstanding", 256 if max_outstanding is None else max_outstanding
            )
        ),
        warm_blocks=warm_clean,
        warm_dirty_blocks=warm_dirty,
    )


def load_workload_spec(path: str | Path, interval_us: float, **kw: Any) -> Workload:
    """Parse a JSON spec file and build the workload.

    Keyword arguments are forwarded to :func:`workload_from_spec`
    (``cache_blocks`` / ``rate_scale`` / ``max_outstanding``).
    """
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: invalid JSON ({exc})") from None
    return workload_from_spec(spec, interval_us, **kw)
