"""Boot-storm workload — the paper's motivating example.

The introduction opens with "boot storms" as the canonical burst that
overwhelms an I/O cache: many virtual machines booting simultaneously
read the same OS images (massive, highly-shared random reads with a cold
tail), then settle into a light steady state.  The shared image region
fits the cache, so the storm is Group 1 (R + P): exactly the case where
LBICA's WO assignment prevents the promotion stream from melting the
SSD while the handful of cold misses stream from the disk.
"""

from __future__ import annotations

from repro.workloads.access_patterns import HotColdPattern
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["boot_storm_workload"]


def boot_storm_workload(
    interval_us: float,
    cache_blocks: int = 4096,
    rate_scale: float = 1.0,
    n_vms: int = 64,
    max_outstanding: int = 256,
) -> Workload:
    """Boot storm: many VMs cold-reading OS images at once (beyond-paper scenario).

    Args:
        interval_us: Monitoring interval length (µs).
        cache_blocks: Cache capacity the footprints are sized against.
        rate_scale: Multiplier on arrival rates.
        n_vms: Booting VM count; scales the storm's arrival rate (a
            gentle sub-linear ramp — boots overlap, not stack).
        max_outstanding: Application concurrency bound.
    """
    if n_vms < 1:
        raise ValueError("n_vms must be >= 1")
    image_span = int(cache_blocks * 0.70)  # shared OS image: cacheable
    reads = HotColdPattern(
        hot_start=0,
        hot_span=image_span,
        cold_start=cache_blocks * 40,
        cold_span=cache_blocks * 30,  # per-VM unique blocks: cold
        hot_prob=0.95,
    )
    storm_rate = min(1500.0 + 90.0 * n_vms, 9000.0) * rate_scale

    phases = [
        PhaseSpec(
            label="boot-storm",
            n_intervals=25,
            rate_iops=storm_rate,
            write_frac=0.02,
            pattern_read=reads,
            burst=True,
        ),
        PhaseSpec(
            label="settled",
            n_intervals=55,
            rate_iops=800.0 * rate_scale,
            write_frac=0.15,
            pattern_read=reads,
        ),
    ]
    return Workload(
        "bootstorm",
        phases,
        interval_us,
        max_outstanding=max_outstanding,
        warm_blocks=range(image_span),
    )
