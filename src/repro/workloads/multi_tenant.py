"""Multi-tenant (multi-VM) workload composition.

LBICA targets *virtualized platforms*: several VMs share one SSD I/O
cache, and one VM's burst degrades its neighbours' I/O.  A
:class:`MultiTenantWorkload` reproduces that deployment model by
composing N existing workloads into one arrival stream over a shared
cache:

- every request is stamped with its VM's ``tenant_id`` so the cache
  controller and iostat monitor can break latency / hit-ratio / bypass
  accounting down per VM;
- each VM gets a disjoint LBA region (its own virtual disk) via a fixed
  per-tenant address stride — VMs contend for cache *capacity* and
  *queue slots*, not for blocks;
- each VM draws arrivals from an independent RNG stream derived
  deterministically from the run's workload stream and the VM's tenant
  index, so appending a tenant never perturbs an existing tenant's
  arrival sequence (reordering tenants reassigns indices and therefore
  streams);
- per-VM rate scales and phase offsets (in monitoring intervals)
  stagger the tenants, e.g. a boot storm landing beside an
  already-steady web server.

Two consolidated scenarios are registered with the experiment harness
(see ``repro.experiments.system.WORKLOADS``): ``consolidated3`` (TPC-C +
mail + web on one cache) and ``bootstorm_neighbors`` (a boot storm
beside a steady web server).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.io.request import Request
from repro.service.churn import TenantLifecycle
from repro.service.slo import SloTarget
from repro.workloads.base import Workload, WorkloadStats
from repro.workloads.bootstorm import boot_storm_workload
from repro.workloads.mail import mail_server_workload
from repro.workloads.tpcc import tpcc_workload
from repro.workloads.web import web_server_workload

__all__ = [
    "TenantSpec",
    "MultiTenantWorkload",
    "consolidated3_workload",
    "bootstorm_neighbors_workload",
    "DEFAULT_LBA_STRIDE_FACTOR",
]

#: Default per-tenant LBA stride, in units of ``cache_blocks``.  The
#: widest single-workload footprint (the mail/web dirty spool) reaches
#: ``cache_blocks * 200 + cache_blocks // 16``, so 256 keeps every
#: tenant's virtual disk disjoint with headroom.
DEFAULT_LBA_STRIDE_FACTOR = 256


@dataclass
class TenantSpec:
    """One VM in a consolidation scenario.

    Attributes:
        factory: Workload factory with the registry signature
            ``f(interval_us, cache_blocks=..., rate_scale=...,
            max_outstanding=...)``.
        rate_scale: Per-VM multiplier applied on top of the run-level
            ``rate_scale`` (consolidated VMs usually run below their
            dedicated-cache rates).
        offset_intervals: Monitoring intervals to delay this VM's start.
        label: Optional display name (defaults to the child's own name).
        lifecycle: Optional service declaration (mid-run arrival /
            departure / migrations, SLO targets).  A lifecycle arrival
            replaces ``offset_intervals`` — declaring both is an error.
    """

    factory: Callable[..., Workload]
    rate_scale: float = 1.0
    offset_intervals: int = 0
    label: Optional[str] = None
    lifecycle: Optional[TenantLifecycle] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.rate_scale <= 0:
            raise ValueError("tenant rate_scale must be positive")
        if self.offset_intervals < 0:
            raise ValueError("tenant offset_intervals must be non-negative")
        if self.lifecycle is not None:
            self.lifecycle.validate()
            if self.lifecycle.arrive_at_us is not None and self.offset_intervals > 0:
                raise ValueError(
                    "tenant offset_intervals and lifecycle arrive_at_us "
                    "are mutually exclusive"
                )


class MultiTenantWorkload:
    """N workloads sharing one cache, each under its own ``tenant_id``.

    Args:
        name: Scenario name (shows up in ``RunResult.workload``).
        children: Per-VM workloads (``tenant_id`` is the list index).
        lba_stride_blocks: Address-space stride between tenants; every
            request and warm block of tenant *i* is shifted by
            ``i * lba_stride_blocks``.
        offsets_us: Per-VM start delays (µs), aligned with ``children``;
            each delayed child's phase script is shifted to match.
        lifecycles: Optional per-VM service declarations, aligned with
            ``children``.  A lifecycle arrival overrides the tenant's
            offset as its start time; departures and migrations are
            executed mid-run by a :class:`~repro.service.churn.ChurnManager`.
    """

    def __init__(
        self,
        name: str,
        children: Sequence[Workload],
        lba_stride_blocks: int,
        offsets_us: Optional[Sequence[float]] = None,
        lifecycles: Optional[Sequence[Optional[TenantLifecycle]]] = None,
    ) -> None:
        if not children:
            raise ValueError("at least one tenant required")
        if lba_stride_blocks <= 0:
            raise ValueError("lba_stride_blocks must be positive")
        offsets = list(offsets_us) if offsets_us is not None else [0.0] * len(children)
        if len(offsets) != len(children):
            raise ValueError("offsets_us must align with children")
        if any(o < 0 for o in offsets):
            raise ValueError("offsets must be non-negative")
        if any(isinstance(c, MultiTenantWorkload) for c in children):
            # completion routing keys on the flat tenant_id; nesting would
            # overwrite the inner ids and misroute backpressure
            raise ValueError("nested multi-tenant composition is not supported")
        lcs = list(lifecycles) if lifecycles is not None else [None] * len(children)
        if len(lcs) != len(children):
            raise ValueError("lifecycles must align with children")
        self.name = name
        self.children = list(children)
        self.lba_stride_blocks = int(lba_stride_blocks)
        self.offsets_us = offsets
        self.lifecycles: list[Optional[TenantLifecycle]] = lcs
        starts: list[float] = []
        for lifecycle, offset in zip(lcs, offsets):
            if lifecycle is None or lifecycle.arrive_at_us is None:
                start = offset
            else:
                if offset > 0:
                    raise ValueError(
                        "tenant offset and lifecycle arrive_at_us are "
                        "mutually exclusive"
                    )
                start = lifecycle.arrive_at_us
            if lifecycle is not None:
                lifecycle.validate()
                if (
                    lifecycle.depart_at_us is not None
                    and lifecycle.depart_at_us <= start
                ):
                    raise ValueError("tenant depart_at_us must follow its start")
            starts.append(start)
        #: Per-tenant effective start times (offset or lifecycle arrival).
        self.start_times_us: list[float] = starts
        for child, start in zip(self.children, starts):
            if start > 0:
                child.shift(start)

    # ------------------------------------------------------------------
    @classmethod
    def compose(
        cls,
        name: str,
        specs: Sequence[TenantSpec],
        interval_us: float,
        cache_blocks: int = 4096,
        rate_scale: float = 1.0,
        max_outstanding: int = 256,
        lba_stride_blocks: Optional[int] = None,
    ) -> "MultiTenantWorkload":
        """Build a scenario from tenant specs (the registry signature).

        Each tenant's footprint is sized against its *fair share* of the
        shared cache (``cache_blocks // n``): the combined steady-state
        working sets fit, and contention comes from bursts stealing a
        neighbour's share — the paper's scenario — rather than from an
        impossible aggregate fit.  The application concurrency bound is
        likewise split across tenants (floored at 16 per VM).
        """
        if not specs:
            raise ValueError("at least one tenant spec required")
        for spec in specs:
            spec.validate()
        per_vm_outstanding = max(16, max_outstanding // len(specs))
        share_blocks = max(64, cache_blocks // len(specs))
        children = [
            spec.factory(
                interval_us,
                cache_blocks=share_blocks,
                rate_scale=rate_scale * spec.rate_scale,
                max_outstanding=per_vm_outstanding,
            )
            for spec in specs
        ]
        for spec, child in zip(specs, children):
            if spec.label:
                child.name = spec.label
        stride = (
            lba_stride_blocks
            if lba_stride_blocks is not None
            else share_blocks * DEFAULT_LBA_STRIDE_FACTOR
        )
        offsets = [spec.offset_intervals * interval_us for spec in specs]
        lifecycles = [spec.lifecycle for spec in specs]
        return cls(
            name,
            children,
            lba_stride_blocks=stride,
            offsets_us=offsets,
            lifecycles=lifecycles,
        )

    # ------------------------------------------------------------------
    @property
    def tenant_count(self) -> int:
        """Number of composed VMs."""
        return len(self.children)

    @property
    def duration_us(self) -> float:
        """End of the last tenant's (shifted) script."""
        return max(child.duration_us for child in self.children)

    @property
    def has_churn(self) -> bool:
        """Whether any tenant schedules a mid-run lifecycle event."""
        return any(lc is not None and lc.has_churn for lc in self.lifecycles)

    def slo_targets(self) -> dict[int, SloTarget]:
        """Declared SLO targets, keyed by ``tenant_id`` (may be empty)."""
        return {
            tid: lc.slo
            for tid, lc in enumerate(self.lifecycles)
            if lc is not None and lc.slo is not None
        }

    def _check_tenant(self, tenant_id: int) -> int:
        if not 0 <= tenant_id < len(self.children):
            raise KeyError(
                f"unknown tenant_id {tenant_id} "
                f"(composition has tenants 0..{len(self.children) - 1})"
            )
        return tenant_id

    def tenant_region(self, tenant_id: int) -> tuple[int, int]:
        """The tenant's half-open LBA region ``[lo, hi)``."""
        tid = self._check_tenant(tenant_id)
        lo = tid * self.lba_stride_blocks
        return lo, lo + self.lba_stride_blocks

    def tenant_warm_blocks(self, tenant_id: int) -> tuple[list[int], list[int]]:
        """One tenant's ``(clean, dirty)`` warm sets, region-shifted."""
        tid = self._check_tenant(tenant_id)
        child = self.children[tid]
        offset = tid * self.lba_stride_blocks
        clean = [lba + offset for lba in getattr(child, "warm_blocks", ())]
        dirty = [lba + offset for lba in getattr(child, "warm_dirty_blocks", ())]
        return clean, dirty

    def stop_tenant(self, tenant_id: int) -> None:
        """Stop one tenant's arrival generation (departure)."""
        self.children[self._check_tenant(tenant_id)].stop()

    @property
    def warm_blocks(self) -> list[int]:
        """Start-resident tenants' warm sets, shifted into their regions.

        A tenant with a lifecycle arrival is excluded — its warm set is
        re-warmed by the churn manager when it actually arrives.
        """
        out: list[int] = []
        for tid, child in enumerate(self.children):
            lifecycle = self.lifecycles[tid]
            if lifecycle is not None and lifecycle.arrive_at_us is not None:
                continue
            offset = tid * self.lba_stride_blocks
            out.extend(lba + offset for lba in getattr(child, "warm_blocks", ()))
        return out

    @property
    def warm_dirty_blocks(self) -> list[int]:
        """Start-resident tenants' warm dirty sets, region-shifted."""
        out: list[int] = []
        for tid, child in enumerate(self.children):
            lifecycle = self.lifecycles[tid]
            if lifecycle is not None and lifecycle.arrive_at_us is not None:
                continue
            offset = tid * self.lba_stride_blocks
            out.extend(
                lba + offset for lba in getattr(child, "warm_dirty_blocks", ())
            )
        return out

    @property
    def stats(self) -> WorkloadStats:
        """Aggregate arrival counters across all tenants."""
        agg = WorkloadStats()
        for child in self.children:
            s = child.stats
            agg.generated += s.generated
            agg.reads += s.reads
            agg.writes += s.writes
            agg.throttled += s.throttled
        agg.finished = all(child.stats.finished for child in self.children)
        return agg

    def tenant_stats(
        self, tenant_id: Optional[int] = None
    ) -> dict[int, WorkloadStats] | WorkloadStats:
        """Per-tenant arrival counters.

        With no argument, returns the full ``{tenant_id: stats}`` map.
        With a tenant id, returns that tenant's counters — raising
        ``KeyError`` for an id the composition never had, rather than
        fabricating an empty entry.  A *departed* tenant is still a
        valid id: its counters reflect the arrivals it generated before
        stopping.
        """
        if tenant_id is None:
            return {tid: child.stats for tid, child in enumerate(self.children)}
        return self.children[self._check_tenant(tenant_id)].stats

    def burst_intervals(self) -> list[int]:
        """Union of the tenants' scripted burst windows, start-adjusted."""
        out: set[int] = set()
        for child, start_us in zip(self.children, self.start_times_us):
            shift = int(round(start_us / child.interval_us)) if start_us else 0
            out.update(i + shift for i in child.burst_intervals())
        return sorted(out)

    # ------------------------------------------------------------------
    def bind(
        self, sim, submit: Callable[[Request], None], rng: np.random.Generator
    ) -> None:
        """Bind every tenant with an independent derived RNG stream.

        One base seed is drawn from ``rng``; each tenant's stream is
        then spawned from ``(base, tenant_id)``.  The composition is
        reproducible from the run's root seed, tenants are mutually
        independent, and appending a tenant leaves every existing
        tenant's stream untouched (only the one draw from ``rng``
        happens regardless of tenant count).
        """
        base_seed = int(rng.integers(0, 2**62))
        for tid, (child, start_us) in enumerate(
            zip(self.children, self.start_times_us)
        ):
            child_rng = np.random.default_rng(
                np.random.SeedSequence(entropy=base_seed, spawn_key=(tid,))
            )
            wrapped = self._wrap_submit(submit, tid)
            sim.schedule(start_us, child.bind, sim, wrapped, child_rng)

    def _wrap_submit(
        self, submit: Callable[[Request], None], tenant_id: int
    ) -> Callable[[Request], None]:
        offset = tenant_id * self.lba_stride_blocks

        def forward(request: Request) -> None:
            request.tenant_id = tenant_id
            request.lba += offset
            submit(request)

        return forward

    def on_request_complete(self, request: Request) -> None:
        """Route the completion back to the owning tenant's backpressure."""
        self.children[request.tenant_id].on_request_complete(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "+".join(child.name for child in self.children)
        return f"MultiTenantWorkload({self.name!r}: {names})"


# ----------------------------------------------------------------------
# Registered consolidation scenarios
# ----------------------------------------------------------------------
def consolidated3_workload(
    interval_us: float,
    cache_blocks: int = 4096,
    rate_scale: float = 1.0,
    max_outstanding: int = 256,
) -> MultiTenantWorkload:
    """TPC-C + mail + web VMs consolidated on one shared cache.

    The paper's three evaluation workloads run side by side, staggered
    by a few intervals and throttled to consolidated-tenant rates, so
    their bursts land on a cache already carrying two neighbours.
    """
    specs = [
        TenantSpec(tpcc_workload, rate_scale=0.55),
        TenantSpec(mail_server_workload, rate_scale=0.75, offset_intervals=5),
        TenantSpec(web_server_workload, rate_scale=0.75, offset_intervals=10),
    ]
    return MultiTenantWorkload.compose(
        "consolidated3",
        specs,
        interval_us,
        cache_blocks=cache_blocks,
        rate_scale=rate_scale,
        max_outstanding=max_outstanding,
    )


def bootstorm_neighbors_workload(
    interval_us: float,
    cache_blocks: int = 4096,
    rate_scale: float = 1.0,
    max_outstanding: int = 256,
) -> MultiTenantWorkload:
    """A boot storm landing beside an already-steady web server.

    The motivating scenario of the paper's introduction: the noisy
    neighbour's storm floods the shared cache while the steady tenant's
    latency is what suffers.
    """
    specs = [
        TenantSpec(web_server_workload, rate_scale=0.75),
        TenantSpec(boot_storm_workload, rate_scale=0.75, offset_intervals=10),
    ]
    return MultiTenantWorkload.compose(
        "bootstorm_neighbors",
        specs,
        interval_us,
        cache_blocks=cache_blocks,
        rate_scale=rate_scale,
        max_outstanding=max_outstanding,
    )
