"""Workload generators.

The paper drives its testbed with TPC-C, mail-server, and web-server
workloads containing burst phases (Section IV-A), plus the taxonomy of
Section III-B (random read / mixed read-write / write-intensive /
sequential read).  This package provides:

- :mod:`repro.workloads.base` — the phase-scripted, Poisson-arrival
  :class:`~repro.workloads.base.Workload` engine with application
  backpressure (bounded outstanding requests, like a real I/O-bound
  application).
- :mod:`repro.workloads.access_patterns` — address generators (uniform,
  Zipf, hot/cold, sequential, mixtures).
- :mod:`repro.workloads.tpcc` / :mod:`~repro.workloads.mail` /
  :mod:`~repro.workloads.web` — the three evaluation workloads with burst
  windows placed where the paper observed them (TPC-C: interval 3; mail:
  23 / 128 / 134; web: 1).
- :mod:`repro.workloads.synthetic` — single-pattern workloads for each of
  the paper's four characterization groups.
- :mod:`repro.workloads.replay` — replay of captured text traces.
- :mod:`repro.workloads.multi_tenant` — multi-VM composition: N
  workloads sharing one cache under per-VM ``tenant_id`` accounting.
"""

from repro.workloads.access_patterns import (
    HotColdPattern,
    MixPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workloads.base import PhaseSpec, Workload, WorkloadStats
from repro.workloads.bootstorm import boot_storm_workload
from repro.workloads.mail import mail_server_workload
from repro.workloads.multi_tenant import (
    MultiTenantWorkload,
    TenantSpec,
    bootstorm_neighbors_workload,
    consolidated3_workload,
)
from repro.workloads.replay import ReplayWorkload
from repro.workloads.spec import load_workload_spec, workload_from_spec
from repro.workloads.synthetic import (
    mixed_read_write_workload,
    random_read_workload,
    random_write_workload,
    sequential_read_workload,
    sequential_write_workload,
)
from repro.workloads.tpcc import tpcc_workload
from repro.workloads.web import web_server_workload

__all__ = [
    "Workload",
    "PhaseSpec",
    "WorkloadStats",
    "UniformPattern",
    "ZipfPattern",
    "HotColdPattern",
    "SequentialPattern",
    "MixPattern",
    "tpcc_workload",
    "boot_storm_workload",
    "mail_server_workload",
    "web_server_workload",
    "random_read_workload",
    "random_write_workload",
    "sequential_read_workload",
    "sequential_write_workload",
    "mixed_read_write_workload",
    "ReplayWorkload",
    "MultiTenantWorkload",
    "TenantSpec",
    "consolidated3_workload",
    "bootstorm_neighbors_workload",
    "workload_from_spec",
    "load_workload_spec",
]
