"""TPC-C-like workload (Fig. 4a / 5a / 6a).

OLTP traffic: overwhelmingly small random reads with high locality (index
and row lookups over a hot working set) and a trickle of writes.  The
paper observes a burst at interval 3 whose SSD-queue mix is dominated by
application reads (R) and promotions (P) — Group 1, random read — to
which LBICA assigns the WO policy.

The generator places a hot region sized to fit the cache (reads hit) next
to a large cold region (reads miss and get promoted).  During the burst
the arrival rate exceeds the SSD's service capacity — promotions are
writes, and sustained writes push the SSD over its GC cliff — while the
cold-miss stream stays within what the disk subsystem can absorb, which
is exactly the imbalance LBICA's WO assignment corrects.
"""

from __future__ import annotations

from repro.workloads.access_patterns import HotColdPattern, UniformPattern
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["tpcc_workload", "TPCC_TOTAL_INTERVALS", "TPCC_BURST_START"]

#: Number of monitoring intervals in the paper's TPC-C run (Fig. 4a).
TPCC_TOTAL_INTERVALS = 200
#: Interval at which the paper reports the burst being detected.
TPCC_BURST_START = 3
#: Burst length (intervals); the paper shows elevated load through the
#: first quarter of the run.
TPCC_BURST_LEN = 53


def tpcc_workload(
    interval_us: float,
    cache_blocks: int = 4096,
    rate_scale: float = 1.0,
    max_outstanding: int = 256,
) -> Workload:
    """TPC-C-like OLTP: hot random reads with a random-read burst (paper workload 1).

    Args:
        interval_us: Monitoring interval length (µs).
        cache_blocks: Cache capacity the footprints are sized against.
        rate_scale: Multiplier on all arrival rates (for quick runs).
        max_outstanding: Application concurrency bound.
    """
    hot_span = int(cache_blocks * 0.73)  # hot set comfortably inside cache
    cold_start = cache_blocks * 32
    cold_span = cache_blocks * 24  # cold set far larger than cache
    reads = HotColdPattern(
        hot_start=0,
        hot_span=hot_span,
        cold_start=cold_start,
        cold_span=cold_span,
        hot_prob=0.97,
    )
    writes = UniformPattern(0, hot_span)

    normal_rate = 1500.0 * rate_scale
    burst_rate = 5000.0 * rate_scale
    tail = TPCC_TOTAL_INTERVALS - TPCC_BURST_START - TPCC_BURST_LEN

    phases = [
        PhaseSpec(
            label="warmup",
            n_intervals=TPCC_BURST_START,
            rate_iops=normal_rate,
            write_frac=0.005,
            pattern_read=reads,
            pattern_write=writes,
        ),
        PhaseSpec(
            label="oltp-burst",
            n_intervals=TPCC_BURST_LEN,
            rate_iops=burst_rate,
            write_frac=0.005,
            pattern_read=reads,
            pattern_write=writes,
            burst=True,
        ),
        PhaseSpec(
            label="steady",
            n_intervals=tail,
            rate_iops=normal_rate,
            write_frac=0.005,
            pattern_read=reads,
            pattern_write=writes,
        ),
    ]
    return Workload(
        "tpcc",
        phases,
        interval_us,
        max_outstanding=max_outstanding,
        warm_blocks=range(hot_span),
        warm_dirty_blocks=range(cache_blocks * 200, cache_blocks * 200 + 128),
    )
