"""Trace replay: feed captured traces back through the stack.

A :class:`ReplayWorkload` takes :class:`~repro.trace.records.TraceRecord`
streams (parsed from any registered format via
:func:`repro.trace.parser.iter_trace`, or reshaped through
:mod:`repro.trace.operators`) and re-submits the *application*
arrivals — ``Q`` records tagged ``R`` or ``W`` — at their original
timestamps.  ``P``/``E`` records are skipped and counted in
``stats.skipped``: they were cache-generated and the replayed cache will
regenerate its own.

Two execution modes share one class:

- **Materialized** (a list in, the historical behavior): records are
  filtered and sorted up front and the whole script is batch-scheduled
  in :meth:`ReplayWorkload.bind`.
- **Streaming** (any other iterable, or ``streams=``): records are
  pulled through the pipeline in chunks of :data:`CHUNK_RECORDS`
  arrivals, each chunk batch-scheduled via
  :meth:`~repro.sim.engine.Simulator.schedule_sorted_calls` when the
  previous chunk's last arrival fires.  Peak memory is then bounded by
  the chunk size, not the trace length — a 10M-record trace replays in
  the same footprint as a 10k-record one.

Both modes produce identical arrival sequences for the same input, so
run statistics (and :func:`repro.scenario.fingerprint.stats_fingerprint`
digests) are mode-independent.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.io.request import OpTag, Request
from repro.trace.operators import interleave
from repro.trace.records import TraceRecord
from repro.workloads.base import WorkloadStats

__all__ = ["ReplayWorkload", "CHUNK_RECORDS"]

#: Default arrivals pulled and scheduled per streaming chunk.  Matches
#: the order of magnitude of the scripted workloads' chunked
#: pre-generation: big enough to amortize scheduling, small enough that
#: a chunk is invisible in peak RSS.
CHUNK_RECORDS = 4096


def _is_application(rec: TraceRecord) -> bool:
    return rec.action == "Q" and rec.tag in (OpTag.READ, OpTag.WRITE)


class ReplayWorkload:
    """Replays application arrivals from a trace.

    Carries a real :class:`~repro.workloads.base.WorkloadStats` (every
    emitted arrival counts as ``generated``; replay never throttles;
    dropped non-application records count as ``skipped``), so
    ``RunResult.workload_stats`` reports replay runs like any scripted
    workload instead of falling back to zeros.

    Args:
        records: Parsed trace records.  A :class:`~typing.Sequence`
            (list/tuple) is replayed **materialized** — any order,
            sorted internally, back-compatible ``.records`` attribute.
            Any other iterable (a generator from ``iter_trace`` or an
            operator pipeline) is replayed **streaming** in constant
            memory and must be time-sorted at chunk granularity.
        streams: Alternative to ``records``: several time-sorted record
            streams, interleaved so stream *i* replays as ``tenant_id=i``
            (always streaming).  Exactly one of ``records`` / ``streams``
            must be given.
        time_scale: Multiplier applied to timestamps (``0.5`` replays
            twice as fast).
        streaming: Force a mode (``True``/``False``) instead of
            inferring it from the input type.  ``streaming=False``
            requires ``records``.
        chunk_records: Streaming chunk size (default
            :data:`CHUNK_RECORDS`).
        duration_us: Declared trace duration after scaling.  Streaming
            replay cannot know the last timestamp up front, so runs
            without an explicit horizon need this (or the trace must fit
            one chunk); materialized replay computes it.
        name: Workload name reported in run results.
    """

    def __init__(
        self,
        records: Optional[Iterable[TraceRecord]] = None,
        time_scale: float = 1.0,
        *,
        streams: Optional[Sequence[Iterable[TraceRecord]]] = None,
        streaming: Optional[bool] = None,
        chunk_records: int = CHUNK_RECORDS,
        duration_us: Optional[float] = None,
        name: str = "replay",
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        if duration_us is not None and duration_us < 0:
            raise ValueError("duration_us must be non-negative")
        if (records is None) == (streams is None):
            raise ValueError("pass exactly one of records= or streams=")
        if streams is not None and streaming is False:
            raise ValueError("streams= replay is always streaming")
        self.time_scale = time_scale
        self.name = name
        self.stats = WorkloadStats()
        self.chunk_records = chunk_records
        self._explicit_duration = duration_us
        self._known_duration: Optional[float] = None
        self._sim = None
        self._submit: Optional[Callable[[Request], None]] = None
        self._floor = 0.0
        self._last_raw: Optional[float] = None  # max scaled time pulled so far
        self._exhausted = False
        self._source: Optional[Iterator[tuple[TraceRecord, int]]] = None

        if streams is not None:
            self.streaming = True
            self._source = interleave(
                [self._filtered(stream) for stream in streams]
            )
            return
        assert records is not None
        if streaming is None:
            streaming = not isinstance(records, Sequence)
        self.streaming = streaming
        if streaming:
            self._source = ((rec, 0) for rec in self._filtered(records))
        else:
            app = []
            for rec in records:
                if _is_application(rec):
                    app.append(rec)
                else:
                    self.stats.skipped += 1
            app.sort(key=lambda r: r.time)
            self.records: Sequence[TraceRecord] = app
            self._known_duration = (
                app[-1].time * time_scale if app else 0.0
            )

    def _filtered(self, records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        """Drop (and count) non-application records, lazily."""
        for rec in records:
            if _is_application(rec):
                yield rec
            else:
                self.stats.skipped += 1

    @property
    def submitted(self) -> int:
        """Arrivals emitted so far (alias of ``stats.generated``)."""
        return self.stats.generated

    @property
    def duration_us(self) -> float:
        """Timestamp of the last arrival after scaling.

        Materialized replay computes this from the sorted records (0
        when empty).  Streaming replay knows it only once the source is
        exhausted (traces that fit one chunk are exhausted at bind);
        otherwise pass ``duration_us=`` at construction or run with an
        explicit horizon.
        """
        if self._explicit_duration is not None:
            return self._explicit_duration
        if self._known_duration is not None:
            return self._known_duration
        raise ValueError(
            "streaming replay duration is unknown until the trace is "
            "exhausted; pass duration_us= to ReplayWorkload (or the "
            "trace: spec) or run with an explicit horizon (until_us)"
        )

    def bind(self, sim, submit: Callable[[Request], None], rng=None) -> None:
        """Schedule the first chunk (streaming) or everything (rng unused).

        Materialized mode batch-schedules the whole sorted script via
        :meth:`~repro.sim.engine.Simulator.schedule_sorted_at` — on an
        idle simulator the batch is appended in O(n) without heap churn.
        Streaming mode schedules one chunk through
        :meth:`~repro.sim.engine.Simulator.schedule_sorted_calls` and
        refills when the chunk's last arrival fires.
        """
        self._sim = sim
        self._submit = submit
        self._floor = sim.now
        if not self.streaming:
            now = sim.now
            scale = self.time_scale
            emit = self._emit_materialized
            sim.schedule_sorted_at(
                (max(rec.time * scale, now), emit, (rec,))
                for rec in self.records
            )
            if not self.records:
                self.stats.finished = True
            return
        self._schedule_chunk()

    def _schedule_chunk(self) -> None:
        """Pull, order-check, and batch-schedule the next chunk.

        The pull happens *before* any scheduling, so a parse error
        surfacing mid-chunk (malformed trace line) schedules nothing
        from that chunk — the chunk is atomic.
        """
        sim = self._sim
        source = self._source
        assert sim is not None and source is not None
        scale = self.time_scale
        chunk: list[tuple[float, TraceRecord, int]] = []
        for _ in range(self.chunk_records):
            try:
                rec, tid = next(source)
            except StopIteration:
                self._exhausted = True
                break
            chunk.append((rec.time * scale, rec, tid))
        if not chunk:
            self._finish()
            return
        chunk.sort(key=lambda item: item[0])  # stable: interleave ties keep order
        first = chunk[0][0]
        last = chunk[-1][0]
        if self._last_raw is not None and first < self._last_raw:
            raise ValueError(
                f"replay source is not time-sorted across a chunk boundary "
                f"(t={first / scale} after t={self._last_raw / scale}); "
                f"streaming replay needs chunk-sorted input — materialize "
                f"the trace (a list input) to replay unsorted records"
            )
        self._last_raw = last
        floor = self._floor
        tail = len(chunk) - 1
        emit = self._emit
        emit_last = self._emit_last
        sim.schedule_sorted_calls(
            (
                max(t, floor),
                emit_last if i == tail else emit,
                (rec, tid),
            )
            for i, (t, rec, tid) in enumerate(chunk)
        )

    def _finish(self) -> None:
        self.stats.finished = True
        if self._known_duration is None:
            self._known_duration = (
                self._last_raw if self._last_raw is not None else 0.0
            )

    def _count(self, rec: TraceRecord) -> None:
        self.stats.generated += 1
        if rec.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

    def _emit(self, rec: TraceRecord, tenant_id: int) -> None:
        sim, submit = self._sim, self._submit
        assert sim is not None and submit is not None
        request = Request(
            sim.now, rec.lba, rec.nblocks, rec.is_write, tenant_id=tenant_id
        )
        self._count(rec)
        submit(request)

    def _emit_last(self, rec: TraceRecord, tenant_id: int) -> None:
        """Last arrival of a chunk: emit, then refill or finish."""
        self._emit(rec, tenant_id)
        if self._exhausted:
            self._finish()
        else:
            self._schedule_chunk()

    def _emit_materialized(self, rec: TraceRecord) -> None:
        sim, submit = self._sim, self._submit
        assert sim is not None and submit is not None
        request = Request(sim.now, rec.lba, rec.nblocks, rec.is_write)
        self._count(rec)
        if self.stats.generated == len(self.records):
            self.stats.finished = True
        submit(request)

    def on_request_complete(self, request: Request) -> None:
        """No backpressure during replay (timestamps are authoritative)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.streaming:
            state = "exhausted" if self._exhausted else "live"
            return (
                f"ReplayWorkload(streaming, {self.stats.generated} emitted, "
                f"{state})"
            )
        return f"ReplayWorkload({len(self.records)} arrivals)"
