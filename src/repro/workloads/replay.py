"""Trace replay: feed captured traces back through the stack.

A :class:`ReplayWorkload` takes :class:`~repro.trace.records.TraceRecord`
sequences (for example parsed from the project's text format with
:func:`repro.trace.parser.load_trace`) and re-submits the *application*
arrivals — ``Q`` records tagged ``R`` or ``W`` — at their original
timestamps.  ``P``/``E`` records are skipped: they were cache-generated
and the replayed cache will regenerate its own.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.io.request import OpTag, Request
from repro.trace.records import TraceRecord
from repro.workloads.base import WorkloadStats

__all__ = ["ReplayWorkload"]


class ReplayWorkload:
    """Replays application arrivals from a trace.

    Carries a real :class:`~repro.workloads.base.WorkloadStats` (every
    emitted arrival counts as ``generated``; replay never throttles), so
    ``RunResult.workload_stats`` reports replay runs like any scripted
    workload instead of falling back to zeros.

    Args:
        records: Parsed trace records (any order; sorted internally).
        time_scale: Multiplier applied to timestamps (``0.5`` replays
            twice as fast).
    """

    def __init__(self, records: Iterable[TraceRecord], time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        app = [
            r
            for r in records
            if r.action == "Q" and r.tag in (OpTag.READ, OpTag.WRITE)
        ]
        app.sort(key=lambda r: r.time)
        self.records: Sequence[TraceRecord] = app
        self.time_scale = time_scale
        self.name = "replay"
        self.stats = WorkloadStats()

    @property
    def submitted(self) -> int:
        """Arrivals emitted so far (alias of ``stats.generated``)."""
        return self.stats.generated

    @property
    def duration_us(self) -> float:
        """Timestamp of the last arrival after scaling (0 when empty)."""
        return self.records[-1].time * self.time_scale if self.records else 0.0

    def bind(self, sim, submit: Callable[[Request], None], rng=None) -> None:
        """Schedule every arrival on the simulator (rng unused).

        The records are already time-sorted, so the whole script goes
        through :meth:`~repro.sim.engine.Simulator.schedule_sorted_at` —
        on an idle simulator the batch is appended in O(n) without any
        heap churn.
        """
        now = sim.now
        scale = self.time_scale
        emit = self._emit
        sim.schedule_sorted_at(
            (max(rec.time * scale, now), emit, (sim, submit, rec))
            for rec in self.records
        )

    def _emit(self, sim, submit: Callable[[Request], None], rec: TraceRecord) -> None:
        request = Request(sim.now, rec.lba, rec.nblocks, rec.is_write)
        self.stats.generated += 1
        if rec.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        if self.stats.generated == len(self.records):
            self.stats.finished = True
        submit(request)

    def on_request_complete(self, request: Request) -> None:
        """No backpressure during replay (timestamps are authoritative)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplayWorkload({len(self.records)} arrivals)"
