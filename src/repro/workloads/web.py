"""Web-server-like workload (Fig. 4c / 5c / 6c).

The paper's web server hits its burst immediately: at the first interval
the SSD queue is dominated by application reads and writes (R 17.9% /
W 63.8% / P 7.9% / E 10.4%) — Group 2, mixed read-write — and LBICA
assigns RO, shedding 63% of the cache load.  The run spans 175 intervals
(shorter x-axis than the other two figures).

The generator opens directly in a mixed read-write burst (session-state
and log writes over a footprint larger than the cache, content reads on
a hot set), then settles into a moderate steady state.
"""

from __future__ import annotations

from repro.workloads.access_patterns import HotColdPattern, UniformPattern
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["web_server_workload", "WEB_TOTAL_INTERVALS", "WEB_BURST_START"]

#: Number of monitoring intervals in the paper's web run (Fig. 4c).
WEB_TOTAL_INTERVALS = 175
#: The paper reports detection at the first interval.
WEB_BURST_START = 1


def web_server_workload(
    interval_us: float,
    cache_blocks: int = 4096,
    rate_scale: float = 1.0,
    max_outstanding: int = 256,
) -> Workload:
    """Web server: an immediate mixed read-write burst over hot content (paper workload 3)."""
    hot_span = int(cache_blocks * 0.44)
    reads = HotColdPattern(
        hot_start=0,
        hot_span=hot_span,
        cold_start=cache_blocks * 32,
        cold_span=cache_blocks * 24,
        hot_prob=0.94,
    )
    writes = UniformPattern(cache_blocks * 8, int(cache_blocks * 0.44))

    phases = [
        PhaseSpec(
            label="ramp",
            n_intervals=WEB_BURST_START,
            rate_iops=400.0 * rate_scale,
            write_frac=0.45,
            pattern_read=reads,
            pattern_write=writes,
        ),
        PhaseSpec(
            label="flash-crowd",
            n_intervals=40,  # intervals 1..40
            rate_iops=850.0 * rate_scale,
            write_frac=0.70,
            pattern_read=reads,
            pattern_write=writes,
            burst=True,
        ),
        PhaseSpec(
            label="steady",
            n_intervals=WEB_TOTAL_INTERVALS - WEB_BURST_START - 40,
            rate_iops=400.0 * rate_scale,
            write_frac=0.45,
            pattern_read=reads,
            pattern_write=writes,
        ),
    ]
    warm = list(range(hot_span)) + list(
        range(cache_blocks * 8, cache_blocks * 8 + int(cache_blocks * 0.44))
    )
    spool = range(cache_blocks * 200, cache_blocks * 200 + cache_blocks // 16)
    return Workload(
        "web",
        phases,
        interval_us,
        max_outstanding=max_outstanding,
        warm_blocks=warm,
        warm_dirty_blocks=spool,
    )
