"""Application requests and device operations.

The paper distinguishes two levels of I/O:

* **Application requests** (:class:`Request`) — what the workload submits:
  a read or write of ``nblocks`` 4-KiB blocks starting at ``lba``.
* **Device operations** (:class:`DeviceOp`) — what actually lands in the
  SSD/HDD queues after the cache controller's routing decision.  Each op
  carries one of the paper's four queue tags (:class:`OpTag`): ``R``
  (application read served by the device), ``W`` (application write), ``P``
  (promotion of a missed block into the cache), ``E`` (eviction /
  write-back traffic).

A request completes when all of its *synchronous* device ops complete;
asynchronous ops (promotions, background evictions) are fire-and-forget
from the application's point of view but still occupy queue slots — which
is exactly the load LBICA is designed to shed.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Callable, Optional

__all__ = ["OpTag", "Request", "DeviceOp", "BLOCK_BYTES"]

#: Fixed cache/request block size in bytes (EnhanceIO default block size).
BLOCK_BYTES = 4096

_req_ids = itertools.count()
_op_ids = itertools.count()

#: Shared placeholder for ops that never absorbed a merge partner.
_NO_MERGED: tuple = ()


class OpTag(str, Enum):
    """In-queue request types from the paper (Fig. 1 / Section III-B)."""

    READ = "R"  #: application read served by this device
    WRITE = "W"  #: application write served by this device
    PROMOTE = "P"  #: cache fill of a missed block (SSD write)
    EVICT = "E"  #: eviction traffic (SSD read of victim / HDD write-back)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Request:
    """An application-level I/O request.

    Attributes:
        req_id: Unique id (monotonically increasing).
        arrival: Submission time (µs).
        lba: First 4-KiB block address.
        nblocks: Number of consecutive blocks.
        is_write: Direction.
        complete_time: Completion time (µs), or ``-1.0`` while in flight.
        bypassed: Whether a load balancer redirected (part of) this request
            to the disk subsystem.
        served_by: Device names that served synchronous parts of it.
        tenant_id: Originating VM / tenant (``0`` for single-tenant runs).
            Multi-tenant workloads stamp this so the cache controller and
            monitors can break accounting down per VM.
    """

    __slots__ = (
        "req_id",
        "arrival",
        "lba",
        "nblocks",
        "is_write",
        "complete_time",
        "bypassed",
        "served_by",
        "tenant_id",
        "_outstanding",
        "_on_complete",
    )

    def __init__(
        self,
        arrival: float,
        lba: int,
        nblocks: int,
        is_write: bool,
        on_complete: Optional[Callable[["Request"], None]] = None,
        tenant_id: int = 0,
    ) -> None:
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        if lba < 0:
            raise ValueError("lba must be non-negative")
        if tenant_id < 0:
            raise ValueError("tenant_id must be non-negative")
        self.req_id = next(_req_ids)
        self.tenant_id = tenant_id
        self.arrival = arrival
        self.lba = lba
        self.nblocks = nblocks
        self.is_write = is_write
        self.complete_time = -1.0
        self.bypassed = False
        self.served_by: set[str] = set()
        self._outstanding = 0
        self._on_complete = on_complete

    # -- completion accounting ----------------------------------------
    def add_wait(self, n: int = 1) -> None:
        """Register ``n`` synchronous device ops this request waits on."""
        self._outstanding += n

    def op_done(self, now: float) -> bool:
        """Signal one synchronous op finished; returns True on completion."""
        self._outstanding -= 1
        if self._outstanding < 0:
            raise RuntimeError(f"request {self.req_id}: completion underflow")
        if self._outstanding == 0:
            self.complete_time = now
            if self._on_complete is not None:
                self._on_complete(self)
            return True
        return False

    @property
    def done(self) -> bool:
        """Whether the request has completed."""
        return self.complete_time >= 0.0

    @property
    def latency(self) -> float:
        """End-to-end latency (µs); raises if not yet complete."""
        if not self.done:
            raise RuntimeError(f"request {self.req_id} not complete")
        return self.complete_time - self.arrival

    @property
    def end_lba(self) -> int:
        """One past the last block touched."""
        return self.lba + self.nblocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"Request(#{self.req_id} {kind} lba={self.lba}+{self.nblocks} "
            f"t={self.arrival:.1f})"
        )


class DeviceOp:
    """A single operation in a device queue.

    Attributes:
        op_id: Unique id.
        lba: First block address.
        nblocks: Block count (grows if other ops are merged into this one).
        is_write: Direction *at the device* (an ``E``-tagged op is a read
            on the SSD side and a write on the HDD side).
        tag: The paper's queue tag (R/W/P/E).
        request: Originating application request, if any (``P``/``E``
            traffic generated by the cache has ``request=None`` once
            detached from the app's completion).
        sync: Whether the originating request waits on this op.
        stealable: Whether a load balancer may remove this op from the
            queue tail and redirect it (promotions are cancellable; evict
            reads of dirty data are not).
    """

    __slots__ = (
        "op_id",
        "lba",
        "nblocks",
        "is_write",
        "tag",
        "request",
        "sync",
        "stealable",
        "enqueue_time",
        "dispatch_time",
        "complete_time",
        "on_complete",
        "merged",
    )

    def __init__(
        self,
        lba: int,
        nblocks: int,
        is_write: bool,
        tag: OpTag,
        request: Optional[Request] = None,
        sync: bool = False,
        stealable: bool = True,
        on_complete: Optional[Callable[["DeviceOp"], None]] = None,
    ) -> None:
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        self.op_id = next(_op_ids)
        self.lba = lba
        self.nblocks = nblocks
        self.is_write = is_write
        self.tag = tag
        self.request = request
        self.sync = sync
        self.stealable = stealable
        self.enqueue_time = -1.0
        self.dispatch_time = -1.0
        self.complete_time = -1.0
        self.on_complete = on_complete
        # Merging is rare relative to op creation; sharing one immutable
        # empty tuple until the first absorb avoids a list allocation on
        # every op (absorb swaps in a real list on demand).
        self.merged: tuple | list = _NO_MERGED

    @property
    def end_lba(self) -> int:
        """One past the last block touched."""
        return self.lba + self.nblocks

    @property
    def queue_time(self) -> float:
        """Time spent waiting in the queue before dispatch (µs)."""
        if self.dispatch_time < 0 or self.enqueue_time < 0:
            raise RuntimeError(f"op {self.op_id} not dispatched yet")
        return self.dispatch_time - self.enqueue_time

    @property
    def service_latency(self) -> float:
        """Total enqueue-to-completion latency (µs)."""
        if self.complete_time < 0:
            raise RuntimeError(f"op {self.op_id} not complete")
        return self.complete_time - self.enqueue_time

    def can_merge_back(self, other: "DeviceOp", max_blocks: int) -> bool:
        """Whether ``other`` extends this op contiguously at its end."""
        return (
            self.is_write == other.is_write
            and self.tag == other.tag
            and self.end_lba == other.lba
            and self.nblocks + other.nblocks <= max_blocks
        )

    def absorb(self, other: "DeviceOp") -> None:
        """Back-merge ``other`` into this op (completion is chained)."""
        self.nblocks += other.nblocks
        if type(self.merged) is tuple:
            self.merged = [other]
        else:
            self.merged.append(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "w" if self.is_write else "r"
        return (
            f"DeviceOp(#{self.op_id} {self.tag.value}/{kind} "
            f"lba={self.lba}+{self.nblocks})"
        )
