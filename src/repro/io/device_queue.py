"""FIFO device queues with merging, occupancy accounting, and tail stealing.

The queue is the central observable of the paper: Eq. 1 computes queue time
as ``queue_size × device_latency``, Fig. 3 characterizes workloads by the
*type mix* of in-queue requests, and both LBICA (Group 3) and SIB shed load
by removing requests from the **tail** of the SSD queue.

:class:`DeviceQueue` therefore provides, beyond plain FIFO push/pop:

- **back-merging** of contiguous same-direction ops (like the block
  layer's elevator), bounded by ``max_merge_blocks``;
- **occupancy statistics** — time-weighted average and per-window maximum
  queue depth, which is what our iostat substrate samples;
- :meth:`snapshot_tags` — the R/W/P/E composition of everything currently
  queued or in service (our blktrace substrate);
- :meth:`steal_tail` — remove stealable ops from the tail subject to a
  caller-supplied filter, returning them for redirection to another device.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.io.request import DeviceOp

__all__ = ["DeviceQueue", "QueueStats"]


@dataclass(slots=True)
class QueueStats:
    """Lifetime counters for a device queue."""

    enqueued: int = 0
    dispatched: int = 0
    completed: int = 0
    merged: int = 0
    stolen: int = 0
    by_tag: Counter = field(default_factory=Counter)

    def snapshot(self) -> dict:
        """A plain-dict copy (for reports)."""
        return {
            "enqueued": self.enqueued,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "merged": self.merged,
            "stolen": self.stolen,
            "by_tag": dict(self.by_tag),
        }


class DeviceQueue:
    """A FIFO dispatch queue for one storage device.

    Args:
        name: Queue name (e.g. ``"ssd"``), used in traces and reports.
        max_merge_blocks: Upper bound on a merged op's size; ``0`` disables
            merging entirely.

    The queue distinguishes *pending* ops (still eligible for merging and
    stealing) from *in-flight* ops (dispatched to the device and
    uninterruptible).
    """

    def __init__(self, name: str, max_merge_blocks: int = 32) -> None:
        self.name = name
        self.max_merge_blocks = max_merge_blocks
        self.pending: deque[DeviceOp] = deque()
        self.inflight: set[int] = set()
        self.stats = QueueStats()
        # occupancy accounting
        self._last_change = 0.0
        self._area = 0.0  # integral of qsize over time
        self._window_max = 0
        self._window_start = 0.0

    # ------------------------------------------------------------------
    # Occupancy accounting
    # ------------------------------------------------------------------
    @property
    def qsize(self) -> int:
        """Pending + in-flight operations (iostat's ``avgqu-sz`` analog)."""
        return len(self.pending) + len(self.inflight)

    def _account(self, now: float) -> None:
        if now > self._last_change:
            self._area += self.qsize * (now - self._last_change)
            self._last_change = now

    def _bump_window(self) -> None:
        if self.qsize > self._window_max:
            self._window_max = self.qsize

    def window_stats(self, now: float) -> tuple[float, int]:
        """Return ``(avg_qsize, max_qsize)`` since the last reset.

        The average is time-weighted over the window; the max is the peak
        instantaneous depth.  Call :meth:`reset_window` afterwards to start
        a new sampling interval.
        """
        self._account(now)
        span = now - self._window_start
        avg = self._area / span if span > 0 else float(self.qsize)
        return avg, self._window_max

    def reset_window(self, now: float) -> None:
        """Start a new occupancy-sampling window at ``now``."""
        self._account(now)
        self._area = 0.0
        self._window_start = now
        self._last_change = now
        self._window_max = self.qsize

    # ------------------------------------------------------------------
    # Core queue operations
    # ------------------------------------------------------------------
    def push(self, op: DeviceOp, now: float) -> bool:
        """Enqueue ``op``; returns ``True`` if it was merged away.

        A back-merge is attempted against the current tail only (like the
        block layer's last-merge hint): same direction, same tag,
        contiguous LBA, and within ``max_merge_blocks``.
        """
        # push/pop_next/complete run once per device op; the occupancy
        # integral is inlined (same arithmetic as _account) to avoid a
        # method call plus property chain per transition.
        pending = self.pending
        inflight = self.inflight
        last = self._last_change
        if now > last:
            self._area += (len(pending) + len(inflight)) * (now - last)
            self._last_change = now
        op.enqueue_time = now
        stats = self.stats
        stats.enqueued += 1
        stats.by_tag[op.tag] += 1
        max_merge = self.max_merge_blocks
        if max_merge and pending:
            tail = pending[-1]
            if tail.can_merge_back(op, max_merge):
                tail.absorb(op)
                stats.merged += 1
                return True
        pending.append(op)
        qsize = len(pending) + len(inflight)
        if qsize > self._window_max:
            self._window_max = qsize
        return False

    def pop_next(self, now: float) -> Optional[DeviceOp]:
        """Move the head pending op to in-flight and return it."""
        pending = self.pending
        if not pending:
            return None
        last = self._last_change
        if now > last:
            self._area += (len(pending) + len(self.inflight)) * (now - last)
            self._last_change = now
        op = pending.popleft()
        op.dispatch_time = now
        self.inflight.add(op.op_id)
        self.stats.dispatched += 1
        return op

    def complete(self, op: DeviceOp, now: float) -> None:
        """Retire an in-flight op."""
        last = self._last_change
        if now > last:
            self._area += (len(self.pending) + len(self.inflight)) * (now - last)
            self._last_change = now
        self.inflight.discard(op.op_id)
        op.complete_time = now
        self.stats.completed += 1

    # ------------------------------------------------------------------
    # Introspection used by blktrace / LBICA / SIB
    # ------------------------------------------------------------------
    def snapshot_tags(self) -> Counter:
        """R/W/P/E composition of pending ops (the paper's queue mix).

        Merged ops count once per absorbed op so the mix reflects the
        logical request population, not the merge topology.
        """
        counts: Counter = Counter()
        for op in self.pending:
            counts[op.tag] += 1 + len(op.merged)
        return counts

    def pending_ops(self) -> Iterable[DeviceOp]:
        """Iterate pending ops head-to-tail (no mutation)."""
        return iter(self.pending)

    def estimated_wait(self, per_op_latency: float) -> list[tuple[DeviceOp, float]]:
        """SIB-style wait-time estimate for every pending op.

        Position ``i`` in the queue waits approximately
        ``(i + 1) × per_op_latency``.
        """
        return [
            (op, (i + 1) * per_op_latency) for i, op in enumerate(self.pending)
        ]

    def steal_tail(
        self,
        max_ops: int,
        now: float,
        predicate: Optional[Callable[[DeviceOp], bool]] = None,
    ) -> list[DeviceOp]:
        """Remove up to ``max_ops`` stealable ops from the tail.

        Walks from the tail toward the head, removing ops for which
        ``op.stealable`` and ``predicate(op)`` (if given) hold.  Ops that
        fail the filter are left in place and the walk continues past
        them, so a single unstealable op does not shield the rest of the
        tail.

        Returns:
            The stolen ops in tail-to-head order.  The caller owns them
            (typically re-issuing them against the disk subsystem).
        """
        if max_ops <= 0 or not self.pending:
            return []
        self._account(now)
        stolen: list[DeviceOp] = []
        kept: list[DeviceOp] = []
        while self.pending and len(stolen) < max_ops:
            op = self.pending.pop()
            if op.stealable and (predicate is None or predicate(op)):
                stolen.append(op)
            else:
                kept.append(op)
        while kept:
            self.pending.append(kept.pop())
        self.stats.stolen += len(stolen)
        return stolen

    def __len__(self) -> int:
        return self.qsize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceQueue({self.name!r}, pending={len(self.pending)}, "
            f"inflight={len(self.inflight)})"
        )
