"""Block-layer substrate: requests, device operations, and device queues.

This package models the slice of the Linux block layer that LBICA observes
and manipulates:

- :mod:`repro.io.request` — application-level :class:`~repro.io.request.Request`
  objects and the device-level :class:`~repro.io.request.DeviceOp` operations
  they expand into, tagged with the paper's four in-queue types
  (R: application read, W: application write, P: cache promote,
  E: cache evict).
- :mod:`repro.io.device_queue` — a FIFO dispatch queue with contiguous
  request merging (the block layer's back/front merge), occupancy
  accounting for iostat-style sampling, and *tail stealing*, the primitive
  both LBICA's Group-3 tail bypass and SIB's selective bypass are built on.
"""

from repro.io.request import DeviceOp, OpTag, Request
from repro.io.device_queue import DeviceQueue, QueueStats

__all__ = ["Request", "DeviceOp", "OpTag", "DeviceQueue", "QueueStats"]
