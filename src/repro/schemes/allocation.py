"""Per-tenant cache-capacity accounting for allocation schemes.

The shared :class:`~repro.cache.store.CacheStore` has no notion of
tenants — blocks are blocks.  :class:`QuotaAllocator` layers per-VM
quotas on top without touching the store: the cache controller consults
:meth:`admit` before growing the cache on a tenant's behalf (promotions
and cached writes) and reports every insertion/removal, so the allocator
keeps an exact ``tenant -> resident blocks`` map.

Enforcement is per-tenant replacement, not denial-until-frozen: a
tenant at quota **recycles its own share** — its oldest *clean* owned
block is dropped (a clean copy needs no write-back) to make room for
the new insertion — so the cache keeps churning at saturation and a
tenant whose quota shrank drains toward it.  Only a tenant whose
scanned share is entirely dirty is denied, and the background
writeback flusher cleans blocks over time, so that state is transient.

What is guaranteed is **capacity isolation**, not set-level victim
isolation: admission bounds each tenant's total resident blocks, but
the store stays set-associative, so when two tenants' LBAs collide in
a full set the set's replacement policy may still evict a neighbour's
block (exactly as in a real shared set-associative cache).  The
accounting self-heals — the controller reports that eviction via
:meth:`note_remove`, the displaced tenant's count drops, and it may
re-grow to quota — so shares hold in aggregate even under set
collisions.

Blocks inserted outside the controller's accounting (the warm-up
pre-load) have no owner; their eviction is a no-op here and they never
count against any quota.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.cache.store import CacheStore
from repro.schemes.base import Scheme, SchemeConfigLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import ExperimentSystem

__all__ = ["QuotaAllocator", "CapacityScheme", "fair_shares", "proportional_shares"]


def fair_shares(
    capacity_blocks: int, n_tenants: int, min_share_blocks: int
) -> dict[int, int]:
    """Equal per-tenant shares of the cache (floored at the minimum)."""
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    share = max(min_share_blocks, capacity_blocks // n_tenants)
    return {tid: share for tid in range(n_tenants)}


def proportional_shares(
    capacity_blocks: int,
    n_tenants: int,
    weights: list[float],
    min_share_blocks: int,
) -> dict[int, int]:
    """Weighted per-tenant shares (missing weights default to ``1.0``).

    Shares are ``capacity × weight / total_weight`` floored at the
    minimum share, so a zero-ish weight still leaves a tenant enough
    cache to make progress.
    """
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    padded = [float(w) for w in weights[:n_tenants]]
    padded += [1.0] * (n_tenants - len(padded))
    if any(w <= 0 for w in padded):
        raise ValueError("partition weights must be positive")
    total = sum(padded)
    return {
        tid: max(min_share_blocks, int(capacity_blocks * w / total))
        for tid, w in enumerate(padded)
    }


class QuotaAllocator:
    """Exact per-tenant resident-block accounting with quota admission.

    Implements the :class:`~repro.schemes.base.CacheAllocator` protocol
    the cache controller consults.

    Args:
        store: The shared cache store (consulted so re-writes of
            already-resident blocks are always admitted — they grow
            nothing — and so recycling can check victim dirtiness).
        default_quota_blocks: Quota applied to tenants that were never
            given an explicit one via :meth:`set_quota`.
        recycle_scan_limit: How many of a tenant's oldest owned blocks
            :meth:`admit` scans for a clean recycling victim before
            giving up and denying (bounds per-admission cost).
        drain_limit: Most blocks one admission may recycle when the
            tenant sits *above* its quota (a dynamic scheme shrank it):
            each admission then frees extra blocks, so the tenant
            converges onto the new share instead of churning above it
            forever, while the per-admission burst stays bounded.
    """

    def __init__(
        self,
        store: CacheStore,
        default_quota_blocks: int,
        recycle_scan_limit: int = 64,
        drain_limit: int = 8,
    ) -> None:
        if default_quota_blocks < 0:
            raise ValueError("default_quota_blocks must be non-negative")
        if recycle_scan_limit < 1:
            raise ValueError("recycle_scan_limit must be >= 1")
        if drain_limit < 1:
            raise ValueError("drain_limit must be >= 1")
        self.store = store
        self.default_quota_blocks = default_quota_blocks
        self.recycle_scan_limit = recycle_scan_limit
        self.drain_limit = drain_limit
        self.quotas: dict[int, int] = {}
        self._owner: dict[int, int] = {}
        #: Per-tenant owned blocks in insertion order (dict-as-ordered-set).
        self._owned: dict[int, dict[int, None]] = {}
        self._counts: dict[int, int] = {}
        self.denied: dict[int, int] = {}
        self.recycled: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Quotas
    # ------------------------------------------------------------------
    def quota_for(self, tenant_id: int) -> int:
        """The tenant's current quota (blocks)."""
        return self.quotas.get(tenant_id, self.default_quota_blocks)

    def set_quota(self, tenant_id: int, blocks: int) -> None:
        """Assign a tenant's quota (enforced lazily — see module doc)."""
        if blocks < 0:
            raise ValueError("quota must be non-negative")
        self.quotas[tenant_id] = int(blocks)

    def set_quotas(self, shares: dict[int, int]) -> None:
        """Replace all explicit quotas at once."""
        self.quotas = {tid: int(blocks) for tid, blocks in shares.items()}

    # ------------------------------------------------------------------
    # CacheAllocator protocol
    # ------------------------------------------------------------------
    def admit(self, tenant_id: int, lba: int) -> bool:
        """Whether the tenant may insert ``lba``.

        Already-resident blocks are always admitted (refreshing in place
        consumes no new capacity), and an under-quota tenant always may
        grow.  A tenant *at or above* quota recycles its own share
        instead: its oldest clean owned blocks are invalidated to make
        room (counted in :attr:`recycled`; above quota, extra blocks
        drain it toward the shrunk share) and the insert admitted.
        Only when none of the scanned oldest blocks is clean — the
        share is effectively all dirty — is the admission denied
        (counted in :attr:`denied`).
        """
        if self.store.peek(lba) is not None:
            return True
        count = self._counts.get(tenant_id, 0)
        quota = self.quota_for(tenant_id)
        if count < quota:
            return True
        # At quota: one recycle makes room.  Above quota (the share was
        # shrunk mid-run): recycle extra blocks — bounded by drain_limit
        # — so the tenant converges onto its new share.
        want = min(count - quota + 1, self.drain_limit)
        freed = 0
        while freed < want and self._recycle_one(tenant_id):
            freed += 1
        if freed:
            return True
        self.denied[tenant_id] = self.denied.get(tenant_id, 0) + 1
        return False

    def _recycle_one(self, tenant_id: int) -> bool:
        """Drop the tenant's oldest clean owned block; ``True`` on success."""
        owned = self._owned.get(tenant_id)
        if not owned:
            return False
        victim = None
        for i, old_lba in enumerate(owned):
            if i >= self.recycle_scan_limit:
                break
            block = self.store.peek(old_lba)
            if block is not None and not block.dirty:
                victim = old_lba
                break
        if victim is None:
            return False
        self.store.invalidate(victim)
        self.note_remove(victim)
        self.recycled[tenant_id] = self.recycled.get(tenant_id, 0) + 1
        return True

    def note_insert(self, tenant_id: int, lba: int) -> None:
        """Record a controller-mediated insertion of ``lba``."""
        prev = self._owner.get(lba)
        if prev == tenant_id:
            return
        if prev is not None:
            self._counts[prev] -= 1
            owned_prev = self._owned.get(prev)
            if owned_prev is not None:
                owned_prev.pop(lba, None)
        self._owner[lba] = tenant_id
        self._owned.setdefault(tenant_id, {})[lba] = None
        self._counts[tenant_id] = self._counts.get(tenant_id, 0) + 1

    def note_remove(self, lba: int) -> None:
        """Record that ``lba`` left the cache (unknown blocks ignored)."""
        tenant = self._owner.pop(lba, None)
        if tenant is not None:
            self._counts[tenant] -= 1
            owned = self._owned.get(tenant)
            if owned is not None:
                owned.pop(lba, None)

    def release_tenant(self, tenant_id: int) -> list[int]:
        """Drop a departed tenant's quota and ownership accounting.

        The store is untouched — the caller reclaims the blocks through
        the controller (which reports each removal back via
        :meth:`note_remove`; releasing first keeps that a cheap no-op).

        Returns:
            The LBAs the tenant owned at release time (insertion order).
        """
        owned = self._owned.pop(tenant_id, None)
        lbas = list(owned) if owned else []
        for lba in lbas:
            self._owner.pop(lba, None)
        self._counts.pop(tenant_id, None)
        self.quotas.pop(tenant_id, None)
        return lbas

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> dict[int, int]:
        """Resident accounted blocks per tenant (a copy)."""
        return {tid: count for tid, count in sorted(self._counts.items())}

    @property
    def total_denied(self) -> int:
        """Admissions denied over the run, all tenants."""
        return sum(self.denied.values())

    @property
    def total_recycled(self) -> int:
        """Own-share recycling evictions over the run, all tenants."""
        return sum(self.recycled.values())

    def telemetry_snapshot(self) -> dict[str, Any]:
        """Point-in-time quota state for the obs layer (JSON-ready).

        A pull-style read of existing accounting — called once per
        monitoring interval, never from the admission hot path.
        """
        return {
            "quotas": {tid: self.quotas[tid] for tid in sorted(self.quotas)},
            "occupancy": self.occupancy(),
            "denied": self.total_denied,
            "recycled": self.total_recycled,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuotaAllocator(quotas={self.quotas}, "
            f"occupancy={self.occupancy()}, recycled={self.total_recycled}, "
            f"denied={self.total_denied})"
        )


class CapacityScheme(Scheme):
    """Shared plumbing for schemes that enforce per-tenant cache shares.

    Subclasses compute their share map and call
    :meth:`_install_allocator` from ``_on_attach``; detach teardown and
    the common allocator summary block are provided here.
    """

    def __init__(self, config: Optional[SchemeConfigLike] = None) -> None:
        super().__init__(config)
        self.allocator: QuotaAllocator | None = None
        self.shares: dict[int, int] = {}

    def _install_allocator(
        self, system: "ExperimentSystem", shares: dict[int, int]
    ) -> None:
        """Adopt ``shares`` and install quota admission on the datapath.

        A tenant outside the assigned range (never the case for the
        registered workloads) falls back to the smallest share.
        """
        self.shares = dict(shares)
        self.allocator = QuotaAllocator(
            system.store, default_quota_blocks=min(self.shares.values())
        )
        self.allocator.set_quotas(self.shares)
        system.controller.allocator = self.allocator

    def _on_detach(self, system: "ExperimentSystem") -> None:
        if system.controller.allocator is self.allocator:
            system.controller.allocator = None

    def on_tenant_departed(self, tenant_id: int) -> None:
        """Release the departed share and redistribute it.

        The tenant's quota and ownership accounting are dropped and its
        share blocks handed out equally to the remaining tenants (the
        divmod remainder goes to the lowest ids, deterministically).
        With no remaining tenants the shares simply empty.
        """
        freed = self.shares.pop(tenant_id, 0)
        if self.allocator is None:
            return
        self.allocator.release_tenant(tenant_id)
        remaining = sorted(self.shares)
        if remaining and freed:
            bonus, extra = divmod(freed, len(remaining))
            for i, tid in enumerate(remaining):
                self.shares[tid] += bonus + (1 if i < extra else 0)
        self.allocator.set_quotas(self.shares)

    def allocator_summary(self) -> dict[str, Any]:
        """The share/occupancy/recycling counters every capacity scheme reports."""
        allocator = self.allocator
        if allocator is None:
            raise RuntimeError("allocator_summary requires an attached scheme")
        return {
            "shares": {str(t): s for t, s in sorted(self.shares.items())},
            "occupancy": {str(t): c for t, c in allocator.occupancy().items()},
            "recycled": {str(t): r for t, r in sorted(allocator.recycled.items())},
            "denied": {str(t): d for t, d in sorted(allocator.denied.items())},
            "total_recycled": allocator.total_recycled,
            "total_denied": allocator.total_denied,
        }
