"""The scheme layer: pluggable cache-allocation/balancing schemes.

- :mod:`repro.schemes.base` — the :class:`Scheme` ABC (attach/detach,
  per-tick hook, decision log, declared config dataclass) and the
  :class:`CacheAllocator` protocol the datapath consults;
- :mod:`repro.schemes.registry` — ``register_scheme`` and name
  resolution (what ``--list-schemes`` and scenario validation read);
- :mod:`repro.schemes.allocation` — per-tenant quota accounting shared
  by the capacity-allocation schemes;
- :mod:`repro.schemes.partition` — static per-VM cache partitioning
  (fair / weighted-proportional);
- :mod:`repro.schemes.dynshare` — efficiency-aware dynamic share
  allocation from observed hit-ratio curves;
- :mod:`repro.schemes.slosteal` — SLO-aware stealing: share moves from
  tenants inside their objectives to the worst violator.

Each built-in scheme registers itself when its module is imported; the
registry lazily imports every built-in module on first query, so
``scheme_names()`` always sees the full set — the paper's comparison
trio (``wb``, ``sib``, ``lbica``) first, then the capacity-allocation
competitors (``partition``, ``dynshare``, ``slosteal``), ordered by
each class's ``registry_order``.
"""

from repro.schemes.allocation import CapacityScheme, QuotaAllocator
from repro.schemes.base import CacheAllocator, Scheme
from repro.schemes.dynshare import DynamicShareScheme, DynShareConfig
from repro.schemes.partition import PartitionConfig, StaticPartitionScheme
from repro.schemes.slosteal import SloStealConfig, SloStealScheme
from repro.schemes.registry import (
    build_scheme,
    get_scheme,
    paper_schemes,
    register_scheme,
    scheme_descriptions,
    scheme_names,
    unknown_scheme_error,
)

__all__ = [
    "Scheme",
    "CacheAllocator",
    "CapacityScheme",
    "QuotaAllocator",
    "register_scheme",
    "get_scheme",
    "build_scheme",
    "scheme_names",
    "paper_schemes",
    "scheme_descriptions",
    "unknown_scheme_error",
    "PartitionConfig",
    "StaticPartitionScheme",
    "DynShareConfig",
    "DynamicShareScheme",
    "SloStealConfig",
    "SloStealScheme",
]


