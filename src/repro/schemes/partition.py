"""Static per-VM cache partitioning.

The classic multi-tenant answer to noisy neighbours (EnhanceIO/
dm-cache deployments, vCacheShare's static baseline): carve the shared
SSD cache into fixed per-VM *capacity* shares at startup so one
tenant's burst cannot grow past its share and squeeze a neighbour's
footprint (victim selection inside a full associativity set stays
shared set-LRU — see :mod:`repro.schemes.allocation` for the exact
guarantee).  Two variants:

- ``fair`` — every VM gets ``capacity / n`` blocks;
- ``proportional`` — shares follow configured weights (missing weights
  default to 1.0), e.g. ``weights: [2, 1, 1]`` gives the first VM half
  the cache.

Enforcement is per-tenant replacement via
:class:`~repro.schemes.allocation.QuotaAllocator`: a tenant at quota
recycles its own oldest clean block to admit new data — it churns
within its share instead of stealing a neighbour's — and is denied
(promotion skipped, write routed around the cache to the disk) only
while its share is entirely dirty.  The per-tick hook only *observes* —
each tick logs a :class:`PartitionDecision` snapshot of shares,
occupancy, recycling, and denials (the scheme's Fig. 6-style timeline);
the shares themselves never move, which is exactly the rigidity the
dynamic allocator (:mod:`repro.schemes.dynshare`) relaxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.schemes.allocation import (
    CapacityScheme,
    fair_shares,
    proportional_shares,
)
from repro.schemes.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import ExperimentSystem

__all__ = ["PartitionConfig", "PartitionDecision", "StaticPartitionScheme"]

#: Accepted ``PartitionConfig.variant`` values.
_VARIANTS = ("fair", "proportional")


@dataclass
class PartitionConfig:
    """Static-partitioning tuning.

    Attributes:
        variant: ``"fair"`` (equal shares) or ``"proportional"``
            (weighted by ``weights``).
        weights: Per-tenant weights for the proportional variant, in
            ``tenant_id`` order; missing entries default to ``1.0`` and
            extras are ignored.  Unused by ``fair``.
        min_share_blocks: Floor under any tenant's share, so a tiny
            weight still leaves room to make progress.
        report_interval_us: Period of the observation tick that logs
            occupancy snapshots (``0`` disables the periodic log; the
            startup share assignment is always logged).
    """

    variant: str = "fair"
    weights: list[float] = field(default_factory=list)
    min_share_blocks: int = 64
    report_interval_us: float = 50_000.0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"partition variant must be one of {_VARIANTS}, got {self.variant!r}"
            )
        if any(w <= 0 for w in self.weights):
            raise ValueError("partition weights must be positive")
        if self.min_share_blocks < 1:
            raise ValueError("min_share_blocks must be >= 1")
        if self.report_interval_us < 0:
            raise ValueError("report_interval_us must be non-negative")


@dataclass(frozen=True)
class PartitionDecision:
    """One observation of the partitioned cache (shares never move)."""

    time: float
    shares: dict[int, int]
    occupancy: dict[int, int]
    recycled: dict[int, int]
    denied: dict[int, int]


class StaticPartitionScheme(CapacityScheme):
    """Fixed per-VM cache shares assigned once at start."""

    name = "partition"
    description = (
        "Static per-VM cache partitioning (fair-share or weighted-"
        "proportional), each tenant recycling within its own share."
    )
    config_cls = PartitionConfig
    config_field = "partition"
    registry_order = 10

    # ------------------------------------------------------------------
    def _on_attach(self, system: "ExperimentSystem") -> None:
        store = system.store
        n = max(1, getattr(system.workload, "tenant_count", 1))
        cfg = self.config
        if cfg.variant == "proportional":
            shares = proportional_shares(
                store.capacity_blocks, n, cfg.weights, cfg.min_share_blocks
            )
        else:
            shares = fair_shares(store.capacity_blocks, n, cfg.min_share_blocks)
        self._install_allocator(system, shares)

    # ------------------------------------------------------------------
    @property
    def tick_interval_us(self) -> float:
        return self.config.report_interval_us

    def start(self) -> None:
        if self._started:
            return
        self._snapshot(self.sim.now)  # the startup share assignment
        super().start()

    def on_tick(self, now: float) -> None:
        self._snapshot(now)

    def _snapshot(self, now: float) -> None:
        allocator = self.allocator
        assert allocator is not None  # _on_attach installed it
        self.decisions.append(
            PartitionDecision(
                time=now,
                shares=dict(self.shares),
                occupancy=allocator.occupancy(),
                recycled=dict(allocator.recycled),
                denied=dict(allocator.denied),
            )
        )

    # ------------------------------------------------------------------
    def summary_stats(self) -> dict[str, Any]:
        return {"variant": self.config.variant, **self.allocator_summary()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StaticPartitionScheme({self.config.variant}, "
            f"shares={self.shares})"
        )


register_scheme(StaticPartitionScheme)
