"""The :class:`Scheme` abstraction: one allocation scheme, pluggable.

The paper's evaluation is a three-way comparison (``wb`` / ``sib`` /
``lbica``), and for four PRs those three names were an ``if``/``elif``
chain inside :class:`~repro.experiments.system.ExperimentSystem`.  This
module opens that axis: a scheme is a class with

- a registry ``name`` and one-line ``description`` (what the CLI's
  ``--list-schemes`` prints);
- a declared config dataclass (``config_cls``) and the
  :class:`~repro.config.SystemConfig` attribute that carries it
  (``config_field``) — which is what makes scheme-specific config
  blocks in scenario JSON (``"system": {"partition": {...}}``)
  validate like every other nested override;
- :meth:`attach`/:meth:`detach` to wire into (and cleanly out of) a
  built :class:`~repro.experiments.system.ExperimentSystem`;
- a periodic :meth:`on_tick` hook driven by :attr:`tick_interval_us`;
- a :meth:`decision_log` (one record per evaluation — the Fig. 6
  timeline generalized) and :meth:`summary_stats` for reports.

Registration lives in :mod:`repro.schemes.registry`;
:func:`~repro.schemes.registry.register_scheme` accepts any subclass,
so adding a competitor needs zero edits to core plumbing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, ClassVar, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import ExperimentSystem

__all__ = ["Scheme", "CacheAllocator", "SchemeConfigLike"]


class SchemeConfigLike(Protocol):
    """What a declared scheme config dataclass must offer."""

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        ...


class CacheAllocator(Protocol):
    """Per-tenant cache-capacity control a scheme may install.

    The :class:`~repro.cache.controller.CacheController` consults an
    installed allocator before growing the cache on behalf of a tenant
    (promotions and cached writes) and notifies it of every insertion
    and removal, so the allocator can keep exact per-tenant resident
    counts.  With no allocator installed (the wb/sib/lbica datapath)
    every call site is skipped — the shared-cache behavior is
    bit-identical to the pre-registry code.
    """

    def admit(self, tenant_id: int, lba: int) -> bool:
        """Whether ``tenant_id`` may insert ``lba`` into the cache."""
        ...

    def note_insert(self, tenant_id: int, lba: int) -> None:
        """Record that ``lba`` is now resident on behalf of ``tenant_id``."""
        ...

    def note_remove(self, lba: int) -> None:
        """Record that ``lba`` left the cache (eviction or invalidation)."""
        ...


class Scheme:
    """Base class for allocation/balancing schemes.

    Subclasses declare class attributes (``name``, ``description``,
    ``config_cls``, ``config_field``, ``paper_baseline``) and implement
    behavior via the attach/tick hooks.  The historical controllers
    (:class:`~repro.baselines.wb.WbBaseline`,
    :class:`~repro.baselines.sib.SibController`,
    :class:`~repro.core.lbica.LbicaController`) subclass this with their
    original constructors and loops untouched, so their simulations are
    bit-identical to the pre-registry wiring (pinned by the committed
    golden fingerprints).
    """

    #: Registry key (``scheme`` field of a :class:`ScenarioSpec`).
    name: ClassVar[str] = ""
    #: One-line human description (``--list-schemes``).
    description: ClassVar[str] = ""
    #: Declared config dataclass, or ``None`` for config-free schemes.
    config_cls: ClassVar[Optional[type[Any]]] = None
    #: :class:`~repro.config.SystemConfig` attribute holding the scheme's
    #: config block, or ``None`` (must name a real field when set).
    config_field: ClassVar[Optional[str]] = None
    #: Whether this scheme is one of the paper's three comparison
    #: baselines (the default figure grids iterate only these).
    paper_baseline: ClassVar[bool] = False
    #: Listing position in registry queries (lower first; ties break on
    #: registration order).  Built-ins pin the canonical ``wb, sib,
    #: lbica, partition, dynshare`` order; third-party schemes default
    #: to the end.
    registry_order: ClassVar[int] = 1000

    # Instance-attribute fallbacks: legacy subclasses never call
    # ``Scheme.__init__``, so the shared state lives in class attributes
    # that instances shadow on first write.
    system: Optional["ExperimentSystem"] = None
    _started: bool = False

    def __init__(self, config: Optional[SchemeConfigLike] = None) -> None:
        if config is None and self.config_cls is not None:
            config = self.config_cls()
        if config is not None:
            config.validate()
        # Any, deliberately: each subclass reads its own config dataclass's
        # fields, and the declared config_cls is what types it in spirit.
        self.config: Any = config
        self.decisions: list[Any] = []

    # ------------------------------------------------------------------
    # Construction from a wired system
    # ------------------------------------------------------------------
    @classmethod
    def from_system(cls, system: "ExperimentSystem") -> "Scheme":
        """Build this scheme against a wired system (the registry path).

        The default implementation constructs with the system's declared
        config block and attaches; legacy schemes override to keep their
        historical constructor signatures.
        """
        config = None
        if cls.config_field is not None:
            config = getattr(system.config, cls.config_field)
        return cls(config).attach(system)

    # ------------------------------------------------------------------
    # Attach / detach
    # ------------------------------------------------------------------
    def attach(self, system: "ExperimentSystem") -> "Scheme":
        """Bind to a built system (simulator, datapath, devices).

        Returns ``self`` so ``cls(config).attach(system)`` chains.
        """
        if self.system is not None:
            raise RuntimeError(f"scheme {self.name!r} is already attached")
        self.system = system
        self.sim = system.sim
        self.controller = system.controller
        self.ssd = system.ssd
        self.hdd = system.hdd
        self._on_attach(system)
        return self

    def detach(self) -> None:
        """Unbind from the system (idempotent).

        Undoes whatever :meth:`_on_attach` installed (e.g. a cache
        allocator); a started periodic tick keeps firing on the old
        simulator but observes nothing once detached.
        """
        if self.system is None:
            return
        self._on_detach(self.system)
        self.system = None

    def _on_attach(self, system: "ExperimentSystem") -> None:
        """Subclass hook: install datapath hooks, compute shares, ..."""

    def _on_detach(self, system: "ExperimentSystem") -> None:
        """Subclass hook: uninstall whatever :meth:`_on_attach` did."""

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    @property
    def tick_interval_us(self) -> float:
        """Period of the scheme's control loop (``0`` = no periodic tick)."""
        return 0.0

    def start(self) -> None:
        """Begin periodic activity (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.tick_interval_us > 0:
            self.sim.schedule_call(self.tick_interval_us, self._tick)

    def _tick(self) -> None:
        if self.system is not None:
            self.on_tick(self.sim.now)
        self.sim.schedule_call(self.tick_interval_us, self._tick)

    def on_tick(self, now: float) -> None:
        """Per-tick hook: evaluate, decide, and log one decision."""

    # ------------------------------------------------------------------
    # Tenant churn hooks
    # ------------------------------------------------------------------
    def on_tenant_arrived(self, tenant_id: int) -> None:
        """A tenant arrived mid-run (churn).  Default: no reaction."""

    def on_tenant_departed(self, tenant_id: int) -> None:
        """A tenant departed mid-run (churn).  Default: no reaction.

        Capacity schemes override this to release the departed share
        (see :meth:`~repro.schemes.allocation.CapacityScheme.on_tenant_departed`).
        """

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def decision_log(self) -> list[Any]:
        """One record per control-loop evaluation (scheme-specific type)."""
        return self.decisions

    def summary_stats(self) -> dict[str, Any]:
        """Scheme-specific counters for reports (JSON-friendly)."""
        return {}

    @classmethod
    def describe(cls) -> str:
        """The one-line description, with a documented fallback."""
        if cls.description:
            return cls.description
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0].strip() if doc else "(no description)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
