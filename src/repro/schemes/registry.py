"""The scheme registry: allocation schemes by name.

This is the single source of truth for which schemes exist.  Everything
that used to hardcode the paper's three names — scenario validation,
``ExperimentSystem`` construction, the CLI — resolves through here, and
:data:`repro.experiments.system.SCHEMES` (the paper's comparison trio
the default figure grids iterate) is *derived* from the registry's
``paper_baseline`` flags rather than spelled out.

Adding a competitor scheme is therefore one class plus one call::

    from repro.schemes import Scheme, register_scheme

    @register_scheme
    class NoopScheme(Scheme):
        name = "noop"
        description = "Does nothing (an example)."

        def start(self):
            pass

after which ``ScenarioSpec(scheme="noop")``, ``--list-schemes``, and
campaign sweeps over ``scheme`` all pick it up.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Optional

from repro.schemes.base import Scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import ExperimentSystem

__all__ = [
    "register_scheme",
    "get_scheme",
    "scheme_names",
    "paper_schemes",
    "scheme_descriptions",
    "build_scheme",
]

#: Registered scheme classes by name.  Treat as read-only; use
#: :func:`register_scheme` to add entries.  Query order is by each
#: class's ``registry_order`` (ties broken by registration order), so
#: the paper trio lists first regardless of import order.
_REGISTRY: dict[str, type[Scheme]] = {}

#: Modules whose import registers the built-in schemes.  The legacy
#: controllers self-register at their module bottoms (they cannot be
#: imported from here at load time — ``repro.config`` imports them, and
#: they import :mod:`repro.schemes.base`, so a load-time import here
#: would be circular); every query lazily imports the full set instead.
_BUILTIN_MODULES = (
    "repro.baselines.wb",
    "repro.baselines.sib",
    "repro.core.lbica",
    "repro.schemes.partition",
    "repro.schemes.dynshare",
    "repro.schemes.slosteal",
)
_builtins_state = "unloaded"  # -> "loading" -> "loaded"


def _ensure_builtins() -> None:
    global _builtins_state
    if _builtins_state != "unloaded":
        # "loading" guards reentrancy (a builtin module querying the
        # registry mid-import); "loaded" is the steady state.
        return
    _builtins_state = "loading"
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        # A failed builtin import must surface again on the next query,
        # not silently leave a partial registry behind.
        _builtins_state = "unloaded"
        raise
    _builtins_state = "loaded"


def register_scheme(
    cls: type[Scheme], *, overwrite: bool = False
) -> type[Scheme]:
    """Register a :class:`Scheme` subclass under its declared ``name``.

    Usable as a decorator.  Duplicate names are rejected (pass
    ``overwrite=True`` to deliberately replace an entry); a scheme that
    declares a ``config_field`` must name a real
    :class:`~repro.config.SystemConfig` attribute — checked lazily at
    build time, because the config module itself imports scheme configs.

    Returns:
        ``cls``, unchanged.
    """
    if not isinstance(cls, type) or not issubclass(cls, Scheme):
        raise TypeError(f"register_scheme expects a Scheme subclass, got {cls!r}")
    name = cls.name
    if not name or not isinstance(name, str):
        raise ValueError(f"{cls.__name__}: scheme name must be a non-empty string")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"scheme {name!r} is already registered "
            f"(by {_REGISTRY[name].__name__}); pass overwrite=True to replace"
        )
    _REGISTRY[name] = cls
    return cls


def unknown_scheme_error(name: object) -> ValueError:
    """The canonical unknown-scheme error, naming the registry source."""
    return ValueError(
        f"unknown scheme {name!r}; registered schemes "
        f"(repro.schemes.registry): {', '.join(scheme_names())}"
    )


def get_scheme(name: str) -> type[Scheme]:
    """The registered scheme class for ``name``.

    Raises:
        ValueError: Naming the registry and listing every registered
            scheme — the error an unknown ``ScenarioSpec.scheme`` or CLI
            argument surfaces.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise unknown_scheme_error(name) from None


def _ordered() -> list[tuple[str, type[Scheme]]]:
    _ensure_builtins()
    # sorted() is stable, so equal registry_order keeps arrival order.
    return sorted(_REGISTRY.items(), key=lambda kv: kv[1].registry_order)


def scheme_names() -> tuple[str, ...]:
    """Every registered scheme name (``registry_order``, then arrival)."""
    return tuple(name for name, _ in _ordered())


def paper_schemes() -> tuple[str, ...]:
    """The paper's comparison baselines (``paper_baseline=True``)."""
    return tuple(name for name, cls in _ordered() if cls.paper_baseline)


def scheme_descriptions() -> dict[str, str]:
    """Every registered scheme with its one-line description."""
    return {name: cls.describe() for name, cls in _ordered()}


def build_scheme(name: str, system: "ExperimentSystem") -> Scheme:
    """Construct (and attach) the named scheme against a wired system."""
    return get_scheme(name).from_system(system)


def _registered(name: str) -> Optional[type[Scheme]]:
    """Internal: the entry for ``name`` or ``None`` (tests and tooling)."""
    return _REGISTRY.get(name)
