"""SLO-driven cache-share stealing.

The third scheme family: where ``partition`` freezes shares and
``dynshare`` chases hit-ratio efficiency, ``slosteal`` optimizes for
*objectives* — every decision interval it takes cache share away from
tenants comfortably inside their service-level objectives and gives it
to the tenant violating hardest.

Per tick the scheme:

1. collects each tenant's windowed p99 application latency (from a
   completion hook) and windowed read hit ratio (from the datapath's
   per-tenant counters);
2. scores each tenant with a **violation ratio** — how far outside its
   objectives it sits.  A tenant with declared SLO targets (the
   scenario's ``slo`` blocks, surfaced via the workload's
   ``slo_targets()``) is judged against them; a tenant without targets
   is judged against the fleet's mean windowed p99, so the scheme
   degrades to latency fairness when no SLOs are declared;
3. moves at most ``max_step_blocks`` of quota from the most
   comfortable donor (ratio at or below ``donor_headroom``, share above
   ``min_share_blocks``) to the worst violator, and logs a
   :class:`SloStealDecision`.

Shares are enforced by the same per-tenant replacement as the other
capacity schemes (:class:`~repro.schemes.allocation.QuotaAllocator`).
Every ranking breaks ties on tenant id, so runs fingerprint
bit-identically across processes and platforms.  Under churn the
inherited :meth:`~repro.schemes.allocation.CapacityScheme.on_tenant_departed`
releases a departed tenant's share and redistributes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.analysis.metrics import percentile
from repro.io.request import Request
from repro.schemes.allocation import CapacityScheme, fair_shares
from repro.schemes.registry import register_scheme
from repro.service.slo import SloTarget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import ExperimentSystem

__all__ = ["SloStealConfig", "SloStealDecision", "SloStealScheme"]


@dataclass
class SloStealConfig:
    """SLO-stealing tuning.

    Attributes:
        decision_interval_us: Period of the stealing loop (aligned to
            the monitoring interval by
            :class:`~repro.config.SystemConfig`).
        min_share_blocks: Floor under any tenant's share; stealing never
            drains a donor below it.
        max_step_blocks: Largest quota move per tick.
        donor_headroom: A tenant may donate only while its violation
            ratio is at or below this (strictly less than 1.0 keeps a
            safety margin between donors and the violation boundary).
    """

    decision_interval_us: float = 50_000.0
    min_share_blocks: int = 64
    max_step_blocks: int = 256
    donor_headroom: float = 0.8

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.decision_interval_us <= 0:
            raise ValueError("decision_interval_us must be positive")
        if self.min_share_blocks < 1:
            raise ValueError("min_share_blocks must be >= 1")
        if self.max_step_blocks < 1:
            raise ValueError("max_step_blocks must be >= 1")
        if not 0.0 < self.donor_headroom < 1.0:
            raise ValueError("donor_headroom must be in (0, 1)")


@dataclass(frozen=True)
class SloStealDecision:
    """One stealing evaluation (the scheme's timeline row)."""

    time: float
    shares: dict[int, int]
    p99_latency_us: dict[int, float]
    hit_ratios: dict[int, float]
    ratios: dict[int, float]
    violations: int
    moved_blocks: int
    from_tenant: int | None
    to_tenant: int | None


class SloStealScheme(CapacityScheme):
    """Steals cache share from SLO over-achievers for SLO violators."""

    name = "slosteal"
    description = (
        "SLO-aware allocator: steals cache share from tenants inside "
        "their SLO targets for the tenant violating hardest."
    )
    config_cls = SloStealConfig
    config_field = "slosteal"
    registry_order = 12

    def __init__(self, config: SloStealConfig | None = None) -> None:
        super().__init__(config)
        #: Declared per-tenant objectives (empty when the scenario has none).
        self.targets: dict[int, SloTarget] = {}
        self._window: dict[int, list[float]] = {}
        self._prev_hits: dict[int, int] = {}
        self._prev_misses: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _on_attach(self, system: "ExperimentSystem") -> None:
        n = max(1, getattr(system.workload, "tenant_count", 1))
        self._install_allocator(
            system,
            fair_shares(
                system.store.capacity_blocks, n, self.config.min_share_blocks
            ),
        )
        slo_targets = getattr(system.workload, "slo_targets", None)
        self.targets = dict(slo_targets()) if callable(slo_targets) else {}
        system.controller.add_completion_hook(self._record_completion)

    def _on_detach(self, system: "ExperimentSystem") -> None:
        system.controller.remove_completion_hook(self._record_completion)
        super()._on_detach(system)

    def _record_completion(self, request: Request) -> None:
        lats = self._window.get(request.tenant_id)
        if lats is None:
            lats = self._window[request.tenant_id] = []
        lats.append(request.complete_time - request.arrival)

    def on_tenant_departed(self, tenant_id: int) -> None:
        super().on_tenant_departed(tenant_id)
        self._window.pop(tenant_id, None)

    # ------------------------------------------------------------------
    @property
    def tick_interval_us(self) -> float:
        return self.config.decision_interval_us

    def on_tick(self, now: float) -> None:
        tenants = sorted(self.shares)
        p99s: dict[int, float] = {}
        hit_ratios: dict[int, float] = {}
        windows: dict[int, int] = {}
        tenant_stats = self.controller.stats.tenants
        for tid in tenants:
            lats = self._window.pop(tid, [])
            stats = tenant_stats.get(tid)
            hits = stats.read_hit_blocks if stats is not None else 0
            misses = stats.read_miss_blocks if stats is not None else 0
            d_hits = hits - self._prev_hits.get(tid, 0)
            d_misses = misses - self._prev_misses.get(tid, 0)
            self._prev_hits[tid] = hits
            self._prev_misses[tid] = misses
            window = d_hits + d_misses
            windows[tid] = window
            p99s[tid] = percentile(lats, 99.0) if lats else 0.0
            hit_ratios[tid] = d_hits / window if window else 0.0

        ratios = self._violation_ratios(tenants, p99s, hit_ratios, windows)
        moved, src, dst = self._steal(tenants, ratios)
        self.decisions.append(
            SloStealDecision(
                time=now,
                shares=dict(self.shares),
                p99_latency_us=p99s,
                hit_ratios=hit_ratios,
                ratios=ratios,
                violations=sum(1 for r in ratios.values() if r > 1.0),
                moved_blocks=moved,
                from_tenant=src,
                to_tenant=dst,
            )
        )

    # ------------------------------------------------------------------
    def _violation_ratios(
        self,
        tenants: list[int],
        p99s: dict[int, float],
        hit_ratios: dict[int, float],
        windows: dict[int, int],
    ) -> dict[int, float]:
        """How far outside its objectives each tenant sits (> 1 = violating).

        Declared targets dominate; tenants without any are scored
        against the fleet's mean windowed p99 (latency fairness), and a
        tenant idle for the window scores 0 (a natural donor).
        """
        active = [p99s[t] for t in tenants if p99s[t] > 0.0]
        fleet_mean = sum(active) / len(active) if active else 0.0
        ratios: dict[int, float] = {}
        for tid in tenants:
            target = self.targets.get(tid)
            if target is None:
                ratios[tid] = p99s[tid] / fleet_mean if fleet_mean > 0 else 0.0
                continue
            ratio = 0.0
            if target.p99_latency_us is not None and p99s[tid] > 0.0:
                ratio = p99s[tid] / target.p99_latency_us
            if target.min_hit_ratio is not None and windows[tid] > 0:
                hr = hit_ratios[tid]
                if hr > 0.0:
                    ratio = max(ratio, target.min_hit_ratio / hr)
                elif target.min_hit_ratio > 0.0:
                    # every windowed read missed: maximally violating
                    ratio = max(ratio, 2.0)
            ratios[tid] = ratio
        return ratios

    def _steal(
        self, tenants: list[int], ratios: dict[int, float]
    ) -> tuple[int, int | None, int | None]:
        """Move quota from the most comfortable donor to the worst violator."""
        if len(tenants) < 2:
            return 0, None, None
        cfg = self.config
        violators = [t for t in tenants if ratios[t] > 1.0]
        if not violators:
            return 0, None, None
        dst = max(violators, key=lambda t: (ratios[t], -t))
        donors = [
            t
            for t in tenants
            if t != dst
            and ratios[t] <= cfg.donor_headroom
            and self.shares[t] > cfg.min_share_blocks
        ]
        if not donors:
            return 0, None, None
        src = min(donors, key=lambda t: (ratios[t], t))
        moved = min(cfg.max_step_blocks, self.shares[src] - cfg.min_share_blocks)
        if moved <= 0:
            return 0, None, None
        self.shares[src] -= moved
        self.shares[dst] += moved
        assert self.allocator is not None  # _on_attach installed it
        self.allocator.set_quotas(self.shares)
        return moved, src, dst

    # ------------------------------------------------------------------
    def summary_stats(self) -> dict[str, Any]:
        return {
            **self.allocator_summary(),
            "reallocations": sum(1 for d in self.decisions if d.moved_blocks > 0),
            "blocks_moved": sum(d.moved_blocks for d in self.decisions),
            "violation_ticks": sum(1 for d in self.decisions if d.violations),
            "declared_targets": sorted(self.targets),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SloStealScheme(shares={self.shares})"


register_scheme(SloStealScheme)
