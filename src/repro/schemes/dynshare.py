"""Efficiency-aware dynamic cache-share allocation.

The utility-based line of the multi-tenant caching literature (UCP,
Centaur, CloudCache): instead of freezing per-VM shares, observe each
tenant's *hit-ratio curve* — the (share, hit ratio) points the run
actually visits — and every decision interval move capacity toward the
tenants that convert extra blocks into hits.

Per tick the scheme:

1. reads each tenant's read hit/miss block deltas for the window off
   the cache datapath's per-tenant counters;
2. appends a ``(share, hit_ratio)`` point to the tenant's observed
   curve and smooths the tenant's miss pressure (missed read blocks per
   window) with an EWMA;
3. ranks tenants by smoothed miss pressure, excluding tenants whose
   observed curve says more cache has not been helping (the last slope
   across distinct shares is ``<= 0``) — that is the efficiency gate;
4. moves at most ``max_step_blocks`` of quota from the lowest-pressure
   tenant with room above ``min_share_blocks`` to the highest-pressure
   eligible tenant, and logs a :class:`ShareDecision`.

Shares are enforced by the same per-tenant replacement as the static
partitioner (:class:`~repro.schemes.allocation.QuotaAllocator`): a
tenant at quota recycles its own oldest clean block, and a tenant
whose share shrank drains toward its new quota through bounded extra
recycling (capacity isolation; set-level victim selection stays
shared — see :mod:`repro.schemes.allocation`).  Everything is
deterministic — ties break on tenant id — so runs fingerprint
bit-identically across processes and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.schemes.allocation import CapacityScheme, fair_shares
from repro.schemes.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.system import ExperimentSystem

__all__ = ["DynShareConfig", "ShareDecision", "DynamicShareScheme"]


@dataclass
class DynShareConfig:
    """Dynamic-allocator tuning.

    Attributes:
        decision_interval_us: Period of the reallocation loop (aligned
            to the monitoring interval by :class:`~repro.config.
            SystemConfig`, like LBICA's decision loop).
        min_share_blocks: Floor under any tenant's share; reallocation
            never drains a tenant below it.
        max_step_blocks: Largest quota move per tick — small steps keep
            the allocator stable and give the hit-ratio curve distinct
            nearby points to estimate slopes from.
        ewma: Weight of the newest window in the smoothed per-tenant
            miss pressure.
        curve_points: Observed ``(share, hit_ratio)`` points retained
            per tenant (the decision log keeps every decision; this
            bounds only the working curve).
    """

    decision_interval_us: float = 50_000.0
    min_share_blocks: int = 64
    max_step_blocks: int = 256
    ewma: float = 0.3
    curve_points: int = 16

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.decision_interval_us <= 0:
            raise ValueError("decision_interval_us must be positive")
        if self.min_share_blocks < 1:
            raise ValueError("min_share_blocks must be >= 1")
        if self.max_step_blocks < 1:
            raise ValueError("max_step_blocks must be >= 1")
        if not 0.0 < self.ewma <= 1.0:
            raise ValueError("ewma must be in (0, 1]")
        if self.curve_points < 2:
            raise ValueError("curve_points must be >= 2")


@dataclass(frozen=True)
class ShareDecision:
    """One reallocation evaluation (the scheme's timeline row)."""

    time: float
    shares: dict[int, int]
    hit_ratios: dict[int, float]
    pressure: dict[int, float]
    moved_blocks: int
    from_tenant: int | None
    to_tenant: int | None


class DynamicShareScheme(CapacityScheme):
    """Reassigns per-VM cache shares from observed hit-ratio curves."""

    name = "dynshare"
    description = (
        "Efficiency-aware dynamic allocator: moves per-VM cache share "
        "toward tenants whose observed hit-ratio curves still improve."
    )
    config_cls = DynShareConfig
    config_field = "dynshare"
    registry_order = 11

    def __init__(self, config: DynShareConfig | None = None) -> None:
        super().__init__(config)
        #: Observed per-tenant hit-ratio curves: ``tenant -> [(share, hr)]``.
        self.curves: dict[int, list[tuple[int, float]]] = {}
        self._pressure: dict[int, float] = {}
        self._prev_hits: dict[int, int] = {}
        self._prev_misses: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _on_attach(self, system: "ExperimentSystem") -> None:
        n = max(1, getattr(system.workload, "tenant_count", 1))
        self._install_allocator(
            system,
            fair_shares(
                system.store.capacity_blocks, n, self.config.min_share_blocks
            ),
        )
        self.curves = {tid: [] for tid in self.shares}

    # ------------------------------------------------------------------
    @property
    def tick_interval_us(self) -> float:
        return self.config.decision_interval_us

    def on_tick(self, now: float) -> None:
        cfg = self.config
        tenants = sorted(self.shares)
        hit_ratios: dict[int, float] = {}
        tenant_stats = self.controller.stats.tenants
        for tid in tenants:
            stats = tenant_stats.get(tid)
            hits = stats.read_hit_blocks if stats is not None else 0
            misses = stats.read_miss_blocks if stats is not None else 0
            d_hits = hits - self._prev_hits.get(tid, 0)
            d_misses = misses - self._prev_misses.get(tid, 0)
            self._prev_hits[tid] = hits
            self._prev_misses[tid] = misses
            window = d_hits + d_misses
            hr = d_hits / window if window else 0.0
            hit_ratios[tid] = hr
            curve = self.curves[tid]
            curve.append((self.shares[tid], hr))
            del curve[: -cfg.curve_points]
            prev = self._pressure.get(tid, float(d_misses))
            self._pressure[tid] = (1 - cfg.ewma) * prev + cfg.ewma * d_misses

        moved, src, dst = self._rebalance(tenants)
        self.decisions.append(
            ShareDecision(
                time=now,
                shares=dict(self.shares),
                hit_ratios=hit_ratios,
                pressure=dict(self._pressure),
                moved_blocks=moved,
                from_tenant=src,
                to_tenant=dst,
            )
        )

    # ------------------------------------------------------------------
    def _curve_slope(self, tenant_id: int) -> float | None:
        """Hit-ratio gain per extra block, from the last two distinct
        shares the tenant's observed curve visited (``None`` until the
        curve has two such points)."""
        curve = self.curves[tenant_id]
        if len(curve) < 2:
            return None
        share_b, hr_b = curve[-1]
        for share_a, hr_a in reversed(curve[:-1]):
            if share_a != share_b:
                return (hr_b - hr_a) / (share_b - share_a)
        return None

    def _rebalance(
        self, tenants: list[int]
    ) -> tuple[int, int | None, int | None]:
        """Move quota from the calmest tenant to the neediest eligible one."""
        if len(tenants) < 2:
            return 0, None, None
        cfg = self.config

        def eligible(tid: int) -> bool:
            # Efficiency gate: a tenant whose observed curve shows no
            # hit-ratio gain from extra share does not receive more.
            slope = self._curve_slope(tid)
            return slope is None or slope > 0.0

        # Highest smoothed miss pressure wins; ties break on tenant id.
        gainers = [t for t in tenants if eligible(t)]
        if not gainers:
            return 0, None, None
        dst = max(gainers, key=lambda t: (self._pressure[t], -t))
        donors = [
            t
            for t in tenants
            if t != dst and self.shares[t] > cfg.min_share_blocks
        ]
        if not donors:
            return 0, None, None
        src = min(donors, key=lambda t: (self._pressure[t], t))
        if self._pressure[dst] <= self._pressure[src]:
            return 0, None, None
        moved = min(
            cfg.max_step_blocks, self.shares[src] - cfg.min_share_blocks
        )
        if moved <= 0:
            return 0, None, None
        self.shares[src] -= moved
        self.shares[dst] += moved
        assert self.allocator is not None  # _on_attach installed it
        self.allocator.set_quotas(self.shares)
        return moved, src, dst

    # ------------------------------------------------------------------
    def summary_stats(self) -> dict[str, Any]:
        return {
            **self.allocator_summary(),
            "reallocations": sum(
                1 for d in self.decisions if d.moved_blocks > 0
            ),
            "blocks_moved": sum(d.moved_blocks for d in self.decisions),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicShareScheme(shares={self.shares})"


register_scheme(DynamicShareScheme)
