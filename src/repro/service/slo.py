"""Per-tenant service-level objectives and their periodic monitor.

The paper's consolidated setting is only meaningful if each VM's service
quality is *tracked*: a tenant pays for a latency/hit-ratio target, and
the platform must know — per monitoring interval — whether the shared
cache is honouring it.  This module is the data model and the tracker:

- :class:`SloTarget` — a tenant's declared objectives (``p99_latency_us``
  and/or ``min_hit_ratio``), validated strictly like every other spec
  block;
- :class:`SloSample` — one tenant's compliance measurement for one
  monitoring interval (windowed p99, windowed hit ratio, and the
  per-objective verdicts);
- :class:`SloMonitor` — a periodic tick (driven by the simulator, like
  the iostat monitor) that turns completion latencies and the datapath's
  per-tenant hit/miss counters into a compliance series.

Everything here is a pure function of simulated state: the monitor reads
``Simulator.now``, windowed latency populations, and counter deltas, so
its series is bit-identical across processes and platforms and can be
pinned by golden fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.analysis.metrics import percentile
from repro.cache.controller import CacheController
from repro.io.request import Request
from repro.sim.engine import Simulator

__all__ = ["ServiceError", "SloTarget", "SloSample", "SloMonitor"]

#: Keys of an ``slo`` spec block.
_SLO_KEYS = {"p99_latency_us", "min_hit_ratio"}


class ServiceError(ValueError):
    """Raised for malformed service-layer declarations (SLOs, lifecycles)."""


@dataclass(frozen=True)
class SloTarget:
    """One tenant's declared service-level objectives.

    Attributes:
        p99_latency_us: The tenant's windowed p99 application latency
            must stay at or below this (µs); ``None`` declares no
            latency objective.
        min_hit_ratio: The tenant's windowed read hit ratio must stay at
            or above this; ``None`` declares no hit-ratio objective.
    """

    p99_latency_us: Optional[float] = None
    min_hit_ratio: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`ServiceError` on inconsistent parameters."""
        if self.p99_latency_us is None and self.min_hit_ratio is None:
            raise ServiceError(
                "slo target: declare p99_latency_us and/or min_hit_ratio"
            )
        if self.p99_latency_us is not None and self.p99_latency_us <= 0:
            raise ServiceError("slo target: p99_latency_us must be positive")
        if self.min_hit_ratio is not None and not 0.0 <= self.min_hit_ratio <= 1.0:
            raise ServiceError("slo target: min_hit_ratio must be in [0, 1]")

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any], context: str) -> "SloTarget":
        """Build and validate a target from its spec dict (strict keys)."""
        if not isinstance(spec, Mapping):
            raise ServiceError(f"{context}: slo must be a mapping")
        unknown = set(spec) - _SLO_KEYS
        if unknown:
            raise ServiceError(f"{context}: unknown slo keys {sorted(unknown)}")
        p99 = spec.get("p99_latency_us")
        mhr = spec.get("min_hit_ratio")
        try:
            target = cls(
                p99_latency_us=None if p99 is None else float(p99),
                min_hit_ratio=None if mhr is None else float(mhr),
            )
            target.validate()
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"{context}: {exc}") from None
        return target

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form (stored artifacts, reports)."""
        return {
            "p99_latency_us": self.p99_latency_us,
            "min_hit_ratio": self.min_hit_ratio,
        }


@dataclass(frozen=True)
class SloSample:
    """One tenant's SLO compliance over one monitoring interval.

    An interval with no completed requests (and no read blocks) has
    nothing to judge: both verdicts are vacuously ``True`` and the
    windowed statistics are zero — explicitly *not* ``nan``, so the
    series stays JSON-stable.
    """

    time: float
    tenant_id: int
    p99_latency_us: float
    hit_ratio: float
    completions: int
    read_blocks: int
    p99_ok: bool
    hit_ok: bool

    @property
    def compliant(self) -> bool:
        """Whether every declared objective held this interval."""
        return self.p99_ok and self.hit_ok

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form (stored artifacts, reports)."""
        return {
            "time": self.time,
            "tenant_id": self.tenant_id,
            "p99_latency_us": self.p99_latency_us,
            "hit_ratio": self.hit_ratio,
            "completions": self.completions,
            "read_blocks": self.read_blocks,
            "p99_ok": self.p99_ok,
            "hit_ok": self.hit_ok,
            "compliant": self.compliant,
        }


class SloMonitor:
    """Periodic per-tenant SLO compliance tracking.

    Wire :meth:`record_completion` as a cache-controller completion hook
    and call :meth:`start` once the simulator is about to run; every
    ``interval_us`` the monitor closes the window, judges each tracked
    tenant against its target, and appends one :class:`SloSample` per
    *active* tenant to :attr:`samples`.

    Args:
        sim: The simulator (clock + tick scheduling).
        controller: The cache datapath (per-tenant hit/miss counters).
        targets: ``{tenant_id: SloTarget}`` — only these tenants are
            tracked.
        interval_us: Tick period; the scenario layer passes the
            monitoring interval so compliance lines up with iostat
            samples.
        activity_probe: Optional ``f(tenant_id) -> bool``; an inactive
            tenant (not yet arrived, or departed) is skipped for the
            interval.  ``None`` treats every tracked tenant as active.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: CacheController,
        targets: Mapping[int, SloTarget],
        interval_us: float,
        activity_probe: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if interval_us <= 0:
            raise ServiceError("slo monitor: interval_us must be positive")
        if not targets:
            raise ServiceError("slo monitor: at least one tenant target required")
        for tid, target in targets.items():
            target.validate()
            if tid < 0:
                raise ServiceError("slo monitor: tenant ids must be non-negative")
        self.sim = sim
        self.controller = controller
        self.targets = dict(targets)
        self.interval_us = float(interval_us)
        self.activity_probe = activity_probe
        self.samples: list[SloSample] = []
        self.violations: dict[int, int] = {tid: 0 for tid in sorted(self.targets)}
        self.intervals: dict[int, int] = {tid: 0 for tid in sorted(self.targets)}
        self._window: dict[int, list[float]] = {}
        self._prev_hits: dict[int, int] = {}
        self._prev_misses: dict[int, int] = {}
        self._started = False

    # ------------------------------------------------------------------
    def record_completion(self, request: Request) -> None:
        """Completion hook: collect the window's per-tenant latencies."""
        if request.tenant_id not in self.targets:
            return
        lats = self._window.get(request.tenant_id)
        if lats is None:
            lats = self._window[request.tenant_id] = []
        lats.append(request.complete_time - request.arrival)

    def start(self) -> None:
        """Begin the periodic compliance tick (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_call(self.interval_us, self._tick)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        probe = self.activity_probe
        tenant_stats = self.controller.stats.tenants
        for tid in sorted(self.targets):
            lats = self._window.pop(tid, [])
            stats = tenant_stats.get(tid)
            hits = stats.read_hit_blocks if stats is not None else 0
            misses = stats.read_miss_blocks if stats is not None else 0
            d_hits = hits - self._prev_hits.get(tid, 0)
            d_misses = misses - self._prev_misses.get(tid, 0)
            self._prev_hits[tid] = hits
            self._prev_misses[tid] = misses
            if probe is not None and not probe(tid):
                continue
            target = self.targets[tid]
            read_blocks = d_hits + d_misses
            p99 = percentile(lats, 99.0) if lats else 0.0
            hit_ratio = d_hits / read_blocks if read_blocks else 0.0
            p99_ok = (
                target.p99_latency_us is None
                or not lats
                or p99 <= target.p99_latency_us
            )
            hit_ok = (
                target.min_hit_ratio is None
                or not read_blocks
                or hit_ratio >= target.min_hit_ratio
            )
            sample = SloSample(
                time=now,
                tenant_id=tid,
                p99_latency_us=p99,
                hit_ratio=hit_ratio,
                completions=len(lats),
                read_blocks=read_blocks,
                p99_ok=p99_ok,
                hit_ok=hit_ok,
            )
            self.samples.append(sample)
            self.intervals[tid] += 1
            if not sample.compliant:
                self.violations[tid] += 1
        self.sim.schedule_call(self.interval_us, self._tick)

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Per-tenant compliance counters (JSON-friendly)."""
        tenants: dict[str, Any] = {}
        for tid in sorted(self.targets):
            intervals = self.intervals[tid]
            violations = self.violations[tid]
            tenants[str(tid)] = {
                "target": self.targets[tid].as_dict(),
                "intervals": intervals,
                "violations": violations,
                "compliance": (
                    (intervals - violations) / intervals if intervals else 1.0
                ),
            }
        return {
            "tenants": tenants,
            "n_samples": len(self.samples),
            "total_violations": sum(self.violations.values()),
        }

    def telemetry_snapshot(self) -> dict[str, Any]:
        """Point-in-time compliance state for the obs layer (JSON-ready).

        Reports each tracked tenant's most recent sample verdict plus
        the running violation totals — a pull-style read of existing
        state, called once per monitoring interval.
        """
        latest: dict[int, SloSample] = {}
        for sample in reversed(self.samples):
            if sample.tenant_id not in latest:
                latest[sample.tenant_id] = sample
            if len(latest) == len(self.targets):
                break
        return {
            "tenants": {
                str(tid): {
                    "compliant": latest[tid].compliant,
                    "p99_latency_us": latest[tid].p99_latency_us,
                    "hit_ratio": latest[tid].hit_ratio,
                    "violations": self.violations[tid],
                }
                for tid in sorted(latest)
            },
            "total_violations": sum(self.violations.values()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SloMonitor(tenants={sorted(self.targets)}, "
            f"samples={len(self.samples)})"
        )
