"""Tenant churn: mid-run arrivals, departures, and migrations.

A consolidated platform is never static — VMs arrive, depart, and get
migrated while their neighbours keep running.  This module makes that
expressible:

- :class:`TenantLifecycle` — one tenant's service declaration
  (``arrive_at_us`` / ``depart_at_us`` / ``migrate_at_us`` plus an
  optional :class:`~repro.service.slo.SloTarget`), validated strictly;
- :func:`generate_lifecycles` — a seeded churn process (uniform arrival
  window, exponential lifetimes) for scenarios that want *many*
  short-lived tenants without enumerating them;
- :class:`TenantEvent` — one scheduled churn action, for reporting;
- :class:`ChurnManager` — the executor: it schedules every lifecycle
  event on the simulator (via the allocation-free ``schedule_call``
  path) and drives the cache-side consequences — share reclamation with
  dirty write-back on departure, allocator-gated rewarm on arrival,
  and both in sequence on migration.

The manager deliberately duck-types its workload (see
:class:`ServiceWorkload`): any composition exposing per-tenant regions,
warm sets, and a stop hook can churn, without this module importing a
concrete workload class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Protocol, Sequence

import numpy as np

from repro.cache.controller import CacheController
from repro.service.slo import ServiceError, SloTarget
from repro.sim.engine import Simulator

__all__ = [
    "TenantEvent",
    "TenantLifecycle",
    "generate_lifecycles",
    "ChurnManager",
    "ServiceWorkload",
]


@dataclass(frozen=True)
class TenantEvent:
    """One scheduled churn action (reporting/debugging record)."""

    time_us: float
    tenant_id: int
    kind: str  # "arrive" | "depart" | "migrate"

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form (stored artifacts, reports)."""
        return {"time_us": self.time_us, "tenant_id": self.tenant_id, "kind": self.kind}


@dataclass(frozen=True)
class TenantLifecycle:
    """One tenant's service declaration.

    A default-constructed lifecycle describes a static tenant: present
    from the start of the run to the end, no SLO.  Times are absolute
    simulation µs.

    Attributes:
        arrive_at_us: When the tenant arrives (its workload binds and
            its warm set is re-warmed); ``None`` means present from 0.
        depart_at_us: When the tenant departs (arrivals stop, its cache
            share is reclaimed with dirty write-back); ``None`` means it
            never departs.
        migrate_at_us: Times the tenant is migrated — its cache state is
            reclaimed (dirty blocks flushed) and its clean warm set
            re-warmed on the "new host".
        slo: Optional service-level objectives for this tenant.
    """

    arrive_at_us: Optional[float] = None
    depart_at_us: Optional[float] = None
    migrate_at_us: tuple[float, ...] = ()
    slo: Optional[SloTarget] = None

    def validate(self) -> None:
        """Raise :class:`ServiceError` on an inconsistent lifecycle."""
        start = 0.0 if self.arrive_at_us is None else self.arrive_at_us
        if start < 0:
            raise ServiceError("lifecycle: arrive_at_us must be non-negative")
        if self.depart_at_us is not None and self.depart_at_us <= start:
            raise ServiceError("lifecycle: depart_at_us must follow the arrival")
        prev = start
        for t in self.migrate_at_us:
            if t <= prev:
                raise ServiceError(
                    "lifecycle: migrate_at_us must be strictly increasing "
                    "and follow the arrival"
                )
            prev = t
        if self.depart_at_us is not None and prev >= self.depart_at_us:
            raise ServiceError("lifecycle: migrations must precede the departure")
        if self.slo is not None:
            self.slo.validate()

    @property
    def has_churn(self) -> bool:
        """Whether this lifecycle schedules any mid-run event."""
        return (
            self.arrive_at_us is not None
            or self.depart_at_us is not None
            or bool(self.migrate_at_us)
        )


def generate_lifecycles(
    n_tenants: int,
    interval_us: float,
    seed: int,
    arrive_window_intervals: float = 10.0,
    mean_lifetime_intervals: float = 40.0,
    min_lifetime_intervals: float = 5.0,
    keep_first: bool = True,
) -> list[TenantLifecycle]:
    """Draw a seeded churn process over ``n_tenants`` tenants.

    Each tenant's arrival is uniform in the arrival window and its
    lifetime exponential with the given mean (floored at the minimum),
    mirroring the short-lived-VM population of a consolidated platform.
    Draws use one spawned RNG stream per tenant index, so — like
    multi-tenant arrival streams — appending a tenant never perturbs an
    existing tenant's lifecycle.

    Args:
        n_tenants: Number of tenants to draw lifecycles for.
        interval_us: Monitoring interval (the window/lifetime unit).
        seed: Churn-process seed (independent of the run seed).
        arrive_window_intervals: Arrivals land uniformly in
            ``[0, window)`` intervals.
        mean_lifetime_intervals: Mean exponential lifetime.
        min_lifetime_intervals: Lifetime floor (avoids zero-length
            tenants).
        keep_first: Keep tenant 0 static (present for the whole run) so
            churn scenarios retain one always-on victim/observer tenant.
    """
    if n_tenants < 1:
        raise ServiceError("churn process: n_tenants must be >= 1")
    if interval_us <= 0:
        raise ServiceError("churn process: interval_us must be positive")
    if arrive_window_intervals < 0:
        raise ServiceError("churn process: arrive_window_intervals must be >= 0")
    if mean_lifetime_intervals <= 0:
        raise ServiceError("churn process: mean_lifetime_intervals must be positive")
    if min_lifetime_intervals < 0:
        raise ServiceError("churn process: min_lifetime_intervals must be >= 0")
    lifecycles: list[TenantLifecycle] = []
    for tid in range(n_tenants):
        if tid == 0 and keep_first:
            lifecycles.append(TenantLifecycle())
            continue
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(tid,))
        )
        arrive = float(rng.uniform(0.0, arrive_window_intervals * interval_us))
        lifetime = max(
            min_lifetime_intervals * interval_us,
            float(rng.exponential(mean_lifetime_intervals * interval_us)),
        )
        lifecycle = TenantLifecycle(
            arrive_at_us=arrive if arrive > 0 else None,
            depart_at_us=arrive + lifetime,
        )
        lifecycle.validate()
        lifecycles.append(lifecycle)
    return lifecycles


class ServiceWorkload(Protocol):
    """What the churn manager needs from a multi-tenant composition."""

    @property
    def tenant_count(self) -> int:
        """Number of composed tenants."""
        ...

    @property
    def lifecycles(self) -> Sequence[Optional[TenantLifecycle]]:
        """Per-tenant lifecycles, aligned with tenant ids."""
        ...

    def stop_tenant(self, tenant_id: int) -> None:
        """Stop the tenant's arrival generation (departure)."""
        ...

    def tenant_region(self, tenant_id: int) -> tuple[int, int]:
        """The tenant's half-open LBA region ``[lo, hi)``."""
        ...

    def tenant_warm_blocks(self, tenant_id: int) -> tuple[list[int], list[int]]:
        """The tenant's ``(clean, dirty)`` warm sets, region-shifted."""
        ...


class TenantAwareBalancer(Protocol):
    """The scheme-side churn hooks (every :class:`Scheme` has them)."""

    def on_tenant_arrived(self, tenant_id: int) -> None:
        """React to a tenant arriving mid-run."""
        ...

    def on_tenant_departed(self, tenant_id: int) -> None:
        """React to a tenant departing mid-run."""
        ...


class ChurnManager:
    """Schedules and executes a run's tenant-churn events.

    Args:
        sim: The simulator.
        controller: The cache datapath (reclaim/rewarm operations).
        workload: The multi-tenant composition (duck-typed; see
            :class:`ServiceWorkload`).
        balancer: Optional active scheme, notified via its
            ``on_tenant_arrived`` / ``on_tenant_departed`` hooks so
            capacity schemes can redistribute a departed share.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: CacheController,
        workload: ServiceWorkload,
        balancer: Optional[TenantAwareBalancer] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.workload = workload
        self.balancer = balancer
        self.events: list[TenantEvent] = []
        self.arrivals = 0
        self.departures = 0
        self.migrations = 0
        self.blocks_reclaimed = 0
        self.dirty_flushed = 0
        self.blocks_rewarmed = 0
        self._active: set[int] = set()
        self._departed: set[int] = set()
        self._started = False
        for tid in range(workload.tenant_count):
            lifecycle = workload.lifecycles[tid]
            if lifecycle is None or lifecycle.arrive_at_us is None:
                self._active.add(tid)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every lifecycle event (idempotent).

        Call before the workload binds: a same-time arrival's rewarm
        then executes before the tenant's first request is generated.
        """
        if self._started:
            return
        self._started = True
        now = self.sim.now
        for tid in range(self.workload.tenant_count):
            lifecycle = self.workload.lifecycles[tid]
            if lifecycle is None:
                continue
            lifecycle.validate()
            if lifecycle.arrive_at_us is not None:
                self.events.append(TenantEvent(lifecycle.arrive_at_us, tid, "arrive"))
                self.sim.schedule_call(
                    lifecycle.arrive_at_us - now, self._arrive, tid
                )
            for t in lifecycle.migrate_at_us:
                self.events.append(TenantEvent(t, tid, "migrate"))
                self.sim.schedule_call(t - now, self._migrate, tid)
            if lifecycle.depart_at_us is not None:
                self.events.append(TenantEvent(lifecycle.depart_at_us, tid, "depart"))
                self.sim.schedule_call(
                    lifecycle.depart_at_us - now, self._depart, tid
                )

    def is_active(self, tenant_id: int) -> bool:
        """Whether the tenant is currently present (arrived, not departed)."""
        return tenant_id in self._active

    # ------------------------------------------------------------------
    def _rewarm(self, tenant_id: int, include_dirty: bool) -> int:
        clean, dirty = self.workload.tenant_warm_blocks(tenant_id)
        rewarm = self.controller.rewarm_block
        count = 0
        for lba in clean:
            if rewarm(lba, tenant_id):
                count += 1
        if include_dirty:
            for lba in dirty:
                if rewarm(lba, tenant_id, dirty=True):
                    count += 1
        else:
            # after a reclaim the dirty data was flushed to the disk;
            # the new host rewarms clean copies only
            for lba in dirty:
                if rewarm(lba, tenant_id):
                    count += 1
        return count

    def _arrive(self, tenant_id: int) -> None:
        self.blocks_rewarmed += self._rewarm(tenant_id, include_dirty=True)
        self.arrivals += 1
        self._active.add(tenant_id)
        if self.balancer is not None:
            self.balancer.on_tenant_arrived(tenant_id)

    def _depart(self, tenant_id: int) -> None:
        self.workload.stop_tenant(tenant_id)
        lo, hi = self.workload.tenant_region(tenant_id)
        reclaimed, flushed = self.controller.reclaim_range(lo, hi)
        self.blocks_reclaimed += reclaimed
        self.dirty_flushed += flushed
        self.departures += 1
        self._active.discard(tenant_id)
        self._departed.add(tenant_id)
        if self.balancer is not None:
            self.balancer.on_tenant_departed(tenant_id)

    def _migrate(self, tenant_id: int) -> None:
        lo, hi = self.workload.tenant_region(tenant_id)
        reclaimed, flushed = self.controller.reclaim_range(lo, hi)
        self.blocks_reclaimed += reclaimed
        self.dirty_flushed += flushed
        self.blocks_rewarmed += self._rewarm(tenant_id, include_dirty=False)
        self.migrations += 1

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Deterministic churn counters (JSON-friendly)."""
        return {
            "arrivals": self.arrivals,
            "departures": self.departures,
            "migrations": self.migrations,
            "blocks_reclaimed": self.blocks_reclaimed,
            "dirty_flushed": self.dirty_flushed,
            "blocks_rewarmed": self.blocks_rewarmed,
            "departed": sorted(self._departed),
            "n_events": len(self.events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChurnManager(events={len(self.events)}, "
            f"active={sorted(self._active)})"
        )
