"""Tenant service layer: churn schedules and SLO tracking.

See :mod:`repro.service.churn` for mid-run tenant arrivals, departures,
and migrations (with cache-share reclamation and rewarm) and
:mod:`repro.service.slo` for per-tenant service-level objectives and
the periodic compliance monitor.
"""

from repro.service.churn import (
    ChurnManager,
    ServiceWorkload,
    TenantEvent,
    TenantLifecycle,
    generate_lifecycles,
)
from repro.service.slo import ServiceError, SloMonitor, SloSample, SloTarget

__all__ = [
    "ChurnManager",
    "ServiceWorkload",
    "TenantEvent",
    "TenantLifecycle",
    "generate_lifecycles",
    "ServiceError",
    "SloMonitor",
    "SloSample",
    "SloTarget",
]
