"""``repro lint`` — the simlint command line.

Exit codes: 0 clean (or baseline-clean), 1 violations (new violations
when a baseline is given), 2 usage / parse / baseline errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.simlint import baseline as baseline_mod
from repro.devtools.simlint.engine import LintError, lint_paths
from repro.devtools.simlint.registry import (
    get_rule,
    rule_codes,
    rule_descriptions,
)

__all__ = ["build_parser", "main"]

#: JSON output schema version (bump on breaking field changes).
JSON_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST invariant linter for the simulation core "
            "(rules: repro.devtools.simlint)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="ratchet against FILE: only violations beyond it fail",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE to current counts (shrink only "
        "unless new violations are also present)",
    )
    parser.add_argument(
        "--explain", metavar="CODE", help="print a rule's rationale and exit"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def _explain(code: str) -> int:
    try:
        cls = get_rule(code)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"{cls.code}: {cls.title}\n")
    print(cls.explanation)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        for code, title in rule_descriptions().items():
            print(f"{code}  {title}")
        return 0
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")

    try:
        violations = lint_paths([Path(p) for p in args.paths])
        baseline = (
            baseline_mod.load(Path(args.baseline)) if args.baseline else {}
        )
    except LintError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    # Without a baseline the ratchet fields stay empty in the JSON doc:
    # "new" means "beyond the baseline", not "every violation".
    result = (
        baseline_mod.compare(violations, baseline)
        if args.baseline
        else baseline_mod.BaselineResult()
    )
    failing = result.new if args.baseline else list(violations)

    if args.baseline and args.update_baseline:
        baseline_mod.write(
            Path(args.baseline), baseline_mod.baseline_counts(violations)
        )

    if args.json:
        doc = {
            "version": JSON_VERSION,
            "rules": list(rule_codes()),
            "violations": [v.to_dict() for v in violations],
            "count": len(violations),
            "baseline": args.baseline,
            "new": [v.to_dict() for v in result.new],
            "stale": dict(sorted(result.stale.items())),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for v in failing:
            print(v.render())
        if args.baseline:
            for key, headroom in sorted(result.stale.items()):
                print(
                    f"note: baseline entry {key} has {headroom} unused "
                    "slot(s); shrink with --update-baseline"
                )
        if failing:
            label = "new violation(s)" if args.baseline else "violation(s)"
            print(f"simlint: {len(failing)} {label}")
        else:
            suffix = " (baseline-clean)" if args.baseline else ""
            print(f"simlint: clean{suffix}")
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
