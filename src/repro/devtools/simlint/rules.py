"""Built-in simlint rules: the codebase's invariants, statically checked.

Every rule here guards something the test suite only catches *dynamically*
(bit-identical fingerprint diffs, hours later) or not at all.  Rules are
deliberately narrow: each one encodes a concrete invariant of this
reproduction — where randomness may come from, what the hot paths may
allocate, how schemes reach the registry — not generic style.  See
``--explain CODE`` or ``docs/ARCHITECTURE.md`` ("Static analysis layer")
for the rationale behind each.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.devtools.simlint.engine import FileContext, Rule, Violation
from repro.devtools.simlint.registry import register_rule

__all__ = [
    "WallClockRule",
    "SetIterationRule",
    "FloatTimeEqualityRule",
    "ConcreteImportRule",
    "RegisterSchemeConfigRule",
    "ConfigMutationRule",
    "HotPathRule",
    "PrintRule",
    "ProfilerImportRule",
    "TelemetryGuardRule",
]

#: The deterministic simulation core: everything here must be a pure
#: function of the scenario spec + seed.
_SIM_CORE = ("repro.sim", "repro.cache", "repro.schemes", "repro.workloads")

#: Modules that handle simulated-time floats (µs).
_TIME_SCOPE = _SIM_CORE + ("repro.core", "repro.devices", "repro.io")


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a ``Name`` / dotted ``Attribute`` chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register_rule
class WallClockRule(Rule):
    code = "SL001"
    title = "no wall-clock or ambient RNG in the simulation core"
    explanation = (
        "Modules under repro.sim / repro.cache / repro.schemes /\n"
        "repro.workloads must not import random, uuid, secrets, time, or\n"
        "datetime.  The simulation is a pure function of (scenario spec,\n"
        "seed): randomness flows through the per-tenant\n"
        "numpy.random.Generator streams handed out by repro.sim.rng, and\n"
        "the only clock is Simulator.now.  A single time.time() or\n"
        "random.random() in this core silently breaks the bit-identical\n"
        "fingerprints the golden suite diffs against."
    )

    _FORBIDDEN = {"random", "uuid", "secrets", "time", "datetime"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.module_in(_SIM_CORE) or ctx.module == "repro.sim.rng":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [(node.module or "").split(".")[0]]
            else:
                continue
            for name in names:
                if name in self._FORBIDDEN:
                    yield self.violation(
                        ctx,
                        node,
                        f"{name!r} imported in the simulation core; use "
                        "repro.sim.rng streams and Simulator.now instead",
                    )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_set_annotation(node: ast.expr) -> bool:
    base = node.value if isinstance(node, ast.Subscript) else node
    name = _terminal_name(base)
    return name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")


@register_rule
class SetIterationRule(Rule):
    code = "SL002"
    title = "no iteration over bare sets in the simulation core"
    explanation = (
        "Iterating a set yields hash order, which varies across Python\n"
        "builds and with PYTHONHASHSEED for str/object elements.  Where\n"
        "the loop body schedules events or accumulates stats, that order\n"
        "leaks into results and breaks determinism (the reason\n"
        "CacheController._flushing is membership-tested, never iterated).\n"
        "Iterate sorted(the_set) — or keep a list alongside the set when\n"
        "insertion order is the meaningful one."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.module_in(_TIME_SCOPE):
            return
        set_names: set[tuple[str, str]] = set()
        for node in ast.walk(ctx.tree):
            value: Optional[ast.expr] = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign):
                if _is_set_annotation(node.annotation):
                    targets = [node.target]
                    set_names.update(self._keys(targets))
                    continue
                value, targets = node.value, [node.target]
            if value is not None and _is_set_expr(value):
                set_names.update(self._keys(targets))
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if _is_set_expr(it) or self._key(it) in set_names:
                    yield self.violation(
                        ctx,
                        it,
                        "iteration over a bare set yields nondeterministic "
                        "order; iterate sorted(...) instead",
                    )

    @staticmethod
    def _key(node: ast.expr) -> Optional[tuple[str, str]]:
        if isinstance(node, ast.Name):
            return ("name", node.id)
        if isinstance(node, ast.Attribute):
            return ("attr", node.attr)
        return None

    @classmethod
    def _keys(cls, targets: Iterable[ast.expr]) -> Iterator[tuple[str, str]]:
        for target in targets:
            key = cls._key(target)
            if key is not None:
                yield key


@register_rule
class FloatTimeEqualityRule(Rule):
    code = "SL003"
    title = "no float == / != on simulated-time values"
    explanation = (
        "Simulated timestamps are float µs accumulated through repeated\n"
        "addition; two logically simultaneous events can differ in the\n"
        "last ulp, so exact equality on them is a latent determinism bug.\n"
        "Compare with <, <=, or an explicit tolerance — and where exact\n"
        "tie-breaking is genuinely intended (Event.__lt__ defers equal\n"
        "times to the scheduling sequence number), say so with a\n"
        "justified pragma."
    )

    _EXACT = {"time", "now"}
    _SUFFIXES = ("_time", "_us")

    def _time_like(self, node: ast.expr) -> bool:
        name = _terminal_name(node)
        if name is None:
            return False
        return name in self._EXACT or name.endswith(self._SUFFIXES)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.module_in(_TIME_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                # A string constant on either side rules out a float.
                if any(
                    isinstance(o, ast.Constant) and isinstance(o.value, str)
                    for o in (left, right)
                ):
                    continue
                if self._time_like(left) or self._time_like(right):
                    yield self.violation(
                        ctx,
                        node,
                        "exact float equality on a simulated-time value; "
                        "use ordering or an explicit tolerance",
                    )
                    break


@register_rule
class ConcreteImportRule(Rule):
    code = "SL004"
    title = "concrete scheme/workload classes resolve through registries"
    explanation = (
        "Scheme and workload implementations are reached by *name*\n"
        "through repro.schemes.registry and the workload table — that is\n"
        "what keeps the axis pluggable (PR 5).  Importing WbBaseline,\n"
        "SibController, LbicaController, the capacity schemes, or\n"
        "MultiTenantWorkload directly re-hardcodes the very if/elif\n"
        "chains the registries removed.  Dispatch on scheme.name (every\n"
        "Scheme declares one) or go through build_scheme(); only each\n"
        "class's own package surface re-exports it."
    )

    #: concrete class -> (defining module, extra modules allowed to import it)
    _CONCRETE: dict[str, tuple[str, tuple[str, ...]]] = {
        "WbBaseline": ("repro.baselines.wb", ("repro.baselines",)),
        "SibController": ("repro.baselines.sib", ("repro.baselines",)),
        "LbicaController": ("repro.core.lbica", ("repro.core",)),
        "StaticPartitionScheme": ("repro.schemes.partition", ("repro.schemes",)),
        "DynamicShareScheme": ("repro.schemes.dynshare", ("repro.schemes",)),
        "MultiTenantWorkload": (
            "repro.workloads.multi_tenant",
            # spec.py builds workloads from scenario specs and system.py
            # hosts the WORKLOADS table — the two registry surfaces.
            ("repro.workloads", "repro.workloads.spec", "repro.experiments.system"),
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.module.startswith("repro.") or ctx.module.startswith(
            "repro.devtools"
        ):
            return
        if ctx.module == "repro.schemes.registry":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                entry = self._CONCRETE.get(alias.name)
                if entry is None:
                    continue
                defining, extra = entry
                if ctx.module == defining or ctx.module in extra:
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"concrete class {alias.name!r} imported outside its "
                    f"registry surface; resolve through the registry or "
                    f"dispatch on .name",
                )


@register_rule
class RegisterSchemeConfigRule(Rule):
    code = "SL005"
    title = "every register_scheme call site declares config_cls"
    explanation = (
        "build_scheme() wires a scheme's config from\n"
        "SystemConfig.<config_field> based on the class's config_cls\n"
        "declaration; a registration without one is ambiguous — did the\n"
        "author forget the config plumbing, or is the scheme genuinely\n"
        "config-less?  Make it explicit: declare config_cls = None for\n"
        "config-less schemes, or the dataclass the scheme consumes."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        classes: dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for dec in node.decorator_list:
                    target = dec.func if isinstance(dec, ast.Call) else dec
                    if _terminal_name(target) == "register_scheme":
                        yield from self._check_class(ctx, node, node)
            elif (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == "register_scheme"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                cls = classes.get(node.args[0].id)
                if cls is not None:
                    yield from self._check_class(ctx, cls, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, site: ast.AST
    ) -> Iterator[Violation]:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "config_cls"
                for t in stmt.targets
            ):
                return
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "config_cls"
            ):
                return
        yield self.violation(
            ctx,
            site,
            f"scheme {cls.name!r} registered without declaring config_cls "
            "(use config_cls = None for config-less schemes)",
        )


@register_rule
class ConfigMutationRule(Rule):
    code = "SL006"
    title = "no SystemConfig attribute mutation after construction"
    explanation = (
        "A SystemConfig digest is part of every RunKey: the store and\n"
        "campaign layer assume the config an artifact was stamped with is\n"
        "the config the run actually used.  Mutating config attributes\n"
        "after system construction silently invalidates that digest (and\n"
        "any cached store hit).  Build a new config with\n"
        "dataclasses.replace() instead; only SystemConfig.__post_init__\n"
        "(repro.config itself) normalizes in place."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.module.startswith("repro.") or ctx.module == "repro.config":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets: list[ast.expr] = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if (isinstance(base, ast.Name) and base.id == "config") or (
                    isinstance(base, ast.Attribute) and base.attr == "config"
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"mutation of config attribute {target.attr!r} after "
                        "construction; use dataclasses.replace() to derive "
                        "a new config",
                    )


@register_rule
class HotPathRule(Rule):
    code = "SL007"
    title = "hot-path functions stay allocation-lean"
    explanation = (
        "The per-event dispatch chain (Simulator.run/step/schedule_call,\n"
        "CacheStore.lookup, DeviceQueue.push/pop_next/complete,\n"
        "CacheController._do_read/_do_write/_sync_done, Workload._arrive)\n"
        "runs millions of times per scenario; PR 3's profiling showed\n"
        "closure allocation and Event-object churn dominate it.  Inside\n"
        "these functions: no lambdas, no nested defs, and no bare\n"
        "self-discarding .schedule(...) calls — schedule_call() is the\n"
        "no-Event fast path when the handle is never used."
    )

    _HOT: frozenset[tuple[str, str]] = frozenset(
        {
            ("repro.sim.engine", "Simulator.run"),
            ("repro.sim.engine", "Simulator.step"),
            ("repro.sim.engine", "Simulator.schedule_call"),
            ("repro.cache.store", "CacheStore.lookup"),
            ("repro.io.device_queue", "DeviceQueue.push"),
            ("repro.io.device_queue", "DeviceQueue.pop_next"),
            ("repro.io.device_queue", "DeviceQueue.complete"),
            ("repro.cache.controller", "CacheController._do_read"),
            ("repro.cache.controller", "CacheController._do_write"),
            ("repro.cache.controller", "CacheController._sync_done"),
            ("repro.workloads.base", "Workload._arrive"),
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        hot_names = {
            qual for mod, qual in self._HOT if mod == ctx.module
        }
        if not hot_names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if f"{node.name}.{item.name}" in hot_names:
                    yield from self._check_body(ctx, item)

    def _check_body(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        for stmt in fn.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Lambda):
                    yield self.violation(
                        ctx, node, "lambda allocated in a hot-path function"
                    )
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield self.violation(
                        ctx,
                        node,
                        "nested function defined in a hot-path function",
                    )
                elif (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "schedule"
                ):
                    yield self.violation(
                        ctx,
                        node,
                        ".schedule(...) with the Event handle discarded in a "
                        "hot-path function; use schedule_call()",
                    )


@register_rule
class PrintRule(Rule):
    code = "SL008"
    title = "no stdout prints outside CLI modules"
    explanation = (
        "Library modules under repro.* are imported by the campaign\n"
        "runner, the benchmark suite, and tests that parse captured\n"
        "stdout (the CLI contract tests diff it).  A stray print() in a\n"
        "library module corrupts --json output and progress displays.\n"
        "Print only from CLI modules (*.cli, repro.__main__), from\n"
        "__main__ guard blocks, or with an explicit file= destination;\n"
        "gate verbose progress output behind a pragma-justified flag."
    )

    _ALLOWED_MODULES = ("repro.__main__", "repro.scenario.smoke")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.module.startswith("repro."):
            return
        if ctx.module in self._ALLOWED_MODULES or ctx.module.endswith(".cli"):
            return
        yield from self._walk(ctx, ctx.tree.body)

    def _walk(self, ctx: FileContext, body: list[ast.stmt]) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, ast.If) and self._is_main_guard(stmt.test):
                yield from self._walk(ctx, stmt.orelse)
                continue
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                    and not any(kw.arg == "file" for kw in node.keywords)
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "print() to stdout in a library module; print only "
                        "from CLI modules or pass an explicit file=",
                    )

    @staticmethod
    def _is_main_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == "__main__"
        )


@register_rule
class ProfilerImportRule(Rule):
    code = "SL009"
    title = "cProfile/pstats import only in the profiling harness"
    explanation = (
        "benchmarks/profile.py is the one sanctioned import site for\n"
        "cProfile and pstats.  A profiler import anywhere else means\n"
        "instrumentation is creeping into library or benchmark code: the\n"
        "hot paths must stay hook-free (cProfile's tracing slows this\n"
        "simulator's run loop ~4x, so any always-on profiling silently\n"
        "poisons BENCH numbers), and ad-hoc profiling scripts rot where\n"
        "the harness stays tested.  Profile through\n"
        "benchmarks/profile.py (or suite.py --profile DIR) instead."
    )

    _FORBIDDEN = {"cProfile", "pstats"}
    _SANCTIONED = "benchmarks.profile"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module == self._SANCTIONED:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [(node.module or "").split(".")[0]]
            else:
                continue
            for name in names:
                if name in self._FORBIDDEN:
                    yield self.violation(
                        ctx,
                        node,
                        f"{name!r} imported outside the profiling harness; "
                        "profile through benchmarks/profile.py",
                    )


@register_rule
class TelemetryGuardRule(Rule):
    code = "SL010"
    title = "telemetry emits in hot-path modules need an enabled-guard"
    explanation = (
        "The obs layer's contract is zero overhead when disabled: its\n"
        "hooks ride existing observer lists and interval ticks, never the\n"
        "per-event dispatch chain.  If a telemetry emit (a method call on\n"
        "a telemetry/hub/spans/metrics receiver) does land in one of\n"
        "SL007's hot-path modules, it must sit inside an if-guard that\n"
        "tests the telemetry object or an enabled flag — an unguarded\n"
        "emit charges every run, telemetry on or off, and silently taxes\n"
        "the 130k+ events/s budget the BENCH suite gates."
    )

    #: Receiver identifiers that mark a call as a telemetry emit.
    _RECEIVERS = frozenset({"telemetry", "hub", "spans", "metrics_hub", "obs"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        hot_modules = {mod for mod, _ in HotPathRule._HOT}
        if ctx.module not in hot_modules:
            return
        yield from self._scan(ctx, ctx.tree.body, guarded=False)

    def _scan(
        self, ctx: FileContext, body: list[ast.stmt], guarded: bool
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, ast.If):
                inner = guarded or self._is_guard(stmt.test)
                yield from self._check_stmt_exprs(ctx, stmt.test, guarded)
                yield from self._scan(ctx, stmt.body, inner)
                yield from self._scan(ctx, stmt.orelse, guarded)
                continue
            if isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    yield from self._scan(ctx, block, guarded)
                for handler in stmt.handlers:
                    yield from self._scan(ctx, handler.body, guarded)
                continue
            if isinstance(
                stmt,
                (
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.With,
                    ast.AsyncWith,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                yield from self._scan(ctx, stmt.body, guarded)
                orelse = getattr(stmt, "orelse", None)
                if orelse:
                    yield from self._scan(ctx, orelse, guarded)
                continue
            if not guarded:
                yield from self._check_stmt_exprs(ctx, stmt, guarded=False)

    def _check_stmt_exprs(
        self, ctx: FileContext, node: ast.AST, guarded: bool
    ) -> Iterator[Violation]:
        if guarded:
            return
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and self._is_telemetry_receiver(sub.func.value)
            ):
                yield self.violation(
                    ctx,
                    sub,
                    f"unguarded telemetry emit "
                    f"'.{sub.func.attr}(...)' in a hot-path module; wrap it "
                    "in an enabled-guard (e.g. `if telemetry is not None:`)",
                )

    def _is_telemetry_receiver(self, node: ast.expr) -> bool:
        """Whether any identifier in the receiver chain is telemetry-ish."""
        current: Optional[ast.expr] = node
        while current is not None:
            if isinstance(current, ast.Name):
                return current.id in self._RECEIVERS
            if isinstance(current, ast.Attribute):
                if current.attr in self._RECEIVERS:
                    return True
                current = current.value
                continue
            return False
        return False

    def _is_guard(self, test: ast.expr) -> bool:
        """Whether an ``if`` test mentions a telemetry object or enabled flag."""
        for node in ast.walk(test):
            name = _terminal_name(node) if isinstance(node, ast.expr) else None
            if name is None:
                continue
            if name in self._RECEIVERS or "enabled" in name:
                return True
        return False
