"""The simlint engine: file contexts, violations, pragmas, the driver.

The engine is rule-agnostic.  It parses each file once into a
:class:`FileContext` (AST + source lines + derived module name + pragma
table), hands the context to every registered rule, and filters the
collected :class:`Violation` records through per-line
``# simlint: ignore[CODE]`` pragmas.  The rules themselves live in
:mod:`repro.devtools.simlint.rules`; the registry that holds them in
:mod:`repro.devtools.simlint.registry`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Optional, Sequence

__all__ = [
    "FileContext",
    "LintError",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "module_name_for",
]

#: ``# simlint: ignore[SL001]``, ``ignore[SL001,SL008]``, or the blanket
#: ``ignore[*]``; trailing free text after the bracket is a
#: justification and is encouraged.
_PRAGMA_RE = re.compile(r"#\s*simlint:\s*ignore\[([A-Z0-9_*,\s]+)\]")


class LintError(Exception):
    """A file could not be linted (unreadable or unparsable)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit: ``CODE path:line:col message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The human-readable one-liner."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """The JSON-output record (stable field set)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str  #: repo-relative POSIX path (display + baseline key)
    module: str  #: dotted module name, e.g. ``repro.sim.engine``
    source: str
    tree: ast.Module
    #: line number -> set of ignored codes ({"*"} means all codes)
    ignores: dict[int, set[str]] = field(default_factory=dict)

    def module_in(self, prefixes: Iterable[str]) -> bool:
        """Whether :attr:`module` is, or is inside, any of ``prefixes``."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


class Rule:
    """Base class for simlint rules.

    Subclasses declare a unique ``code`` (``SLnnn``), a one-line
    ``title`` (shown by ``--list-rules``), and a longer ``explanation``
    (shown by ``--explain CODE``), then implement :meth:`check` as a
    generator of :class:`Violation` records over a file's AST.
    """

    code: ClassVar[str] = ""
    title: ClassVar[str] = ""
    explanation: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        """A :class:`Violation` anchored at ``node``."""
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


def _parse_pragmas(source: str) -> dict[int, set[str]]:
    ignores: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
        if codes:
            ignores.setdefault(lineno, set()).update(codes)
    return ignores


def module_name_for(path: Path, root: Path) -> str:
    """The dotted module name of ``path`` relative to ``root``.

    A leading ``src/`` layout component is dropped, so
    ``<root>/src/repro/sim/engine.py`` maps to ``repro.sim.engine`` and a
    package ``__init__.py`` maps to the package itself.  Files outside
    ``root`` (or non-``.py`` files) map to a name derived from the bare
    filename — good enough for fixture snippets, which pass an explicit
    module name instead.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _suppressed(violation: Violation, ignores: dict[int, set[str]]) -> bool:
    codes = ignores.get(violation.line)
    if not codes:
        return False
    return "*" in codes or violation.code in codes


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str = "",
    rules: Optional[Sequence[Rule]] = None,
) -> list[Violation]:
    """Lint one source string against ``rules`` (default: all registered).

    ``module`` sets the dotted module name rules use for scoping; fixture
    tests pass e.g. ``module="repro.sim.fixture"`` to place a snippet
    inside a rule's scope without a real file on disk.

    Raises:
        LintError: If ``source`` is not valid Python.
    """
    if rules is None:
        from repro.devtools.simlint.registry import all_rules

        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: {exc.msg} (line {exc.lineno})") from exc
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        ignores=_parse_pragmas(source),
    )
    found: list[Violation] = []
    for rule in rules:
        for violation in rule.check(ctx):
            if not _suppressed(violation, ctx.ignores):
                found.append(violation)
    return sorted(found)


def _collect_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise LintError(f"{path}: not a Python file or directory")
    return files


def lint_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Violation]:
    """Lint files and directories (recursively), sorted by location.

    ``root`` anchors both the display paths and the derived module
    names; it defaults to the current working directory so that running
    ``repro lint src/repro`` from the repo root yields repo-relative
    paths (the form the committed baseline uses).
    """
    root = Path.cwd() if root is None else root
    found: list[Violation] = []
    for file in _collect_files([Path(p) for p in paths]):
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{file}: {exc}") from exc
        try:
            rel = file.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file.as_posix()
        found.extend(
            lint_source(
                source,
                path=rel,
                module=module_name_for(file, root),
                rules=rules,
            )
        )
    return sorted(found)
