"""The simlint baseline: a ratchet that only tightens.

A baseline file maps ``"path::CODE"`` keys to accepted violation counts
— the debt ledger for rules introduced after the code they flag.  The
comparison is one-way: a file/rule pair exceeding its baselined count is
a **new** violation and fails the run, while a pair now *below* its
count is **stale** headroom that ``--update-baseline`` shrinks away (and
plain runs merely report).  Counts never grow except by a human editing
the committed file, which is exactly the review conversation the ratchet
exists to force.

Keying on counts rather than line numbers keeps the baseline stable
under unrelated edits that shift code up or down a file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.simlint.engine import LintError, Violation

__all__ = ["BaselineResult", "baseline_counts", "compare", "load", "write"]


def baseline_counts(violations: Iterable[Violation]) -> dict[str, int]:
    """The ``{"path::CODE": count}`` table for ``violations``."""
    counts: dict[str, int] = {}
    for v in violations:
        key = f"{v.path}::{v.code}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def load(path: Path) -> dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline.

    Raises:
        LintError: On unreadable, unparsable, or ill-typed content — a
            corrupt ratchet must never silently pass as empty.
    """
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise LintError(f"baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0 for k, v in data.items()
    ):
        raise LintError(
            f"baseline {path}: expected an object of positive integer counts"
        )
    return data


def write(path: Path, counts: dict[str, int]) -> None:
    """Write ``counts`` as a sorted, human-diffable baseline file."""
    path.write_text(
        json.dumps(counts, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@dataclass
class BaselineResult:
    """The outcome of checking violations against a baseline."""

    #: Violations beyond the baselined count for their file/rule pair,
    #: oldest-line first — the ones that fail the run.
    new: list[Violation] = field(default_factory=list)
    #: ``path::CODE`` keys whose current count is below the baseline
    #: (mapped to the unused headroom); shrink with --update-baseline.
    stale: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the ratchet holds (no new violations)."""
        return not self.new


def compare(
    violations: Sequence[Violation], baseline: dict[str, int]
) -> BaselineResult:
    """Check ``violations`` against ``baseline`` (the ratchet).

    For each ``path::CODE`` pair the first ``baseline[key]`` violations
    (in line order) are accepted; every one past that is new.  Baseline
    keys with unused headroom — including pairs that no longer occur at
    all — are reported stale.
    """
    result = BaselineResult()
    seen: dict[str, int] = {}
    for v in sorted(violations):
        key = f"{v.path}::{v.code}"
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > baseline.get(key, 0):
            result.new.append(v)
    for key, allowed in baseline.items():
        used = min(seen.get(key, 0), allowed)
        if used < allowed:
            result.stale[key] = allowed - used
    return result
