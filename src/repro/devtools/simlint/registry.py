"""The simlint rule registry: invariant checks by code.

Mirrors :mod:`repro.schemes.registry`: a flat dict of registered rule
classes, lazily populated with the built-ins on first query, with a
``register_rule`` decorator for third-party rules.  Adding a rule is one
class plus one call::

    from repro.devtools.simlint import Rule, Violation, register_rule

    @register_rule
    class NoTodoRule(Rule):
        code = "SL900"
        title = "no TODO comments in sim code"
        explanation = "Why the invariant matters, shown by --explain."

        def check(self, ctx):
            ...yield Violation(...)

after which ``repro lint`` runs it and ``--explain SL900`` documents it.
"""

from __future__ import annotations

import importlib
from typing import Optional

from repro.devtools.simlint.engine import Rule

__all__ = [
    "register_rule",
    "get_rule",
    "rule_codes",
    "rule_descriptions",
    "all_rules",
    "unknown_rule_error",
]

#: Registered rule classes by code.  Treat as read-only; use
#: :func:`register_rule` to add entries.  Query order is by code.
_REGISTRY: dict[str, type[Rule]] = {}

#: Modules whose import registers the built-in rules.  Imported lazily on
#: the first query (same pattern as the scheme registry) so that merely
#: importing :mod:`repro.devtools.simlint` stays cheap and so external
#: rule packages can register before or after the built-ins load.
_BUILTIN_MODULES = ("repro.devtools.simlint.rules",)
_builtins_state = "unloaded"  # -> "loading" -> "loaded"


def _ensure_builtins() -> None:
    global _builtins_state
    if _builtins_state != "unloaded":
        # "loading" guards reentrancy (a builtin module querying the
        # registry mid-import); "loaded" is the steady state.
        return
    _builtins_state = "loading"
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        # A failed builtin import must surface again on the next query,
        # not silently leave a partial registry behind.
        _builtins_state = "unloaded"
        raise
    _builtins_state = "loaded"


def register_rule(cls: type[Rule], *, overwrite: bool = False) -> type[Rule]:
    """Register a :class:`Rule` subclass under its declared ``code``.

    Usable as a decorator.  Duplicate codes are rejected (pass
    ``overwrite=True`` to deliberately replace an entry).

    Returns:
        ``cls``, unchanged.
    """
    if not isinstance(cls, type) or not issubclass(cls, Rule):
        raise TypeError(f"register_rule expects a Rule subclass, got {cls!r}")
    code = cls.code
    if not code or not isinstance(code, str):
        raise ValueError(f"{cls.__name__}: rule code must be a non-empty string")
    if not cls.title or not isinstance(cls.title, str):
        raise ValueError(f"{cls.__name__}: rule title must be a non-empty string")
    if code in _REGISTRY and not overwrite:
        raise ValueError(
            f"rule {code!r} is already registered "
            f"(by {_REGISTRY[code].__name__}); pass overwrite=True to replace"
        )
    _REGISTRY[code] = cls
    return cls


def unknown_rule_error(code: object) -> ValueError:
    """The canonical unknown-rule error, naming the registry source."""
    return ValueError(
        f"unknown rule {code!r}; registered rules "
        f"(repro.devtools.simlint.registry): {', '.join(rule_codes())}"
    )


def get_rule(code: str) -> type[Rule]:
    """The registered rule class for ``code``.

    Raises:
        ValueError: Naming the registry and listing every registered
            rule — the error an unknown ``--explain`` argument surfaces.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise unknown_rule_error(code) from None


def _ordered() -> list[tuple[str, type[Rule]]]:
    _ensure_builtins()
    return sorted(_REGISTRY.items())


def rule_codes() -> tuple[str, ...]:
    """Every registered rule code, sorted."""
    return tuple(code for code, _ in _ordered())


def rule_descriptions() -> dict[str, str]:
    """Every registered rule with its one-line title."""
    return {code: cls.title for code, cls in _ordered()}


def all_rules() -> tuple[Rule, ...]:
    """One instance of every registered rule, in code order."""
    return tuple(cls() for _, cls in _ordered())


def _registered(code: str) -> Optional[type[Rule]]:
    """Internal: the entry for ``code`` or ``None`` (tests and tooling)."""
    return _REGISTRY.get(code)
