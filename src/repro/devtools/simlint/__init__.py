"""simlint: the AST invariant linter behind ``repro lint``.

The golden-fingerprint suite catches determinism breakage *dynamically*
— hours later, and only for scenarios it happens to run.  simlint
enforces the invariants statically, at lint time:

- :mod:`repro.devtools.simlint.engine` — :class:`FileContext`,
  :class:`Violation`, ``# simlint: ignore[CODE]`` pragmas, the driver;
- :mod:`repro.devtools.simlint.registry` — ``register_rule`` and rule
  lookup (the :mod:`repro.schemes.registry` pattern applied to rules);
- :mod:`repro.devtools.simlint.rules` — the built-in SL001–SL008 rules;
- :mod:`repro.devtools.simlint.baseline` — the count-based ratchet
  behind ``--baseline`` / ``--update-baseline``;
- :mod:`repro.devtools.simlint.cli` — ``repro lint``.

Quickstart::

    from repro.devtools.simlint import lint_source

    for v in lint_source("import random\\n", module="repro.sim.fixture"):
        print(v.render())           # SL001 ...
"""

from repro.devtools.simlint.baseline import BaselineResult, compare
from repro.devtools.simlint.engine import (
    FileContext,
    LintError,
    Rule,
    Violation,
    lint_paths,
    lint_source,
)
from repro.devtools.simlint.registry import (
    get_rule,
    register_rule,
    rule_codes,
    rule_descriptions,
)

__all__ = [
    "BaselineResult",
    "FileContext",
    "LintError",
    "Rule",
    "Violation",
    "compare",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "rule_codes",
    "rule_descriptions",
]
