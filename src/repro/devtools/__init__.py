"""Developer tooling for the reproduction.

Nothing under :mod:`repro.devtools` is imported by the simulation core;
these packages exist to *check* the core, not to run it.  Currently:

- :mod:`repro.devtools.simlint` — the AST invariant linter behind
  ``repro lint`` (see ``docs/ARCHITECTURE.md``, "Static analysis
  layer").
"""
