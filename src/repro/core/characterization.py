"""Workload characterization from the in-queue request mix (Section III-B).

Given the R/W/P/E composition of the SSD cache queue (from the blktrace
substrate), place the running workload into one of the paper's groups:

- **Group 1** (R + P dominant): random read — hits served by the cache,
  misses promoted.
- **Group 2** (R + W dominant): mixed read-write.
- **Group 3** (W + E dominant): write-intensive; within the group, a
  high W:E ratio means random write, otherwise sequential write.
- **Group 4** (P dominant): sequential read — everything misses and gets
  promoted.
- The remaining pairings (R+E, W+P) "may not occur" per the paper; they
  map to :attr:`WorkloadGroup.UNKNOWN` and LBICA leaves the current
  policy in place.

Classification uses the paper's *majority* notion: rank the four types by
share and take the top two, with a P-dominance check first for Group 4.
The thresholds are configurable so the ablation bench can stress them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum

from repro.io.request import OpTag

__all__ = ["WorkloadGroup", "CharacterizerConfig", "WorkloadCharacterizer", "QueueMix"]


class WorkloadGroup(str, Enum):
    """The paper's characterization groups."""

    RANDOM_READ = "group1_random_read"
    MIXED_RW = "group2_mixed_rw"
    RANDOM_WRITE = "group3_random_write"
    SEQUENTIAL_WRITE = "group3_sequential_write"
    SEQUENTIAL_READ = "group4_sequential_read"
    UNKNOWN = "unknown"

    @property
    def is_write_intensive(self) -> bool:
        """Whether the group is a Group-3 (W+E) variant."""
        return self in (WorkloadGroup.RANDOM_WRITE, WorkloadGroup.SEQUENTIAL_WRITE)


@dataclass(frozen=True)
class QueueMix:
    """Normalized R/W/P/E shares of a queue snapshot."""

    r: float
    w: float
    p: float
    e: float
    total: int

    @classmethod
    def from_counts(cls, counts: Counter) -> "QueueMix":
        """Build from a tag counter (as returned by the blktrace substrate)."""
        total = sum(counts.values())
        if total == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            r=counts.get(OpTag.READ, 0) / total,
            w=counts.get(OpTag.WRITE, 0) / total,
            p=counts.get(OpTag.PROMOTE, 0) / total,
            e=counts.get(OpTag.EVICT, 0) / total,
            total=total,
        )

    def top_two(self) -> tuple[str, str]:
        """The two dominant tags, by share (deterministic tie-break R<W<P<E)."""
        ranked = sorted(
            (("R", self.r), ("W", self.w), ("P", self.p), ("E", self.e)),
            key=lambda kv: -kv[1],
        )
        return ranked[0][0], ranked[1][0]

    def as_dict(self) -> dict[str, float]:
        """Shares keyed by tag letter."""
        return {"R": self.r, "W": self.w, "P": self.p, "E": self.e}


@dataclass
class CharacterizerConfig:
    """Thresholds of the classifier.

    Attributes:
        min_queue_ops: Snapshots smaller than this are too noisy to
            classify (returns UNKNOWN).
        p_dominance: P share above which the workload is Group 4
            (sequential read) regardless of the runner-up.
        random_write_ratio: Within Group 3, ``W / (W + E)`` above this
            means random write, below sequential write (the paper:
            "in case of higher ratio of W compared to E ... random
            write").
        min_secondary_share: A runner-up tag below this share is not
            "major"; the mix degenerates to its dominant tag alone
            (R → Group 1, P → Group 4, W → Group 3 random write).  The
            paper's pairings all have both members well above this.
        write_dominance_ratio: A (W, R) pairing with
            ``W / (W + R)`` above this is write-intensive, not Group 2 —
            Group 2 is defined by written data being *read back*
            ("accessed by the future requests"), so a ~95%-write mix with
            a sliver of reads is a write storm.  The paper's Group-2
            examples sit at ratios ≤ 0.84 (mail@23: 0.835, web@1: 0.78).
    """

    min_queue_ops: int = 8
    p_dominance: float = 0.70
    random_write_ratio: float = 0.50
    min_secondary_share: float = 0.04
    write_dominance_ratio: float = 0.85

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.min_queue_ops < 0:
            raise ValueError("min_queue_ops must be non-negative")
        if not 0.0 < self.p_dominance <= 1.0:
            raise ValueError("p_dominance must be in (0, 1]")
        if not 0.0 <= self.random_write_ratio <= 1.0:
            raise ValueError("random_write_ratio must be in [0, 1]")
        if not 0.0 <= self.min_secondary_share <= 0.5:
            raise ValueError("min_secondary_share must be in [0, 0.5]")
        if not 0.5 <= self.write_dominance_ratio <= 1.0:
            raise ValueError("write_dominance_ratio must be in [0.5, 1]")


_PAIR_TO_GROUP: dict[frozenset[str], WorkloadGroup] = {
    frozenset(("R", "P")): WorkloadGroup.RANDOM_READ,
    frozenset(("R", "W")): WorkloadGroup.MIXED_RW,
    # W+E resolved to random vs sequential write in classify()
}


class WorkloadCharacterizer:
    """Maps queue snapshots to :class:`WorkloadGroup` labels."""

    def __init__(self, config: CharacterizerConfig | None = None) -> None:
        self.config = config or CharacterizerConfig()
        self.config.validate()

    def classify_counts(self, counts: Counter) -> WorkloadGroup:
        """Classify a raw tag counter."""
        return self.classify(QueueMix.from_counts(counts))

    def classify(self, mix: QueueMix) -> WorkloadGroup:
        """Classify a normalized mix (see module docstring for the rules)."""
        cfg = self.config
        if mix.total < cfg.min_queue_ops:
            return WorkloadGroup.UNKNOWN
        if mix.p >= cfg.p_dominance:
            return WorkloadGroup.SEQUENTIAL_READ
        first, second = mix.top_two()
        shares = mix.as_dict()
        if shares[second] < cfg.min_secondary_share:
            # Degenerate mix: one tag dominates outright.
            return {
                "R": WorkloadGroup.RANDOM_READ,
                "P": WorkloadGroup.SEQUENTIAL_READ,
                "W": WorkloadGroup.RANDOM_WRITE,
                "E": WorkloadGroup.UNKNOWN,
            }[first]
        pair = frozenset((first, second))
        if pair == frozenset(("W", "E")):
            w_ratio = mix.w / (mix.w + mix.e) if (mix.w + mix.e) > 0 else 1.0
            if w_ratio > cfg.random_write_ratio:
                return WorkloadGroup.RANDOM_WRITE
            return WorkloadGroup.SEQUENTIAL_WRITE
        if pair == frozenset(("R", "W")):
            rw = mix.w / (mix.w + mix.r) if (mix.w + mix.r) > 0 else 0.0
            if rw > cfg.write_dominance_ratio:
                # Write-dominated with only a sliver of reads: a write
                # storm, not a mixed read-write workload.
                return WorkloadGroup.RANDOM_WRITE
        group = _PAIR_TO_GROUP.get(pair)
        if group is not None:
            return group
        # R+E and W+P: "may not occur" per the paper — leave unclassified.
        return WorkloadGroup.UNKNOWN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkloadCharacterizer({self.config})"
