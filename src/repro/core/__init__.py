"""LBICA — the paper's contribution.

The three procedures of Fig. 2, plus the controller that runs them
periodically:

1. :mod:`repro.core.bottleneck` — burst detection via Eq. 1
   (``cache_Qtime > disk_Qtime``).
2. :mod:`repro.core.characterization` — classify the running workload
   from the R/W/P/E mix of the SSD queue (Groups 1–4 of Section III-B).
3. :mod:`repro.core.policy_table` + :mod:`repro.core.balancer` — assign
   the group's write policy (Section III-C) and, for Group 3, bypass the
   over-threshold tail of the SSD queue to the disk subsystem.
4. :mod:`repro.core.lbica` — :class:`~repro.core.lbica.LbicaController`,
   the periodic detect → characterize → balance loop, with a decision log
   that regenerates Fig. 6.
"""

from repro.core.balancer import TailBypassBalancer
from repro.core.bottleneck import BottleneckDetector, BottleneckReading
from repro.core.characterization import (
    CharacterizerConfig,
    WorkloadCharacterizer,
    WorkloadGroup,
)
from repro.core.lbica import LbicaConfig, LbicaController, LbicaDecision
from repro.core.policy_table import PolicyAction, default_policy_table

__all__ = [
    "BottleneckDetector",
    "BottleneckReading",
    "WorkloadCharacterizer",
    "WorkloadGroup",
    "CharacterizerConfig",
    "PolicyAction",
    "default_policy_table",
    "TailBypassBalancer",
    "LbicaController",
    "LbicaConfig",
    "LbicaDecision",
]
