"""Group-3 tail bypass (Section III-C, rule 3).

For write-intensive bursts LBICA keeps the WB policy but sheds the part
of the SSD queue that sits *beyond the bottleneck threshold*: requests
whose estimated queue position would make them wait longer than the disk
subsystem's current queue time are redirected to the disk, where they
complete sooner.  The head of the queue — everything below the threshold
— keeps full cache performance.

Unlike SIB, no per-request latency estimation pass is needed: the
threshold position follows directly from Eq. 1 quantities
(``disk_Qtime / ssdLatency``), and only the tail beyond it is touched.
That positional selection is what eliminates SIB's per-request selection
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.controller import CacheController
from repro.devices.base import StorageDevice

__all__ = ["TailBypassBalancer", "BypassEvent"]


@dataclass(frozen=True)
class BypassEvent:
    """One rebalancing action (for logs and tests)."""

    time: float
    threshold_ops: int
    candidates: int
    bypassed: int


class TailBypassBalancer:
    """Moves the over-threshold SSD queue tail to the disk subsystem.

    Args:
        controller: The cache datapath (performs the actual redirection
            and keeps metadata consistent).
        ssd: The cache device whose queue is trimmed.
        hdd: The disk device receiving bypassed requests.
        max_bypass_per_round: Safety bound on ops moved per invocation.
    """

    def __init__(
        self,
        controller: CacheController,
        ssd: StorageDevice,
        hdd: StorageDevice,
        max_bypass_per_round: int = 64,
    ) -> None:
        if max_bypass_per_round <= 0:
            raise ValueError("max_bypass_per_round must be positive")
        self.controller = controller
        self.ssd = ssd
        self.hdd = hdd
        self.max_bypass_per_round = max_bypass_per_round
        self.events: list[BypassEvent] = []

    def threshold_ops(self) -> int:
        """Queue positions the SSD can serve within the disk's queue time.

        An op at position ``k`` waits ≈ ``k × ssdLatency``; positions
        beyond ``disk_Qtime / ssdLatency`` would be served faster by the
        disk subsystem, so they are bypass candidates.
        """
        ssd_lat = max(self.ssd.avg_latency, 1e-9)
        return max(int(self.hdd.queue_time() / ssd_lat), 1)

    def rebalance(self, now: float) -> BypassEvent:
        """Bypass the tail beyond the threshold; returns the action record."""
        threshold = self.threshold_ops()
        pending = len(self.ssd.queue.pending)
        candidates = max(pending - threshold, 0)
        to_move = min(candidates, self.max_bypass_per_round)
        stolen = self.ssd.queue.steal_tail(
            to_move, now, predicate=self.controller.op_redirectable
        )
        for op in stolen:
            self.controller.redirect_to_disk(op)
        event = BypassEvent(
            time=now,
            threshold_ops=threshold,
            candidates=candidates,
            bypassed=len(stolen),
        )
        self.events.append(event)
        return event

    @property
    def total_bypassed(self) -> int:
        """Ops moved to the disk over the balancer's lifetime."""
        return sum(e.bypassed for e in self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TailBypassBalancer(events={len(self.events)}, moved={self.total_bypassed})"
