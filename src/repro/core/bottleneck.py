"""Bottleneck detection (Section III-A, Eq. 1).

LBICA flags the I/O cache as the performance bottleneck when the maximum
queue time of the cache exceeds that of the disk subsystem:

    ``cache_Qtime = ssdQSize × ssdLatency``
    ``disk_Qtime  = hddQSize × hddLatency``

The detector adds two practical knobs the paper implies but does not
spell out:

- ``margin`` — the cache queue time must exceed the disk's by this factor
  (1.0 reproduces the paper's strict inequality);
- ``min_cache_qtime_us`` — an absolute floor so that a near-idle system
  (three requests vs. two) is not declared a burst.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BottleneckReading", "BottleneckDetector"]


@dataclass(frozen=True)
class BottleneckReading:
    """One detector evaluation."""

    time: float
    cache_qtime: float
    disk_qtime: float
    is_bottleneck: bool

    @property
    def imbalance(self) -> float:
        """``cache_Qtime / disk_Qtime`` (∞-safe: 0 disk time → large)."""
        if self.disk_qtime <= 0.0:
            return float("inf") if self.cache_qtime > 0 else 1.0
        return self.cache_qtime / self.disk_qtime


class BottleneckDetector:
    """Eq. 1 burst detector with margin and floor.

    Args:
        margin: Required ratio ``cache_Qtime / disk_Qtime`` (≥ 1.0).
        min_cache_qtime_us: Absolute cache-queue-time floor below which
            no burst is ever declared.
    """

    def __init__(self, margin: float = 1.0, min_cache_qtime_us: float = 2000.0) -> None:
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        if min_cache_qtime_us < 0.0:
            raise ValueError("min_cache_qtime_us must be non-negative")
        self.margin = margin
        self.min_cache_qtime_us = min_cache_qtime_us
        self.readings: list[BottleneckReading] = []

    def evaluate(
        self, time: float, cache_qtime: float, disk_qtime: float
    ) -> BottleneckReading:
        """Evaluate Eq. 1 at ``time`` and log the reading."""
        if cache_qtime < 0 or disk_qtime < 0:
            raise ValueError("queue times must be non-negative")
        is_bottleneck = (
            cache_qtime >= self.min_cache_qtime_us
            and cache_qtime > disk_qtime * self.margin
        )
        reading = BottleneckReading(time, cache_qtime, disk_qtime, is_bottleneck)
        self.readings.append(reading)
        return reading

    @property
    def burst_count(self) -> int:
        """Number of readings that flagged the cache as bottleneck."""
        return sum(1 for r in self.readings if r.is_bottleneck)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BottleneckDetector(margin={self.margin}, "
            f"readings={len(self.readings)}, bursts={self.burst_count})"
        )
