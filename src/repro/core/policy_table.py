"""The group → write-policy decision table (Section III-C).

========================  ==========  ===========================
Group                     Policy      Extra action
========================  ==========  ===========================
1 — random read           **WO**      stop promoting read misses
2 — mixed read-write      **RO**      writes bypass to the disk
3 — write-intensive       **WB**      bypass the SSD queue tail
4 — sequential read       **WB**      nothing (disk serves the scan)
unknown                   (keep)      nothing
========================  ==========  ===========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.write_policy import WritePolicy
from repro.core.characterization import WorkloadGroup

__all__ = ["PolicyAction", "default_policy_table"]


@dataclass(frozen=True)
class PolicyAction:
    """What LBICA does for one workload group.

    Attributes:
        policy: Write policy to assign, or ``None`` to keep the current
            one (UNKNOWN group).
        tail_bypass: Whether to bypass the over-threshold tail of the SSD
            queue to the disk subsystem (Group 3).
        note: Short rationale string (from the paper) for logs/reports.
    """

    policy: Optional[WritePolicy]
    tail_bypass: bool
    note: str


def default_policy_table() -> dict[WorkloadGroup, PolicyAction]:
    """The paper's Section III-C assignment."""
    return {
        WorkloadGroup.RANDOM_READ: PolicyAction(
            WritePolicy.WO,
            tail_bypass=False,
            note="serve hits from cache; stop promoting read misses",
        ),
        WorkloadGroup.MIXED_RW: PolicyAction(
            WritePolicy.RO,
            tail_bypass=False,
            note="reads keep cache service; writes bypass to disk",
        ),
        WorkloadGroup.RANDOM_WRITE: PolicyAction(
            WritePolicy.WB,
            tail_bypass=True,
            note="keep WB for head of queue; bypass over-threshold tail",
        ),
        WorkloadGroup.SEQUENTIAL_WRITE: PolicyAction(
            WritePolicy.WB,
            tail_bypass=True,
            note="keep WB for head of queue; bypass over-threshold tail",
        ),
        WorkloadGroup.SEQUENTIAL_READ: PolicyAction(
            WritePolicy.WB,
            tail_bypass=False,
            note="disk serves the scan; cache never bottlenecks",
        ),
        WorkloadGroup.UNKNOWN: PolicyAction(
            None,
            tail_bypass=False,
            note="unrecognized mix; keep current policy",
        ),
    }
