"""The LBICA controller: the periodic detect → characterize → balance loop.

Ties the three procedures of Fig. 2 together on the simulator:

1. every ``decision_interval_us``, read the live Eq. 1 queue times off
   the devices (the iostat substrate);
2. when the cache is the bottleneck, snapshot the SSD queue's R/W/P/E
   mix (the blktrace substrate) and classify it into a workload group;
3. assign the group's write policy, and for Group 3 run the tail-bypass
   balancer.

Every evaluation is logged as an :class:`LbicaDecision`; the Fig. 6
experiment renders this log directly (burst markers, detected groups,
policy annotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.controller import CacheController
from repro.cache.write_policy import WritePolicy
from repro.core.balancer import TailBypassBalancer
from repro.core.bottleneck import BottleneckDetector
from repro.core.characterization import (
    CharacterizerConfig,
    QueueMix,
    WorkloadCharacterizer,
    WorkloadGroup,
)
from repro.core.policy_table import PolicyAction, default_policy_table
from repro.devices.base import StorageDevice
from repro.io.request import OpTag
from repro.schemes.base import Scheme
from repro.schemes.registry import register_scheme
from repro.trace.blktrace import BlkTracer

__all__ = ["LbicaConfig", "LbicaDecision", "LbicaController"]


@dataclass
class LbicaConfig:
    """LBICA tuning.

    Attributes:
        decision_interval_us: Period of the control loop (the paper runs
            it at the monitoring interval).
        margin: Bottleneck margin for Eq. 1 (see
            :class:`~repro.core.bottleneck.BottleneckDetector`).
        min_cache_qtime_us: Absolute burst floor.
        characterizer: Classifier thresholds.
        max_bypass_per_round: Group-3 tail-bypass bound per tick.
        revert_after_quiet: If set, restore WB after this many consecutive
            non-burst evaluations (the paper keeps the assigned policy;
            this knob exists for the ablation study).
        confirm_ticks: A policy is assigned only after the same group has
            been classified on this many consecutive burst evaluations —
            hysteresis against one noisy queue snapshot flapping the
            policy.  Because an unaddressed bottleneck keeps re-detecting
            every interval, confirmation delays a real assignment by at
            most ``confirm_ticks - 1`` intervals.
        require_rising: Only change policy while the cache queue time is
            still *growing*.  After a policy switch the old queue drains
            for several intervals; during that drain the arrival mix
            reflects the new policy's routing (e.g. only reads reach the
            cache under RO) and would otherwise be misread as a new
            workload.  A shrinking bottleneck needs no rebalancing.
            Group-3 tail bypass is exempt: it is per-tick relief, not a
            policy change.
        use_window_mix: Characterize from the interval-accumulated queue
            mix (robust) instead of the instantaneous snapshot.
    """

    decision_interval_us: float = 50_000.0
    margin: float = 1.0
    min_cache_qtime_us: float = 80_000.0
    characterizer: CharacterizerConfig = field(default_factory=CharacterizerConfig)
    max_bypass_per_round: int = 64
    revert_after_quiet: Optional[int] = None
    confirm_ticks: int = 2
    require_rising: bool = True
    use_window_mix: bool = True

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.decision_interval_us <= 0:
            raise ValueError("decision_interval_us must be positive")
        if self.revert_after_quiet is not None and self.revert_after_quiet <= 0:
            raise ValueError("revert_after_quiet must be positive when set")
        if self.confirm_ticks < 1:
            raise ValueError("confirm_ticks must be >= 1")
        self.characterizer.validate()


@dataclass(frozen=True)
class LbicaDecision:
    """One control-loop evaluation (one row of the Fig. 6 timeline)."""

    time: float
    interval_index: int
    cache_qtime: float
    disk_qtime: float
    burst: bool
    mix: dict
    group: Optional[WorkloadGroup]
    policy_assigned: Optional[WritePolicy]
    policy_active: WritePolicy
    bypassed: int


class LbicaController(Scheme):
    """Runs LBICA's control loop on a simulated system."""

    name = "lbica"
    description = (
        "LBICA (Ahmadian et al., DATE 2019): bottleneck detection, "
        "workload characterization, and policy assignment per interval."
    )
    config_cls = LbicaConfig
    config_field = "lbica"
    paper_baseline = True
    registry_order = 2

    def __init__(
        self,
        sim,
        controller: CacheController,
        ssd: StorageDevice,
        hdd: StorageDevice,
        tracer: BlkTracer,
        config: LbicaConfig | None = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.ssd = ssd
        self.hdd = hdd
        self.tracer = tracer
        self.config = config or LbicaConfig()
        self.config.validate()
        self.detector = BottleneckDetector(
            margin=self.config.margin,
            min_cache_qtime_us=self.config.min_cache_qtime_us,
        )
        self.characterizer = WorkloadCharacterizer(self.config.characterizer)
        self.policy_table: dict[WorkloadGroup, PolicyAction] = default_policy_table()
        self.balancer = TailBypassBalancer(
            controller, ssd, hdd, max_bypass_per_round=self.config.max_bypass_per_round
        )
        self.decisions: list[LbicaDecision] = []
        self._quiet_streak = 0
        self._tick_count = 0
        self._group_streak: tuple[Optional[WorkloadGroup], int] = (None, 0)
        self._prev_ssd_qsize = 0
        self._started = False

    @classmethod
    def from_system(cls, system) -> "LbicaController":
        return cls(
            system.sim,
            system.controller,
            system.ssd,
            system.hdd,
            system.tracer,
            system.config.lbica,
        ).attach(system)

    def summary_stats(self) -> dict:
        return {
            "decisions": len(self.decisions),
            "bursts": len(self.burst_intervals),
            "policy_assignments": len(self.policy_timeline),
        }

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic control loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_call(self.config.decision_interval_us, self._tick)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        # One evaluation per decision interval; the config and device
        # handles are loop-invariant across the whole run, so they are
        # bound once per tick here rather than re-chained at every use.
        sim = self.sim
        config = self.config
        ssd = self.ssd
        now = sim.now
        index = self._tick_count
        self._tick_count += 1

        cache_qtime = ssd.queue_time()
        disk_qtime = self.hdd.queue_time()
        reading = self.detector.evaluate(now, cache_qtime, disk_qtime)

        group: Optional[WorkloadGroup] = None
        assigned: Optional[WritePolicy] = None
        bypassed = 0
        mix_dict: dict = {}

        # Drain the per-interval arrival windows every tick — even when
        # the window mix is not consulted — so the tracer's counters
        # never accumulate across intervals: with ``use_window_mix=False``
        # an undrained window would grow without bound and a later
        # ``take_window_counts`` call would return a stale multi-interval
        # mix.  When consulted, application reads and writes are counted
        # wherever they were served (a write bypassed to the disk under
        # RO is still workload write traffic); the cache-internal
        # promote/evict tags exist only on the SSD side.
        ssd_window = self.tracer.take_window_counts(ssd.name)
        hdd_window = self.tracer.take_window_counts(self.hdd.name)
        window = None
        if config.use_window_mix:
            window = ssd_window
            window[OpTag.READ] += hdd_window.get(OpTag.READ, 0)
            window[OpTag.WRITE] += hdd_window.get(OpTag.WRITE, 0)

        if reading.is_bottleneck:
            self._quiet_streak = 0
            counts = window
            if not counts:
                counts = self.tracer.queue_snapshot(self.ssd.name)
            mix = QueueMix.from_counts(counts)
            mix_dict = mix.as_dict()
            group = self.characterizer.classify(mix)
            action = self.policy_table[group]
            # "Rising" is judged on queue *length*: queue time also moves
            # with the service-latency EWMA, which keeps climbing while a
            # drained queue's slow writes retire.
            rising = (
                not config.require_rising
                or ssd.qsize > self._prev_ssd_qsize
            )
            prev_group, streak = self._group_streak
            if rising and group is not WorkloadGroup.UNKNOWN:
                # Confirmation only accumulates while the bottleneck is
                # still growing; drain-phase readings are ignored.
                streak = streak + 1 if group == prev_group else 1
                self._group_streak = (group, streak)
            if (
                action.policy is not None
                and rising
                and streak >= config.confirm_ticks
            ):
                if self.controller.set_policy(action.policy):
                    assigned = action.policy
            if action.tail_bypass:
                bypassed = self.balancer.rebalance(now).bypassed
        else:
            self._quiet_streak += 1
            revert = config.revert_after_quiet
            if (
                revert is not None
                and self._quiet_streak >= revert
                and self.controller.policy is not WritePolicy.WB
            ):
                self.controller.set_policy(WritePolicy.WB)
                assigned = WritePolicy.WB

        self._prev_ssd_qsize = ssd.qsize
        self.decisions.append(
            LbicaDecision(
                time=now,
                interval_index=index,
                cache_qtime=cache_qtime,
                disk_qtime=disk_qtime,
                burst=reading.is_bottleneck,
                mix=mix_dict,
                group=group,
                policy_assigned=assigned,
                policy_active=self.controller.policy,
                bypassed=bypassed,
            )
        )
        sim.schedule_call(config.decision_interval_us, self._tick)

    # ------------------------------------------------------------------
    @property
    def burst_intervals(self) -> list[int]:
        """Interval indices where a burst was detected."""
        return [d.interval_index for d in self.decisions if d.burst]

    @property
    def policy_timeline(self) -> list[tuple[int, WritePolicy]]:
        """(interval, policy) pairs at each assignment (Fig. 6 annotations)."""
        return [
            (d.interval_index, d.policy_assigned)
            for d in self.decisions
            if d.policy_assigned is not None
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LbicaController(decisions={len(self.decisions)}, "
            f"bursts={len(self.burst_intervals)})"
        )


register_scheme(LbicaController)
