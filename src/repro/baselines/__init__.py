"""Comparison schemes from the paper's evaluation.

- :mod:`repro.baselines.wb` — the plain write-back cache with no load
  balancing ("WB" in Figures 4–7).
- :mod:`repro.baselines.sib` — Selective I/O Bypass [Kim et al., IEEE TC
  2018], the state-of-the-art the paper compares against: a WT/WO cache
  that estimates per-request wait times and bypasses the costliest
  in-queue requests, paying a per-request selection overhead.
"""

from repro.baselines.sib import SibConfig, SibController
from repro.baselines.wb import WbBaseline

__all__ = ["WbBaseline", "SibController", "SibConfig"]
