"""The WB baseline: a write-back cache with no load balancing.

This is the paper's first comparison point: EnhanceIO in plain WB mode.
All traffic is absorbed by the cache to maximize hit ratio; nothing
watches the queues, so during bursts the SSD queue grows without bound
(modulo application backpressure) and the cache becomes the system's
bottleneck — the pathology Figures 4 and 7 quantify.

There is nothing to *do* for this scheme; the class exists so the
experiment runner can treat every registered scheme uniformly
(construct, ``start()``, inspect after the run).
"""

from __future__ import annotations

from repro.schemes.base import Scheme
from repro.schemes.registry import register_scheme

__all__ = ["WbBaseline"]


class WbBaseline(Scheme):
    """A no-op load balancer (plain WB cache)."""

    name = "wb"
    description = "Unbalanced write-back cache (EnhanceIO WB mode, no balancer)."
    config_cls = None  # genuinely config-less, stated explicitly (SL005)
    paper_baseline = True
    registry_order = 0

    def __init__(self, sim=None, controller=None, ssd=None, hdd=None) -> None:
        self.sim = sim
        self.controller = controller
        self.config = None
        self.decisions: list = []

    @classmethod
    def from_system(cls, system) -> "WbBaseline":
        return cls(system.sim, system.controller).attach(system)

    def start(self) -> None:
        """No periodic activity."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WbBaseline()"


register_scheme(WbBaseline)
