"""The WB baseline: a write-back cache with no load balancing.

This is the paper's first comparison point: EnhanceIO in plain WB mode.
All traffic is absorbed by the cache to maximize hit ratio; nothing
watches the queues, so during bursts the SSD queue grows without bound
(modulo application backpressure) and the cache becomes the system's
bottleneck — the pathology Figures 4 and 7 quantify.

There is nothing to *do* for this scheme; the class exists so the
experiment runner can treat all three schemes uniformly (construct,
``start()``, inspect after the run).
"""

from __future__ import annotations

__all__ = ["WbBaseline"]


class WbBaseline:
    """A no-op load balancer (plain WB cache)."""

    name = "wb"

    def __init__(self, sim=None, controller=None, ssd=None, hdd=None) -> None:
        self.sim = sim
        self.controller = controller

    def start(self) -> None:
        """No periodic activity."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WbBaseline()"
