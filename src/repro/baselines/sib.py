"""Selective I/O Bypass (SIB) — the state-of-the-art baseline.

SIB [Kim, Roh, Park — "Selective I/O Bypass and Load Balancing Method for
Write-Through SSD Caching in Big Data Analytics", IEEE TC 67(4), 2018]
balances load between a write-through SSD cache and the disk by
estimating the wait time of every in-queue request and bypassing the
costliest ones to the disk.  The paper reproduces it with the three
properties it criticizes:

1. **Fixed WT + WO cache mode** — writes are buffered in the cache *and*
   mirrored to the disk simultaneously; reads are never promoted (only
   read-after-write data can hit).  In write-heavy bursts both queues
   fill together, leaving no room to balance.
2. **Per-request selection overhead** — each balancing round scans the
   pending queue to estimate wait times; we charge
   ``scan_overhead_us_per_op × pending`` and stall SSD dispatch for that
   long, reproducing the "performance and computational overhead on the
   operation of the queue".
3. **Latency-estimate-based bypass** — in a FIFO queue the estimated wait
   grows with position, so the highest-latency requests are the tail;
   the number moved per round is what Eq. 1 says is needed to equalize
   the two queue times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.controller import CacheController
from repro.cache.write_policy import WritePolicy
from repro.devices.base import StorageDevice
from repro.schemes.base import Scheme
from repro.schemes.registry import register_scheme

__all__ = ["SibConfig", "SibController", "SibRound"]


@dataclass
class SibConfig:
    """SIB tuning.

    Attributes:
        check_interval_us: Period of the balancing loop (SIB runs finer
            than a monitoring interval).
        scan_overhead_us_per_op: Estimation cost charged per pending op
            each round (stalls SSD dispatch).
        max_bypass_per_round: Bound on requests moved per round.
        margin: Required ``cache_Qtime / disk_Qtime`` ratio to act.
        min_cache_qtime_us: Absolute floor below which SIB stays idle.
        promote_on_miss: Whether SIB's write-through cache promotes read
            misses.  Kim et al. describe a WT/WO design; with promotion
            fully disabled a read-heavy workload never hits and the
            scheme collapses below even the WB baseline, which does not
            match the relative orderings of the LBICA paper's figures —
            so the default keeps read promotion (plain WT cache) and the
            strict WT+WO variant is exercised by the ablation benchmark.
    """

    check_interval_us: float = 12_500.0
    scan_overhead_us_per_op: float = 2.0
    max_bypass_per_round: int = 64
    margin: float = 1.0
    min_cache_qtime_us: float = 80_000.0
    promote_on_miss: bool = True

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.check_interval_us <= 0:
            raise ValueError("check_interval_us must be positive")
        if self.scan_overhead_us_per_op < 0:
            raise ValueError("scan_overhead_us_per_op must be non-negative")
        if self.max_bypass_per_round <= 0:
            raise ValueError("max_bypass_per_round must be positive")
        if self.margin < 1.0:
            raise ValueError("margin must be >= 1.0")


@dataclass(frozen=True)
class SibRound:
    """One balancing round (for logs and tests)."""

    time: float
    cache_qtime: float
    disk_qtime: float
    pending: int
    overhead_us: float
    bypassed: int


class SibController(Scheme):
    """Runs SIB's estimate-and-bypass loop on a simulated system.

    The cache controller must be configured in SIB's WT+WO hybrid mode
    (``policy=WT, promote_on_miss=False``); :meth:`configure_cache` does
    this.
    """

    name = "sib"
    description = (
        "Selective I/O Bypass (Kim et al., IEEE TC 2018): write-through "
        "cache with wait-time-estimated tail bypass."
    )
    config_cls = SibConfig
    config_field = "sib"
    paper_baseline = True
    registry_order = 1

    def __init__(
        self,
        sim,
        controller: CacheController,
        ssd: StorageDevice,
        hdd: StorageDevice,
        config: SibConfig | None = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.ssd = ssd
        self.hdd = hdd
        self.config = config or SibConfig()
        self.config.validate()
        self.rounds: list[SibRound] = []
        self.total_overhead_us = 0.0
        self._started = False

    @classmethod
    def from_system(cls, system) -> "SibController":
        return cls(
            system.sim, system.controller, system.ssd, system.hdd, system.config.sib
        ).attach(system)

    def decision_log(self) -> list:
        """The balancing rounds (one :class:`SibRound` per action)."""
        return self.rounds

    def summary_stats(self) -> dict:
        return {
            "rounds": len(self.rounds),
            "bypassed": self.total_bypassed,
            "overhead_us": self.total_overhead_us,
        }

    def configure_cache(self) -> None:
        """Pin the cache to SIB's fixed write-through mode."""
        self.controller.set_policy(
            WritePolicy.WT, promote_on_miss=self.config.promote_on_miss
        )

    def start(self) -> None:
        """Begin the balancing loop (idempotent); pins the cache mode."""
        if self._started:
            return
        self._started = True
        self.configure_cache()
        self.sim.schedule_call(self.config.check_interval_us, self._tick)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        cfg = self.config
        cache_qtime = self.ssd.queue_time()
        disk_qtime = self.hdd.queue_time()
        if (
            cache_qtime >= cfg.min_cache_qtime_us
            and cache_qtime > disk_qtime * cfg.margin
        ):
            pending = len(self.ssd.queue.pending)
            # Wait-time estimation pass over the whole pending queue.
            estimates = self.ssd.queue.estimated_wait(self.ssd.avg_latency)
            overhead = cfg.scan_overhead_us_per_op * len(estimates)
            if overhead > 0:
                self.ssd.pause_dispatch(overhead)
                self.total_overhead_us += overhead
            # Move enough tail requests to (approximately) equalize Eq. 1.
            per_move_gain = self.ssd.avg_latency + self.hdd.avg_latency
            want = int((cache_qtime - disk_qtime) / max(per_move_gain, 1e-9))
            to_move = max(0, min(want, cfg.max_bypass_per_round))
            stolen = self.ssd.queue.steal_tail(
                to_move, now, predicate=self.controller.op_redirectable
            )
            for op in stolen:
                self.controller.redirect_to_disk(op)
            self.rounds.append(
                SibRound(
                    time=now,
                    cache_qtime=cache_qtime,
                    disk_qtime=disk_qtime,
                    pending=pending,
                    overhead_us=overhead,
                    bypassed=len(stolen),
                )
            )
        self.sim.schedule_call(cfg.check_interval_us, self._tick)

    @property
    def total_bypassed(self) -> int:
        """Requests moved to the disk over the run."""
        return sum(r.bypassed for r in self.rounds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SibController(rounds={len(self.rounds)}, "
            f"bypassed={self.total_bypassed}, overhead={self.total_overhead_us:.0f}µs)"
        )


register_scheme(SibController)
