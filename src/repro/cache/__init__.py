"""EnhanceIO-like block-level I/O cache.

The paper implements its cache tier with EnhanceIO, a kernel lookaside
cache: a set-associative map of 4-KiB disk blocks onto the SSD, with a
write policy that decides which traffic is absorbed by the SSD and which
falls through to the disk.  This package rebuilds that substrate:

- :mod:`repro.cache.block` — per-block metadata (valid/dirty bits,
  recency/frequency state).
- :mod:`repro.cache.replacement` — pluggable LRU / FIFO / CLOCK / LFU
  victim selection.
- :mod:`repro.cache.store` — the set-associative :class:`~repro.cache.store.CacheStore`.
- :mod:`repro.cache.write_policy` — the WB / WT / RO / WO policies of
  Section III-C plus their routing semantics.
- :mod:`repro.cache.controller` — the datapath: expands application
  requests into tagged SSD/HDD device operations (R/W/P/E), honouring the
  currently assigned write policy; supports live policy switching, which
  is LBICA's actuation mechanism.
- :mod:`repro.cache.writeback` — background dirty-block flusher.
"""

from repro.cache.block import CacheBlock
from repro.cache.controller import CacheController, CacheStats
from repro.cache.replacement import (
    ClockPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    make_replacement_policy,
)
from repro.cache.store import CacheStore
from repro.cache.write_policy import PolicyBehavior, WritePolicy
from repro.cache.writeback import WritebackFlusher

__all__ = [
    "CacheBlock",
    "CacheStore",
    "CacheController",
    "CacheStats",
    "WritePolicy",
    "PolicyBehavior",
    "WritebackFlusher",
    "LruPolicy",
    "FifoPolicy",
    "ClockPolicy",
    "LfuPolicy",
    "make_replacement_policy",
]
