"""The set-associative cache store.

Pure bookkeeping: which disk blocks are cached, which are dirty, and who
gets evicted on overflow.  No timing lives here — the
:class:`~repro.cache.controller.CacheController` turns store transitions
into device operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement import ReplacementPolicy, make_replacement_policy

__all__ = ["CacheStore", "StoreStats", "EvictionInfo"]


@dataclass(frozen=True)
class EvictionInfo:
    """Record of a block evicted to make room."""

    lba: int
    was_dirty: bool


@dataclass(slots=True)
class StoreStats:
    """Lifetime counters for the store."""

    lookups: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def misses(self) -> int:
        """Lookup misses."""
        return self.lookups - self.hits

    @property
    def hit_ratio(self) -> float:
        """Hits / lookups (0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _CacheSet:
    """One associativity set: ordered entries + policy instance."""

    __slots__ = ("entries", "policy")

    def __init__(self, policy: ReplacementPolicy) -> None:
        self.entries: dict[int, CacheBlock] = {}
        self.policy = policy


class CacheStore:
    """A set-associative map of disk blocks onto the cache device.

    Args:
        capacity_blocks: Total number of cacheable 4-KiB blocks.
        associativity: Ways per set (``capacity_blocks`` must divide
            evenly; EnhanceIO uses 256-way sets, we default to 8 for
            finer-grained behaviour at simulation scale).
        replacement: Replacement policy name (``lru`` default).
    """

    def __init__(
        self,
        capacity_blocks: int,
        associativity: int = 8,
        replacement: str = "lru",
    ) -> None:
        if capacity_blocks <= 0:
            raise ValueError("capacity_blocks must be positive")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if capacity_blocks % associativity != 0:
            raise ValueError(
                f"capacity {capacity_blocks} not divisible by associativity "
                f"{associativity}"
            )
        self.capacity_blocks = capacity_blocks
        self.associativity = associativity
        self.num_sets = capacity_blocks // associativity
        self.replacement_name = replacement
        self._sets = [
            _CacheSet(make_replacement_policy(replacement))
            for _ in range(self.num_sets)
        ]
        self.stats = StoreStats()
        self._occupied = 0
        self._dirty = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def set_index(self, lba: int) -> int:
        """Set index for a block address."""
        return lba % self.num_sets

    def _set_for(self, lba: int) -> _CacheSet:
        return self._sets[lba % self.num_sets]

    # ------------------------------------------------------------------
    # Lookup / insert / invalidate
    # ------------------------------------------------------------------
    def lookup(self, lba: int, now: float, touch: bool = True) -> Optional[CacheBlock]:
        """Return the cached block for ``lba`` or ``None`` (counts stats)."""
        cset = self._sets[lba % self.num_sets]
        stats = self.stats
        stats.lookups += 1
        block = cset.entries.get(lba)
        if block is None:
            return None
        stats.hits += 1
        if touch:
            # Inlined block.touch(now) — one hit per cache-read block
            # makes the extra call measurable.
            block.last_access = now
            block.access_count += 1
            block.ref = True
            cset.policy.on_access(cset.entries, block)
        return block

    def peek(self, lba: int) -> Optional[CacheBlock]:
        """Lookup without stats or recency update."""
        return self._set_for(lba).entries.get(lba)

    def insert(
        self, lba: int, now: float, dirty: bool = False
    ) -> tuple[CacheBlock, Optional[EvictionInfo]]:
        """Insert (or overwrite) ``lba``; evict a victim if the set is full.

        Returns:
            ``(block, eviction)`` where ``eviction`` describes the victim
            (and its dirtiness) or ``None`` when no eviction was needed.
            Re-inserting a resident block refreshes it in place and never
            evicts.
        """
        cset = self._set_for(lba)
        existing = cset.entries.get(lba)
        if existing is not None:
            if dirty and not existing.dirty:
                existing.dirty = True
                self._dirty += 1
            existing.touch(now)
            cset.policy.on_access(cset.entries, existing)
            return existing, None

        eviction: Optional[EvictionInfo] = None
        if len(cset.entries) >= self.associativity:
            victim_lba = cset.policy.choose_victim(cset.entries)
            victim = cset.entries.pop(victim_lba)
            if victim.dirty:
                self._dirty -= 1
            self._occupied -= 1
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            eviction = EvictionInfo(victim_lba, victim.dirty)

        block = CacheBlock(lba, now, dirty=dirty)
        cset.entries[lba] = block
        cset.policy.on_insert(cset.entries, block)
        self._occupied += 1
        if dirty:
            self._dirty += 1
        self.stats.insertions += 1
        return block, eviction

    def invalidate(self, lba: int) -> bool:
        """Drop ``lba`` from the cache; returns whether it was resident."""
        cset = self._set_for(lba)
        block = cset.entries.pop(lba, None)
        if block is None:
            return False
        self._occupied -= 1
        if block.dirty:
            self._dirty -= 1
        self.stats.invalidations += 1
        return True

    # ------------------------------------------------------------------
    # Dirty management
    # ------------------------------------------------------------------
    def mark_dirty(self, lba: int) -> None:
        """Mark a resident block dirty (no-op if absent)."""
        block = self.peek(lba)
        if block is not None and not block.dirty:
            block.dirty = True
            self._dirty += 1

    def mark_clean(self, lba: int) -> None:
        """Mark a resident block clean (after a flush)."""
        block = self.peek(lba)
        if block is not None and block.dirty:
            block.dirty = False
            self._dirty -= 1

    def dirty_blocks(self, limit: Optional[int] = None) -> list[int]:
        """LBAs of dirty blocks, oldest-inserted first, up to ``limit``."""
        out: list[int] = []
        for cset in self._sets:
            for lba, block in cset.entries.items():
                if block.dirty:
                    out.append(lba)
                    if limit is not None and len(out) >= limit:
                        return out
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupied(self) -> int:
        """Number of resident blocks."""
        return self._occupied

    @property
    def dirty_count(self) -> int:
        """Number of dirty resident blocks."""
        return self._dirty

    @property
    def occupancy(self) -> float:
        """Resident fraction of capacity."""
        return self._occupied / self.capacity_blocks

    @property
    def dirty_ratio(self) -> float:
        """Dirty fraction of capacity."""
        return self._dirty / self.capacity_blocks

    def __contains__(self, lba: int) -> bool:
        return self.peek(lba) is not None

    def __iter__(self) -> Iterator[CacheBlock]:
        for cset in self._sets:
            yield from cset.entries.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStore({self._occupied}/{self.capacity_blocks} blocks, "
            f"{self._dirty} dirty, {self.replacement_name})"
        )
