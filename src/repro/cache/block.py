"""Per-block cache metadata."""

from __future__ import annotations

__all__ = ["CacheBlock"]


class CacheBlock:
    """Metadata for one cached 4-KiB block.

    Attributes:
        lba: The disk block this entry caches.
        dirty: Whether the cached copy is newer than the disk copy
            (write-back data awaiting a flush).
        insert_time: Simulation time the block was (last) inserted.
        last_access: Simulation time of the most recent hit.
        access_count: Number of hits since insertion (LFU state).
        ref: CLOCK reference bit.
    """

    __slots__ = ("lba", "dirty", "insert_time", "last_access", "access_count", "ref")

    def __init__(self, lba: int, now: float, dirty: bool = False) -> None:
        self.lba = lba
        self.dirty = dirty
        self.insert_time = now
        self.last_access = now
        self.access_count = 0
        self.ref = True

    def touch(self, now: float) -> None:
        """Record a hit."""
        self.last_access = now
        self.access_count += 1
        self.ref = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "D" if self.dirty else "C"
        return f"CacheBlock(lba={self.lba}, {flag}, hits={self.access_count})"
