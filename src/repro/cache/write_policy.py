"""Cache write policies (Section III-C of the paper).

LBICA's actuator is the ability to switch the cache among four write
policies at run time:

========  ==========================  ===========================  ==============
Policy    Application write           Read miss                    Read hit
========  ==========================  ===========================  ==============
``WB``    SSD only, marked dirty      HDD read, then promote (P)   SSD read
``WT``    SSD **and** HDD, clean      HDD read, then promote (P)   SSD read
``RO``    HDD only (cache bypassed,   HDD read, then promote (P)   SSD read
          stale copy invalidated)
``WO``    SSD only, marked dirty      HDD read, **no promotion**   SSD read
========  ==========================  ===========================  ==============

:class:`PolicyBehavior` encodes those rows as data so the controller's
datapath is policy-agnostic, and so SIB's WT+WO hybrid (writes
write-through, reads never promoted) can be expressed by overriding
``promote_on_miss``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

__all__ = ["WritePolicy", "PolicyBehavior", "behavior_for"]


class WritePolicy(str, Enum):
    """The four write policies the paper assigns."""

    WB = "WB"  #: write-back: everything cached, flush later
    WT = "WT"  #: write-through: writes mirrored to the disk
    RO = "RO"  #: read-only cache: writes bypass to the disk
    WO = "WO"  #: write-only-ish: writes cached, read misses not promoted

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PolicyBehavior:
    """Routing semantics of a write policy.

    Attributes:
        policy: The policy this behaviour realizes.
        cache_writes: Write data is stored in the cache (SSD write, tag W).
        writes_through: Write data is also sent to the disk synchronously.
        writes_dirty: Cached write data is marked dirty (needs eviction
            flushes later — the source of ``E`` traffic).
        invalidate_on_write: A write drops any stale cached copy (RO).
        promote_on_miss: A read miss is promoted into the cache (tag P).
    """

    policy: WritePolicy
    cache_writes: bool
    writes_through: bool
    writes_dirty: bool
    invalidate_on_write: bool
    promote_on_miss: bool

    def with_promotion(self, promote: bool) -> "PolicyBehavior":
        """A copy with ``promote_on_miss`` overridden (SIB's WT+WO mode)."""
        return replace(self, promote_on_miss=promote)


_BEHAVIORS: dict[WritePolicy, PolicyBehavior] = {
    WritePolicy.WB: PolicyBehavior(
        policy=WritePolicy.WB,
        cache_writes=True,
        writes_through=False,
        writes_dirty=True,
        invalidate_on_write=False,
        promote_on_miss=True,
    ),
    WritePolicy.WT: PolicyBehavior(
        policy=WritePolicy.WT,
        cache_writes=True,
        writes_through=True,
        writes_dirty=False,
        invalidate_on_write=False,
        promote_on_miss=True,
    ),
    WritePolicy.RO: PolicyBehavior(
        policy=WritePolicy.RO,
        cache_writes=False,
        writes_through=True,
        writes_dirty=False,
        invalidate_on_write=True,
        promote_on_miss=True,
    ),
    WritePolicy.WO: PolicyBehavior(
        policy=WritePolicy.WO,
        cache_writes=True,
        writes_through=False,
        writes_dirty=True,
        invalidate_on_write=False,
        promote_on_miss=False,
    ),
}


def behavior_for(policy: WritePolicy) -> PolicyBehavior:
    """The routing semantics of ``policy``."""
    return _BEHAVIORS[policy]
