"""Background dirty-block flusher.

EnhanceIO (like every write-back cache) destages dirty blocks in the
background so the dirty ratio stays bounded.  The flusher wakes
periodically and, when the dirty ratio exceeds a low watermark, flushes a
batch of dirty blocks — each flush producing the SSD evict-read (``E``)
plus HDD write-back (``E``) pair that populates the ``E`` share of the
queue mixes in Section IV-C.  Above a high watermark the batch size grows
aggressively (the cleaner is "panicking"), which is the behaviour that
makes write-intensive bursts (Group 3) show a large W+E queue mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.controller import CacheController
from repro.sim.engine import Simulator

__all__ = ["WritebackConfig", "WritebackFlusher"]


@dataclass
class WritebackConfig:
    """Flusher tuning.

    Attributes:
        interval_us: Wake-up period.
        low_watermark: Dirty ratio below which the flusher stays idle.
        high_watermark: Dirty ratio above which it flushes aggressively.
        batch: Blocks flushed per wake-up between the watermarks.
        panic_batch: Blocks flushed per wake-up above the high watermark.
    """

    interval_us: float = 20_000.0
    low_watermark: float = 0.05
    high_watermark: float = 0.30
    batch: int = 2
    panic_batch: int = 8

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.interval_us <= 0:
            raise ValueError("interval_us must be positive")
        if not (0.0 <= self.low_watermark <= self.high_watermark <= 1.0):
            raise ValueError("watermarks must satisfy 0 <= low <= high <= 1")
        if self.batch < 0 or self.panic_batch < 0:
            raise ValueError("batch sizes must be non-negative")


class WritebackFlusher:
    """Periodic background destaging of dirty cache blocks."""

    def __init__(
        self,
        sim: Simulator,
        controller: CacheController,
        config: WritebackConfig | None = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.config = config or WritebackConfig()
        self.config.validate()
        self.flushes_started = 0
        self._started = False

    def start(self) -> None:
        """Begin the periodic flush loop (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.schedule_call(self.config.interval_us, self._tick)

    def _tick(self) -> None:
        cfg = self.config
        store = self.controller.store
        ratio = store.dirty_ratio
        if ratio > cfg.low_watermark:
            batch = cfg.panic_batch if ratio >= cfg.high_watermark else cfg.batch
            for lba in store.dirty_blocks(limit=batch):
                if self.controller.flush_block(lba):
                    self.flushes_started += 1
        self.sim.schedule_call(cfg.interval_us, self._tick)
