"""The cache datapath: application requests -> tagged device operations.

This is the EnhanceIO-equivalent module.  Every application request is
expanded, block by block, into SSD and HDD operations carrying the
paper's queue tags:

- a read hit becomes an SSD read (``R``);
- a read miss becomes an HDD read (``R``) plus — policy permitting — an
  asynchronous SSD promotion write (``P``);
- a write becomes an SSD write (``W``), an HDD write (``W``), or both,
  depending on the active :class:`~repro.cache.write_policy.WritePolicy`;
- evicting a dirty victim becomes an SSD read (``E``) chained to an HDD
  write-back (``E``).

The controller supports **live policy switching** (LBICA's actuator) and
**redirection** of ops that a load balancer stole from the SSD queue
(:meth:`CacheController.redirect_to_disk`), keeping cache metadata
consistent when writes or promotions are diverted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.cache.store import CacheStore
from repro.cache.write_policy import PolicyBehavior, WritePolicy, behavior_for
from repro.devices.base import StorageDevice
from repro.io.request import DeviceOp, OpTag, Request
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schemes.base import CacheAllocator

__all__ = ["CacheController", "CacheStats", "TenantStats", "PolicyChange"]


@dataclass(frozen=True)
class PolicyChange:
    """One policy-switch record (for the Fig. 6 timeline)."""

    time: float
    policy: WritePolicy
    promote_on_miss: bool


@dataclass(slots=True)
class TenantStats:
    """Per-tenant (per-VM) slice of the cache datapath counters."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    read_hit_blocks: int = 0
    read_miss_blocks: int = 0
    completed: int = 0
    bypassed: int = 0
    total_latency: float = 0.0

    @property
    def read_hit_ratio(self) -> float:
        """Block-level read hit ratio for this tenant."""
        total = self.read_hit_blocks + self.read_miss_blocks
        return self.read_hit_blocks / total if total else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean application-request latency for this tenant (µs)."""
        return self.total_latency / self.completed if self.completed else 0.0


@dataclass(slots=True)
class CacheStats:
    """Lifetime counters for the cache datapath."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    read_hit_blocks: int = 0
    read_miss_blocks: int = 0
    write_blocks: int = 0
    promotes_issued: int = 0
    promotes_cancelled: int = 0
    evict_flushes: int = 0
    writes_bypassed: int = 0
    reads_bypassed: int = 0
    policy_switches: int = 0
    completed: int = 0
    total_latency: float = 0.0
    policy_log: list[PolicyChange] = field(default_factory=list)
    tenants: dict[int, TenantStats] = field(default_factory=dict)

    def tenant(self, tenant_id: int) -> TenantStats:
        """The (auto-created) per-tenant counter slice."""
        stats = self.tenants.get(tenant_id)
        if stats is None:
            stats = self.tenants[tenant_id] = TenantStats()
        return stats

    @property
    def read_hit_ratio(self) -> float:
        """Block-level read hit ratio."""
        total = self.read_hit_blocks + self.read_miss_blocks
        return self.read_hit_blocks / total if total else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean application-request latency (µs)."""
        return self.total_latency / self.completed if self.completed else 0.0


class CacheController:
    """Routes application I/O through the SSD cache and HDD subsystem.

    Args:
        sim: The simulator.
        ssd: Cache-tier device.
        hdd: Disk-subsystem device.
        store: Cache metadata store.
        policy: Initial write policy (the paper starts every run in WB).
        promote_on_miss: Optional override of the policy's promotion
            behaviour (used by SIB's WT+WO hybrid).
    """

    def __init__(
        self,
        sim: Simulator,
        ssd: StorageDevice,
        hdd: StorageDevice,
        store: CacheStore,
        policy: WritePolicy = WritePolicy.WB,
        promote_on_miss: Optional[bool] = None,
    ) -> None:
        self.sim = sim
        self.ssd = ssd
        self.hdd = hdd
        self.store = store
        self.stats = CacheStats()
        #: Optional per-tenant capacity allocator (the
        #: :class:`~repro.schemes.base.CacheAllocator` protocol) a
        #: capacity-partitioning scheme installs.  ``None`` (the
        #: default) skips every allocator call site, keeping the shared
        #: datapath bit-identical to an allocator-free build.
        self.allocator: Optional["CacheAllocator"] = None
        # Pre-bound completion callbacks: the single-block read path
        # hands one of these to every DeviceOp, and an attribute read is
        # cheaper than re-binding the method per request.
        self._sync_done_cb = self._sync_done
        self._miss_read_done_cb = self._miss_read_done
        self._completion_hooks: list[Callable[[Request], None]] = []
        self._flushing: set[int] = set()
        self._behavior = behavior_for(policy)
        if promote_on_miss is not None:
            self._behavior = self._behavior.with_promotion(promote_on_miss)
        self.stats.policy_log.append(
            PolicyChange(0.0, self._behavior.policy, self._behavior.promote_on_miss)
        )

    # ------------------------------------------------------------------
    # Policy control (LBICA's actuator)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> WritePolicy:
        """Currently assigned write policy."""
        return self._behavior.policy

    @property
    def behavior(self) -> PolicyBehavior:
        """Currently active routing behaviour."""
        return self._behavior

    def set_policy(
        self, policy: WritePolicy, promote_on_miss: Optional[bool] = None
    ) -> bool:
        """Switch the write policy at run time.

        Returns:
            ``True`` if the effective behaviour actually changed.
        """
        behavior = behavior_for(policy)
        if promote_on_miss is not None:
            behavior = behavior.with_promotion(promote_on_miss)
        if behavior == self._behavior:
            return False
        self._behavior = behavior
        self.stats.policy_switches += 1
        self.stats.policy_log.append(
            PolicyChange(self.sim.now, behavior.policy, behavior.promote_on_miss)
        )
        return True

    def add_completion_hook(self, fn: Callable[[Request], None]) -> None:
        """Register ``fn(request)`` to run on every request completion."""
        self._completion_hooks.append(fn)

    def remove_completion_hook(self, fn: Callable[[Request], None]) -> None:
        """Deregister a hook added via :meth:`add_completion_hook`."""
        if fn in self._completion_hooks:
            self._completion_hooks.remove(fn)

    def telemetry_snapshot(self) -> dict[str, Any]:
        """Point-in-time datapath state for the obs layer (JSON-ready).

        A pull-style read of existing counters — called once per
        monitoring interval, never from the per-request hot paths.
        """
        stats = self.stats
        return {
            "policy": self._behavior.policy.name,
            "read_hit_ratio": stats.read_hit_ratio,
            "requests": stats.requests,
            "completed": stats.completed,
            "reads_bypassed": stats.reads_bypassed,
            "writes_bypassed": stats.writes_bypassed,
            "dirty_blocks": self.store.dirty_count,
            "occupied_blocks": self.store.occupied,
            "tenants": {
                tid: {
                    "read_hit_ratio": ts.read_hit_ratio,
                    "completed": ts.completed,
                    "bypassed": ts.bypassed,
                }
                for tid, ts in sorted(stats.tenants.items())
            },
        }

    # ------------------------------------------------------------------
    # Application entry point
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Route one application request through the cache."""
        stats = self.stats
        stats.requests += 1
        # Inlined stats.tenant(): one dict probe per request.
        tenants = stats.tenants
        tenant = tenants.get(request.tenant_id)
        if tenant is None:
            tenant = tenants[request.tenant_id] = TenantStats()
        tenant.requests += 1
        if request.is_write:
            stats.writes += 1
            tenant.writes += 1
            self._do_write(request, tenant)
            return
        stats.reads += 1
        tenant.reads += 1
        if request.nblocks != 1:
            self._do_read(request, tenant)
            return
        # Single-block read, inlined from _do_read's fast path — the
        # dominant datapath operation by far (read-mostly workloads with
        # 4-KiB requests); same accounting, one frame less per request.
        now = self.sim.now
        request._outstanding += 1  # inlined add_wait(1)
        lba = request.lba
        block = self.store.lookup(lba, now)
        if block is not None:
            stats.read_hit_blocks += 1
            tenant.read_hit_blocks += 1
            op = DeviceOp(
                lba,
                1,
                False,
                OpTag.READ,
                request,
                True,
                not block.dirty,
                self._sync_done_cb,
            )
            ssd = self.ssd
            request.served_by.add(ssd.name)
            ssd.submit(op)
        else:
            stats.read_miss_blocks += 1
            tenant.read_miss_blocks += 1
            op = DeviceOp(
                lba,
                1,
                False,
                OpTag.READ,
                request,
                True,
                False,
                self._miss_read_done_cb,
            )
            hdd = self.hdd
            request.served_by.add(hdd.name)
            hdd.submit(op)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _do_read(self, request: Request, tenant: TenantStats) -> None:
        # Per-block expansion is the datapath's inner loop; every
        # loop-invariant attribute chain is hoisted.
        now = self.sim.now
        stats = self.stats
        lookup = self.store.lookup
        ssd, hdd = self.ssd, self.hdd
        served_by = request.served_by
        read_tag = OpTag.READ
        # Every block contributes exactly one synchronous wait, and
        # completions are only ever delivered through the calendar, so
        # the whole request's waits can be credited up front.
        nblocks = request.nblocks
        request.add_wait(nblocks)
        if nblocks == 1:
            # Single-block requests dominate the mix; skip the range
            # loop entirely.
            lba = request.lba
            block = lookup(lba, now)
            if block is not None:
                stats.read_hit_blocks += 1
                tenant.read_hit_blocks += 1
                op = DeviceOp(
                    lba,
                    1,
                    False,
                    read_tag,
                    request,
                    True,
                    not block.dirty,
                    self._sync_done,
                )
                served_by.add(ssd.name)
                ssd.submit(op)
            else:
                stats.read_miss_blocks += 1
                tenant.read_miss_blocks += 1
                op = DeviceOp(
                    lba,
                    1,
                    False,
                    read_tag,
                    request,
                    True,
                    False,
                    self._miss_read_done,
                )
                served_by.add(hdd.name)
                hdd.submit(op)
            return
        for lba in range(request.lba, request.end_lba):
            block = lookup(lba, now)
            if block is not None:
                stats.read_hit_blocks += 1
                tenant.read_hit_blocks += 1
                op = DeviceOp(
                    lba,
                    1,
                    False,
                    read_tag,
                    request,
                    True,
                    not block.dirty,
                    self._sync_done,
                )
                served_by.add(ssd.name)
                ssd.submit(op)
            else:
                stats.read_miss_blocks += 1
                tenant.read_miss_blocks += 1
                op = DeviceOp(
                    lba,
                    1,
                    False,
                    read_tag,
                    request,
                    True,
                    False,
                    self._miss_read_done,
                )
                served_by.add(hdd.name)
                hdd.submit(op)

    def _miss_read_done(self, op: DeviceOp) -> None:
        """A miss read returned from the disk: maybe promote, then complete."""
        if self._behavior.promote_on_miss:
            allocator = self.allocator
            if allocator is None:
                self._promote(op.lba)
            else:
                request = op.request
                tenant_id = request.tenant_id if request is not None else 0
                if allocator.admit(tenant_id, op.lba):
                    self._promote(op.lba, tenant_id)
                # denied: the tenant's cache share is exhausted — the
                # block is served from the disk and simply not promoted
        self._sync_done(op)

    def _promote(self, lba: int, tenant_id: int = 0) -> None:
        """Insert ``lba`` and issue the asynchronous promotion write (P)."""
        now = self.sim.now
        _, eviction = self.store.insert(lba, now, dirty=False)
        allocator = self.allocator
        if allocator is not None:
            allocator.note_insert(tenant_id, lba)
            if eviction is not None:
                allocator.note_remove(eviction.lba)
        if eviction is not None and eviction.was_dirty:
            self._flush_evicted(eviction.lba)
        self.stats.promotes_issued += 1
        self.ssd.submit(
            DeviceOp(
                lba,
                1,
                is_write=True,
                tag=OpTag.PROMOTE,
                request=None,
                sync=False,
                stealable=True,
            )
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _do_write(self, request: Request, tenant: TenantStats) -> None:
        now = self.sim.now
        behavior = self._behavior
        stats = self.stats
        store = self.store
        ssd, hdd = self.ssd, self.hdd
        served_by = request.served_by
        add_wait = request.add_wait
        sync_done = self._sync_done
        write_tag = OpTag.WRITE
        invalidate_on_write = behavior.invalidate_on_write
        cache_writes = behavior.cache_writes
        writes_through = behavior.writes_through
        writes_dirty = behavior.writes_dirty
        allocator = self.allocator
        tenant_id = request.tenant_id
        for lba in range(request.lba, request.end_lba):
            stats.write_blocks += 1
            if invalidate_on_write:
                # RO: the write supersedes any cached copy; the new data
                # goes straight to the disk.
                if store.invalidate(lba) and allocator is not None:
                    allocator.note_remove(lba)
                stats.writes_bypassed += 1
                op = DeviceOp(
                    lba, 1, True, write_tag, request, True, False, sync_done
                )
                add_wait()
                served_by.add(hdd.name)
                hdd.submit(op)
                continue

            if cache_writes:
                if allocator is not None and not allocator.admit(tenant_id, lba):
                    # The tenant's cache share is exhausted: write around
                    # the cache straight to the disk (soft partitioning).
                    stats.writes_bypassed += 1
                    op = DeviceOp(
                        lba, 1, True, write_tag, request, True, False, sync_done
                    )
                    add_wait()
                    served_by.add(hdd.name)
                    hdd.submit(op)
                    continue
                _, eviction = store.insert(lba, now, dirty=writes_dirty)
                if allocator is not None:
                    allocator.note_insert(tenant_id, lba)
                    if eviction is not None:
                        allocator.note_remove(eviction.lba)
                if eviction is not None and eviction.was_dirty:
                    self._flush_evicted(eviction.lba)
                op = DeviceOp(
                    lba, 1, True, write_tag, request, True, True, sync_done
                )
                add_wait()
                served_by.add(ssd.name)
                ssd.submit(op)

            if writes_through:
                op = DeviceOp(
                    lba, 1, True, write_tag, request, True, False, sync_done
                )
                add_wait()
                served_by.add(hdd.name)
                hdd.submit(op)

    # ------------------------------------------------------------------
    # Eviction write-back (E traffic)
    # ------------------------------------------------------------------
    def _flush_evicted(self, lba: int) -> None:
        """Flush a dirty victim: SSD evict-read (E) then HDD write-back (E)."""
        self.stats.evict_flushes += 1
        self.ssd.submit(
            DeviceOp(
                lba,
                1,
                is_write=False,
                tag=OpTag.EVICT,
                request=None,
                sync=False,
                stealable=False,
                on_complete=self._evict_read_done,
            )
        )

    def _evict_read_done(self, op: DeviceOp) -> None:
        self.hdd.submit(
            DeviceOp(
                op.lba,
                op.nblocks,
                is_write=True,
                tag=OpTag.EVICT,
                request=None,
                sync=False,
                stealable=False,
            )
        )

    def flush_block(self, lba: int) -> bool:
        """Flush one resident dirty block in place (background write-back).

        Returns:
            ``True`` if a flush was started.
        """
        block = self.store.peek(lba)
        if block is None or not block.dirty or lba in self._flushing:
            return False
        self._flushing.add(lba)
        self.stats.evict_flushes += 1
        self.ssd.submit(
            DeviceOp(
                lba,
                1,
                is_write=False,
                tag=OpTag.EVICT,
                request=None,
                sync=False,
                stealable=False,
                on_complete=self._bg_flush_read_done,
            )
        )
        return True

    def _bg_flush_read_done(self, op: DeviceOp) -> None:
        self.hdd.submit(
            DeviceOp(
                op.lba,
                op.nblocks,
                is_write=True,
                tag=OpTag.EVICT,
                request=None,
                sync=False,
                stealable=False,
                on_complete=self._bg_flush_write_done,
            )
        )

    def _bg_flush_write_done(self, op: DeviceOp) -> None:
        for lba in range(op.lba, op.end_lba):
            self.store.mark_clean(lba)
            self._flushing.discard(lba)

    # ------------------------------------------------------------------
    # Tenant service operations (churn reclaim / rewarm)
    # ------------------------------------------------------------------
    def reclaim_range(self, lo_lba: int, hi_lba: int) -> tuple[int, int]:
        """Evict every resident block in ``[lo_lba, hi_lba)``.

        This is the tenant-departure reclaim path: a departing tenant's
        LBA region is dropped from the cache and its dirty blocks are
        written back to the disk through the regular eviction chain
        (``E`` traffic) — the data must land on the HDD before the share
        can be handed to someone else.  A block whose background flush
        is already in flight is invalidated without a second write-back
        (the in-flight chain completes harmlessly; :meth:`mark_clean`
        tolerates the missing metadata).

        Returns:
            ``(reclaimed, flushed)`` — blocks invalidated and dirty
            write-backs issued.
        """
        victims = [
            (block.lba, block.dirty)
            for block in self.store
            if lo_lba <= block.lba < hi_lba
        ]
        allocator = self.allocator
        reclaimed = flushed = 0
        for lba, dirty in victims:
            in_flight = lba in self._flushing
            if not self.store.invalidate(lba):
                continue
            reclaimed += 1
            if allocator is not None:
                allocator.note_remove(lba)
            if dirty and not in_flight:
                flushed += 1
                self._flush_evicted(lba)
        return reclaimed, flushed

    def rewarm_block(self, lba: int, tenant_id: int, dirty: bool = False) -> bool:
        """Insert one warm block on behalf of an arriving tenant.

        Unlike the run-start warm pre-load (which predates any
        allocator), a mid-run rewarm honours quota admission, the
        allocator's ownership accounting, and the regular dirty-victim
        write-back.

        Returns:
            ``True`` if the block was inserted.
        """
        if self.store.peek(lba) is not None:
            return False
        allocator = self.allocator
        if allocator is not None and not allocator.admit(tenant_id, lba):
            return False
        _, eviction = self.store.insert(lba, self.sim.now, dirty=dirty)
        if allocator is not None:
            allocator.note_insert(tenant_id, lba)
            if eviction is not None:
                allocator.note_remove(eviction.lba)
        if eviction is not None and eviction.was_dirty:
            self._flush_evicted(eviction.lba)
        return True

    # ------------------------------------------------------------------
    # Bypass support (used by LBICA's balancer and by SIB)
    # ------------------------------------------------------------------
    def op_redirectable(self, op: DeviceOp) -> bool:
        """Whether a pending SSD op may be redirected to the disk.

        Application writes and promotions are always redirectable;
        application reads only while every block they cover is clean (a
        dirty block's only valid copy lives on the SSD).  Evict reads are
        never redirectable.
        """
        if op.tag is OpTag.WRITE or op.tag is OpTag.PROMOTE:
            return True
        if op.tag is OpTag.READ:
            for lba in range(op.lba, op.end_lba):
                block = self.store.peek(lba)
                if block is not None and block.dirty:
                    return False
            return True
        return False

    def redirect_to_disk(self, op: DeviceOp) -> None:
        """Re-route an op stolen from the SSD queue to the disk subsystem.

        - ``W``: the write is served by the HDD; any cache copy covering
          the range is invalidated (it was never written to the SSD).
          Under a write-through policy the HDD mirror op is already in
          flight, so the SSD leg is simply cancelled and its completion
          charged immediately (this is SIB's bypass path).
        - ``R``: the read is served by the HDD (blocks are clean).
        - ``P``: the promotion is simply cancelled (nobody waits on it)
          and the speculative metadata insertion undone.
        """
        allocator = self.allocator
        if op.tag is OpTag.PROMOTE:
            self.stats.promotes_cancelled += 1 + len(op.merged)
            for child in (op, *op.merged):
                for lba in range(child.lba, child.end_lba):
                    if self.store.invalidate(lba) and allocator is not None:
                        allocator.note_remove(lba)
            return
        if op.tag is OpTag.WRITE:
            self.stats.writes_bypassed += 1 + len(op.merged)
            for child in (op, *op.merged):
                for lba in range(child.lba, child.end_lba):
                    if self.store.invalidate(lba) and allocator is not None:
                        allocator.note_remove(lba)
                if child.request is not None:
                    child.request.bypassed = True
                    child.request.served_by.add(self.hdd.name)
            if self._behavior.writes_through:
                # The disk copy is already being written by the mirror op;
                # dropping the SSD leg completes it for free.
                for child in (op, *op.merged):
                    self._sync_done(child)
                return
        elif op.tag is OpTag.READ:
            self.stats.reads_bypassed += 1 + len(op.merged)
            for child in (op, *op.merged):
                if child.request is not None:
                    child.request.bypassed = True
                    child.request.served_by.add(self.hdd.name)
        else:  # pragma: no cover - filtered out by op_redirectable
            raise ValueError(f"cannot redirect {op.tag} op")
        self.hdd.submit(op)

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------
    def _sync_done(self, op: DeviceOp) -> None:
        request = op.request
        if request is None or not op.sync:
            return
        # Inlined Request.op_done (one call per synchronous block
        # completion; the method remains the reference implementation).
        outstanding = request._outstanding - 1
        if outstanding < 0:
            raise RuntimeError(f"request {request.req_id}: completion underflow")
        request._outstanding = outstanding
        if outstanding == 0:
            request.complete_time = self.sim.now
            callback = request._on_complete
            if callback is not None:
                callback(request)
            stats = self.stats
            stats.completed += 1
            latency = request.complete_time - request.arrival
            stats.total_latency += latency
            tenants = stats.tenants
            tenant = tenants.get(request.tenant_id)
            if tenant is None:
                tenant = tenants[request.tenant_id] = TenantStats()
            tenant.completed += 1
            tenant.total_latency += latency
            if request.bypassed:
                tenant.bypassed += 1
            for hook in self._completion_hooks:
                hook(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheController(policy={self.policy}, "
            f"hit={self.stats.read_hit_ratio:.2%})"
        )
