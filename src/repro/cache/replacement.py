"""Pluggable replacement policies.

Each policy manages the ordering metadata of one cache set.  Sets store
their blocks in an insertion-ordered ``dict`` (``lba -> CacheBlock``);
policies reorder or annotate on access and choose a victim on overflow.

Available policies: LRU (EnhanceIO's default), FIFO, CLOCK (second
chance), and LFU with LRU tie-breaking.  The ablation benchmark sweeps
these to show LBICA's behaviour is replacement-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cache.block import CacheBlock

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "ClockPolicy",
    "LfuPolicy",
    "make_replacement_policy",
]


class ReplacementPolicy(ABC):
    """Victim-selection strategy for one cache set."""

    name: str = "base"

    def on_insert(self, entries: dict[int, CacheBlock], block: CacheBlock) -> None:
        """Hook invoked after ``block`` is added to ``entries``."""

    def on_access(self, entries: dict[int, CacheBlock], block: CacheBlock) -> None:
        """Hook invoked on a hit to ``block``."""

    @abstractmethod
    def choose_victim(self, entries: dict[int, CacheBlock]) -> int:
        """Return the LBA of the block to evict (``entries`` non-empty)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: move-to-back on access, evict the front."""

    name = "lru"

    def on_access(self, entries: dict[int, CacheBlock], block: CacheBlock) -> None:
        # Re-insert to move the key to the back of the ordered dict.
        entries.pop(block.lba)
        entries[block.lba] = block

    def choose_victim(self, entries: dict[int, CacheBlock]) -> int:
        return next(iter(entries))


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict the oldest insertion, ignore accesses."""

    name = "fifo"

    def choose_victim(self, entries: dict[int, CacheBlock]) -> int:
        return next(iter(entries))


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK: sweep, clearing ref bits, evict first clear."""

    name = "clock"

    def choose_victim(self, entries: dict[int, CacheBlock]) -> int:
        # Two sweeps guarantee a victim: the first clears every ref bit
        # in the worst case, the second then finds ref == False.
        for _ in range(2):
            for lba, block in entries.items():
                if not block.ref:
                    return lba
                block.ref = False
        return next(iter(entries))  # pragma: no cover - unreachable


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used, breaking ties by last access time."""

    name = "lfu"

    def choose_victim(self, entries: dict[int, CacheBlock]) -> int:
        return min(
            entries.values(), key=lambda b: (b.access_count, b.last_access)
        ).lba


_POLICIES: dict[str, type[ReplacementPolicy]] = {
    cls.name: cls for cls in (LruPolicy, FifoPolicy, ClockPolicy, LfuPolicy)
}


def make_replacement_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``fifo``/``clock``/``lfu``).

    Raises:
        ValueError: For unknown names.
    """
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
