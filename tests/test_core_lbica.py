"""Unit tests for LBICA's three procedures and the controller loop."""

from collections import Counter

import pytest

from repro.cache.write_policy import WritePolicy
from repro.core.balancer import TailBypassBalancer
from repro.core.bottleneck import BottleneckDetector
from repro.core.characterization import (
    CharacterizerConfig,
    QueueMix,
    WorkloadCharacterizer,
    WorkloadGroup,
)
from repro.core.lbica import LbicaConfig, LbicaController
from repro.core.policy_table import default_policy_table
from repro.io.request import OpTag, Request
from repro.trace.blktrace import BlkTracer


def counts(r=0, w=0, p=0, e=0) -> Counter:
    return Counter(
        {OpTag.READ: r, OpTag.WRITE: w, OpTag.PROMOTE: p, OpTag.EVICT: e}
    )


class TestBottleneckDetector:
    def test_cache_bottleneck_when_cache_qtime_larger(self):
        det = BottleneckDetector(min_cache_qtime_us=0.0)
        assert det.evaluate(0.0, 1000.0, 500.0).is_bottleneck
        assert not det.evaluate(1.0, 500.0, 1000.0).is_bottleneck

    def test_floor_suppresses_noise(self):
        det = BottleneckDetector(min_cache_qtime_us=2000.0)
        assert not det.evaluate(0.0, 1000.0, 0.0).is_bottleneck
        assert det.evaluate(1.0, 3000.0, 0.0).is_bottleneck

    def test_margin(self):
        det = BottleneckDetector(margin=2.0, min_cache_qtime_us=0.0)
        assert not det.evaluate(0.0, 1500.0, 1000.0).is_bottleneck
        assert det.evaluate(1.0, 2500.0, 1000.0).is_bottleneck

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BottleneckDetector(margin=0.5)
        with pytest.raises(ValueError):
            BottleneckDetector(min_cache_qtime_us=-1)
        det = BottleneckDetector()
        with pytest.raises(ValueError):
            det.evaluate(0.0, -1.0, 0.0)

    def test_imbalance_ratio(self):
        det = BottleneckDetector(min_cache_qtime_us=0.0)
        r = det.evaluate(0.0, 2000.0, 1000.0)
        assert r.imbalance == pytest.approx(2.0)
        r0 = det.evaluate(1.0, 2000.0, 0.0)
        assert r0.imbalance == float("inf")

    def test_burst_count(self):
        det = BottleneckDetector(min_cache_qtime_us=0.0)
        det.evaluate(0.0, 10.0, 1.0)
        det.evaluate(1.0, 1.0, 10.0)
        assert det.burst_count == 1


class TestCharacterizer:
    """Includes the paper's four measured mixes (Section IV-C)."""

    def setup_method(self):
        self.clf = WorkloadCharacterizer()

    def test_paper_tpcc_interval3_is_random_read(self):
        # R: 44%, W: 2.2%, P: 51%, E: 2.8% → Group 1 → WO
        mix = QueueMix(r=0.44, w=0.022, p=0.51, e=0.028, total=1000)
        assert self.clf.classify(mix) is WorkloadGroup.RANDOM_READ

    def test_paper_mail_interval23_is_mixed_rw(self):
        # R: 13.9%, W: 70.4%, P: 3.9%, E: 11.8% → Group 2 → RO
        mix = QueueMix(r=0.139, w=0.704, p=0.039, e=0.118, total=1000)
        assert self.clf.classify(mix) is WorkloadGroup.MIXED_RW

    def test_paper_mail_interval134_is_write_intensive(self):
        # ~90% W and E → Group 3 → WB
        mix = QueueMix(r=0.05, w=0.60, p=0.05, e=0.30, total=1000)
        group = self.clf.classify(mix)
        assert group.is_write_intensive

    def test_paper_web_interval1_is_mixed_rw(self):
        # R: 17.9%, W: 63.8%, P: 7.9%, E: 10.4% → Group 2 → RO
        mix = QueueMix(r=0.179, w=0.638, p=0.079, e=0.104, total=1000)
        assert self.clf.classify(mix) is WorkloadGroup.MIXED_RW

    def test_sequential_read_p_dominant(self):
        mix = QueueMix(r=0.1, w=0.05, p=0.8, e=0.05, total=1000)
        assert self.clf.classify(mix) is WorkloadGroup.SEQUENTIAL_READ

    def test_random_vs_sequential_write_split(self):
        rand = QueueMix(r=0.02, w=0.68, p=0.0, e=0.30, total=1000)
        seq = QueueMix(r=0.02, w=0.30, p=0.0, e=0.68, total=1000)
        assert self.clf.classify(rand) is WorkloadGroup.RANDOM_WRITE
        assert self.clf.classify(seq) is WorkloadGroup.SEQUENTIAL_WRITE

    def test_small_queue_is_unknown(self):
        mix = QueueMix(r=1.0, w=0.0, p=0.0, e=0.0, total=3)
        assert self.clf.classify(mix) is WorkloadGroup.UNKNOWN

    def test_impossible_pairs_unknown(self):
        # R+E and W+P "may not occur" per the paper
        re_mix = QueueMix(r=0.55, w=0.0, p=0.0, e=0.45, total=1000)
        wp_mix = QueueMix(r=0.0, w=0.55, p=0.45, e=0.0, total=1000)
        assert self.clf.classify(re_mix) is WorkloadGroup.UNKNOWN
        assert self.clf.classify(wp_mix) is WorkloadGroup.UNKNOWN

    def test_degenerate_single_tag_mixes(self):
        assert (
            self.clf.classify(QueueMix(0.99, 0.01, 0.0, 0.0, 1000))
            is WorkloadGroup.RANDOM_READ
        )
        assert (
            self.clf.classify(QueueMix(0.01, 0.99, 0.0, 0.0, 1000))
            is WorkloadGroup.RANDOM_WRITE
        )

    def test_mixed_read_floor(self):
        # W-dominated with tiny R is write-intensive, not mixed
        mix = QueueMix(r=0.08, w=0.88, p=0.0, e=0.04, total=1000)
        assert self.clf.classify(mix) is WorkloadGroup.RANDOM_WRITE

    def test_from_counts_normalizes(self):
        mix = QueueMix.from_counts(counts(r=44, w=2, p=51, e=3))
        assert mix.total == 100
        assert mix.r == pytest.approx(0.44)
        assert mix.top_two() == ("P", "R")

    def test_empty_counts(self):
        mix = QueueMix.from_counts(Counter())
        assert mix.total == 0
        assert WorkloadCharacterizer().classify(mix) is WorkloadGroup.UNKNOWN

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CharacterizerConfig(p_dominance=0).validate()
        with pytest.raises(ValueError):
            CharacterizerConfig(min_queue_ops=-1).validate()
        with pytest.raises(ValueError):
            CharacterizerConfig(min_secondary_share=0.6).validate()


class TestPolicyTable:
    def test_paper_assignment(self):
        table = default_policy_table()
        assert table[WorkloadGroup.RANDOM_READ].policy is WritePolicy.WO
        assert table[WorkloadGroup.MIXED_RW].policy is WritePolicy.RO
        assert table[WorkloadGroup.RANDOM_WRITE].policy is WritePolicy.WB
        assert table[WorkloadGroup.RANDOM_WRITE].tail_bypass
        assert table[WorkloadGroup.SEQUENTIAL_WRITE].tail_bypass
        assert table[WorkloadGroup.SEQUENTIAL_READ].policy is WritePolicy.WB
        assert not table[WorkloadGroup.SEQUENTIAL_READ].tail_bypass
        assert table[WorkloadGroup.UNKNOWN].policy is None


class TestBalancer:
    def test_threshold_from_disk_queue_time(self, sim, controller, ssd, hdd):
        balancer = TailBypassBalancer(controller, ssd, hdd)
        # empty disk queue → threshold floor of 1
        assert balancer.threshold_ops() >= 1

    def test_rebalance_moves_tail_writes(self, sim, controller, ssd, hdd):
        balancer = TailBypassBalancer(controller, ssd, hdd, max_bypass_per_round=4)
        # spaced addresses: contiguous ones would merge in the queue
        reqs = [Request(0.0, 100 + i * 50, 1, True) for i in range(10)]
        for r in reqs:
            controller.submit(r)
        event = balancer.rebalance(0.0)
        assert event.bypassed > 0
        assert balancer.total_bypassed == event.bypassed
        sim.run()
        assert all(r.done for r in reqs)
        assert any(r.bypassed for r in reqs)

    def test_rebalance_respects_bound(self, sim, controller, ssd, hdd):
        balancer = TailBypassBalancer(controller, ssd, hdd, max_bypass_per_round=2)
        for i in range(20):
            controller.submit(Request(0.0, 2000 + i * 50, 1, True))
        event = balancer.rebalance(0.0)
        assert event.bypassed <= 2

    def test_no_candidates_below_threshold(self, sim, controller, ssd, hdd):
        balancer = TailBypassBalancer(controller, ssd, hdd)
        controller.submit(Request(0.0, 300, 1, True))
        event = balancer.rebalance(0.0)
        assert event.bypassed == 0

    def test_invalid_bound(self, sim, controller, ssd, hdd):
        with pytest.raises(ValueError):
            TailBypassBalancer(controller, ssd, hdd, max_bypass_per_round=0)


class TestLbicaController:
    def _build(self, sim, controller, ssd, hdd, **cfg_kw):
        tracer = BlkTracer(sim)
        tracer.attach(ssd)
        tracer.attach(hdd)
        defaults = dict(
            decision_interval_us=1000.0,
            min_cache_qtime_us=0.0,
            confirm_ticks=1,
        )
        defaults.update(cfg_kw)
        lbica = LbicaController(
            sim, controller, ssd, hdd, tracer, LbicaConfig(**defaults)
        )
        return lbica

    def test_assigns_wo_on_random_read_burst(self, sim, controller, ssd, hdd, store):
        lbica = self._build(sim, controller, ssd, hdd)
        lbica.start()
        # hit reads (spaced: no merging) feeding across the decision tick
        # so the SSD queue is rising when LBICA evaluates
        for lba in range(0, 4000, 50):
            store.insert(lba, 0.0)

        def feed():
            for lba in range(0, 4000, 50):
                controller.submit(Request(sim.now, lba, 1, False))

        feed()
        sim.schedule(950.0, feed)
        sim.run(until=1000.0)
        assert controller.policy is WritePolicy.WO
        assert lbica.decisions[0].burst
        assert lbica.decisions[0].group is WorkloadGroup.RANDOM_READ

    def test_no_burst_no_action(self, sim, controller, ssd, hdd):
        lbica = self._build(sim, controller, ssd, hdd, min_cache_qtime_us=1e9)
        lbica.start()
        controller.submit(Request(0.0, 1, 1, False))
        sim.run(until=1000.0)
        assert controller.policy is WritePolicy.WB
        assert not lbica.decisions[0].burst

    def test_confirmation_delays_assignment(self, sim, controller, ssd, hdd, store):
        lbica = self._build(sim, controller, ssd, hdd, confirm_ticks=3)
        lbica.start()
        for lba in range(60):
            store.insert(lba, 0.0)

        def feed():
            for lba in range(20):
                controller.submit(Request(sim.now, lba, 1, False))

        feed()
        sim.schedule(900.0, feed)
        sim.run(until=1500.0)
        # only 2 ticks so far → below confirm_ticks → still WB
        assert controller.policy is WritePolicy.WB

    def test_revert_after_quiet(self, sim, controller, ssd, hdd, store):
        lbica = self._build(
            sim, controller, ssd, hdd, revert_after_quiet=2, min_cache_qtime_us=0.0
        )
        lbica.start()
        controller.set_policy(WritePolicy.WO)
        sim.run(until=3000.0)  # idle ticks
        assert controller.policy is WritePolicy.WB

    def test_decision_log_shape(self, sim, controller, ssd, hdd):
        lbica = self._build(sim, controller, ssd, hdd)
        lbica.start()
        sim.run(until=3000.0)
        assert len(lbica.decisions) == 3
        assert [d.interval_index for d in lbica.decisions] == [0, 1, 2]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LbicaConfig(decision_interval_us=0).validate()
        with pytest.raises(ValueError):
            LbicaConfig(confirm_ticks=0).validate()
        with pytest.raises(ValueError):
            LbicaConfig(revert_after_quiet=0).validate()

    def test_windows_drained_without_window_mix(self, sim, controller, ssd, hdd):
        """Tracer windows must be drained every tick even when the window
        mix is not consulted — otherwise counts accumulate unboundedly and
        a later take_window_counts returns a stale multi-interval mix."""
        lbica = self._build(sim, controller, ssd, hdd, use_window_mix=False)
        lbica.start()
        for i in range(8):
            sim.schedule(i * 1000.0 + 10.0, controller.submit,
                         Request(0.0, i, 1, True))
        sim.run(until=8000.0)
        leftovers = lbica.tracer.take_window_counts(ssd.name)
        # only ops queued since the last tick (at t=8000) may remain
        assert sum(leftovers.values()) <= 1
