"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(2.0, fired.append, "early")
        sim.schedule(3.5, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(7.25, lambda: None)
        sim.run()
        assert sim.now == 7.25

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["a", "b"]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_run_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_cancel_is_lazy_but_counted_out(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        assert sim.pending_events == 1  # still in heap
        sim.run()
        assert sim.events_processed == 0

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        sim.cancel(drop)
        sim.run()
        assert fired == ["keep"]
        assert keep.active


class TestStepAndStop:
    def test_step_processes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert fired == [1, 2]
        assert not sim.step()

    def test_stop_interrupts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, lambda: sim.stop())
        sim.schedule(3.0, fired.append, 3)
        sim.run()
        assert fired == [1]
        sim.run()  # resumes
        assert fired == [1, 3]

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestCounters:
    def test_events_processed_counts_only_executed(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        ev = sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        sim.run()
        assert sim.events_processed == 5
