"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(2.0, fired.append, "early")
        sim.schedule(3.5, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(7.25, lambda: None)
        sim.run()
        assert sim.now == 7.25

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["a", "b"]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_run_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_cancel_is_lazy_but_counted_out(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        assert sim.pending_events == 1  # still in heap
        sim.run()
        assert sim.events_processed == 0

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        sim.cancel(drop)
        sim.run()
        assert fired == ["keep"]
        assert keep.active


class TestBatchScheduling:
    def test_sorted_batch_fires_in_order(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_sorted_at(
            [(1.0, fired.append, ("a",)), (2.0, fired.append, ("b",)), (2.0, fired.append, ("c",))]
        )
        assert len(events) == 3
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 2.0

    def test_batch_onto_empty_heap_appends_without_sifting(self):
        sim = Simulator()
        sim.schedule_sorted_at((float(i), (lambda: None), ()) for i in range(100))
        # a sorted batch on an empty calendar is stored in input order
        assert [entry[0] for entry in sim._heap] == [float(i) for i in range(100)]

    def test_batch_interleaves_with_existing_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "mid")
        sim.schedule_sorted_at([(1.0, fired.append, ("lo",)), (2.0, fired.append, ("hi",))])
        sim.run()
        assert fired == ["lo", "mid", "hi"]

    def test_unsorted_batch_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_sorted_at([(2.0, lambda: None, ()), (1.0, lambda: None, ())])

    def test_failed_batch_is_atomic(self):
        sim = Simulator()
        fired = []
        with pytest.raises(SimulationError):
            sim.schedule_sorted_at(
                [(1.0, fired.append, ("a",)), (0.5, fired.append, ("b",))]
            )
        assert sim.pending_events == 0  # nothing half-scheduled
        first = sim.schedule(1.0, fired.append, "ok")
        assert first.seq == 0  # no sequence numbers were consumed either
        sim.run()
        assert fired == ["ok"]

    def test_batch_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_sorted_at([(5.0, lambda: None, ())])

    def test_batch_events_are_cancellable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_sorted_at(
            [(1.0, fired.append, ("a",)), (2.0, fired.append, ("b",))]
        )
        sim.cancel(events[0])
        sim.run()
        assert fired == ["b"]


class TestBatchCallScheduling:
    """The chunked-arrival fast paths: schedule_sorted_calls / schedule_calls."""

    def test_sorted_calls_match_schedule_call_loop_order(self):
        # Duplicate timestamps spanning the batch boundary: global seq
        # order (batch entries in input order, then later singles) must
        # be identical to the equivalent schedule_call loop.
        batched, looped = Simulator(), Simulator()
        got_b, got_l = [], []
        triples = [(1.0, got_b.append, ("a",)), (2.0, got_b.append, ("b",)),
                   (2.0, got_b.append, ("c",))]
        batched.schedule_sorted_calls(triples)
        batched.schedule_call(2.0, got_b.append, "d")
        for t, _fn, args in triples:
            looped.schedule_call(t, got_l.append, *args)
        looped.schedule_call(2.0, got_l.append, "d")
        batched.run()
        looped.run()
        assert got_b == got_l == ["a", "b", "c", "d"]
        assert batched.events_processed == looped.events_processed == 4

    def test_sorted_calls_heapify_path_interleaves_with_singles(self):
        # A batch much larger than the calendar takes the heapify path;
        # pop order must still honour (time, seq) against prior singles.
        sim = Simulator()
        fired = []
        sim.schedule_call(2.5, fired.append, "single")
        sim.schedule_sorted_calls(
            (float(i), fired.append, (i,)) for i in range(50)
        )
        sim.run()
        assert fired.index("single") == 3  # after t=0,1,2, before t=3
        assert [x for x in fired if x != "single"] == list(range(50))

    def test_sorted_calls_shared_event_cancels_remaining_entries(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_sorted_calls(
            [(1.0, fired.append, ("a",)), (2.0, fired.append, ("b",)),
             (3.0, fired.append, ("c",))]
        )
        sim.schedule_at(1.5, sim.cancel, event)
        sim.run()
        # "a" already dispatched before the cancel; the rest of the
        # batch dies with the shared event.
        assert fired == ["a"]
        assert sim.events_processed == 2  # "a" + the cancelling event

    def test_sorted_calls_unsorted_batch_is_atomic(self):
        sim = Simulator()
        fired = []
        with pytest.raises(SimulationError):
            sim.schedule_sorted_calls(
                [(2.0, fired.append, ("a",)), (1.0, fired.append, ("b",))]
            )
        assert sim.pending_events == 0
        assert sim.schedule(1.0, fired.append, "ok").seq == 0  # no seq burned
        sim.run()
        assert fired == ["ok"]

    def test_sorted_calls_past_entry_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_sorted_calls([(5.0, lambda: None, ())])

    def test_sorted_calls_empty_batch_returns_inert_event(self):
        sim = Simulator()
        event = sim.schedule_sorted_calls([])
        assert sim.pending_events == 0
        sim.cancel(event)  # harmless: nothing shares it
        sim.run()
        assert sim.events_processed == 0

    def test_sorted_calls_drain_honours_stop(self):
        sim = Simulator()
        fired = []
        sim.schedule_sorted_calls(
            [(1.0, fired.append, ("a",)), (2.0, sim.stop, ()),
             (3.0, fired.append, ("c",))]
        )
        sim.run()
        assert fired == ["a"]
        sim.run()  # resumes where stop() left off
        assert fired == ["a", "c"]

    def test_schedule_calls_matches_schedule_call_loop(self):
        batched, looped = Simulator(), Simulator()
        got_b, got_l = [], []
        delays = [(3.0, got_b.append, ("x",)), (1.0, got_b.append, ("y",)),
                  (1.0, got_b.append, ("z",))]
        batched.schedule_calls(delays)
        for d, _fn, args in delays:
            looped.schedule_call(d, got_l.append, *args)
        batched.run()
        looped.run()
        assert got_b == got_l == ["y", "z", "x"]

    def test_schedule_calls_negative_delay_is_atomic(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_calls(
                [(1.0, lambda: None, ()), (-0.5, lambda: None, ())]
            )
        assert sim.pending_events == 0
        assert sim.schedule(1.0, lambda: None).seq == 0


class TestScheduleCall:
    def test_schedule_call_fires_like_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule_call(2.0, fired.append, "x")
        sim.schedule(1.0, fired.append, "y")
        sim.run()
        assert fired == ["y", "x"]
        assert sim.events_processed == 2

    def test_schedule_call_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_call(-0.5, lambda: None)


class TestStepAndStop:
    def test_step_processes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert fired == [1, 2]
        assert not sim.step()

    def test_stop_interrupts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, lambda: sim.stop())
        sim.schedule(3.0, fired.append, 3)
        sim.run()
        assert fired == [1]
        sim.run()  # resumes
        assert fired == [1, 3]

    def test_stop_then_step_clears_stop_like_run_does(self):
        # Regression (ISSUE 2): step() used to bypass the _running/_stopped
        # bookkeeping and silently carry a stale stop() request across calls.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.stop()
        assert sim.stop_requested
        assert sim.step()  # a prior stop() is cleared on entry, as in run()
        assert fired == [1]
        assert not sim.stop_requested
        sim.run()
        assert fired == [1, 2]

    def test_step_maintains_running_flag(self):
        sim = Simulator()
        observed = []
        sim.schedule(1.0, lambda: observed.append(sim.running))
        assert not sim.running
        sim.step()
        assert observed == [True]
        assert not sim.running

    def test_stop_during_step_is_visible_afterwards(self):
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: None)
        sim.step()
        assert sim.stop_requested  # recorded, and cleared by the next run()
        sim.run()
        assert sim.events_processed == 2

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestCounters:
    def test_events_processed_counts_only_executed(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        ev = sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        sim.run()
        assert sim.events_processed == 5
