"""Unit tests for the device queue: FIFO, merging, stealing, accounting."""

from collections import Counter

from repro.io.device_queue import DeviceQueue
from repro.io.request import DeviceOp, OpTag


def op(lba=0, n=1, write=False, tag=OpTag.READ, stealable=True):
    return DeviceOp(lba, n, is_write=write, tag=tag, stealable=stealable)


class TestFifo:
    def test_pop_order_is_fifo(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        ops = [op(lba=i * 10) for i in range(5)]
        for o in ops:
            q.push(o, now=0.0)
        popped = [q.pop_next(1.0) for _ in range(5)]
        assert popped == ops

    def test_pop_empty_returns_none(self):
        q = DeviceQueue("d")
        assert q.pop_next(0.0) is None

    def test_qsize_counts_pending_and_inflight(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        q.push(op(0), 0.0)
        q.push(op(10), 0.0)
        assert q.qsize == 2
        o = q.pop_next(1.0)
        assert q.qsize == 2  # one pending + one inflight
        q.complete(o, 2.0)
        assert q.qsize == 1

    def test_timestamps_recorded(self):
        q = DeviceQueue("d")
        o = op()
        q.push(o, 1.0)
        assert o.enqueue_time == 1.0
        q.pop_next(3.0)
        assert o.dispatch_time == 3.0
        q.complete(o, 9.0)
        assert o.complete_time == 9.0


class TestMerging:
    def test_back_merge_against_tail(self):
        q = DeviceQueue("d", max_merge_blocks=8)
        a = op(0, 2, write=True, tag=OpTag.WRITE)
        b = op(2, 2, write=True, tag=OpTag.WRITE)
        assert not q.push(a, 0.0)
        assert q.push(b, 0.0)  # merged
        assert len(q.pending) == 1
        assert a.nblocks == 4
        assert q.stats.merged == 1

    def test_merge_disabled_with_zero_bound(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        q.push(op(0, 2, write=True, tag=OpTag.WRITE), 0.0)
        assert not q.push(op(2, 2, write=True, tag=OpTag.WRITE), 0.0)
        assert len(q.pending) == 2

    def test_merge_only_against_tail(self):
        q = DeviceQueue("d", max_merge_blocks=8)
        q.push(op(0, 2, write=True, tag=OpTag.WRITE), 0.0)
        q.push(op(100, 1), 0.0)  # interleaved read
        assert not q.push(op(2, 2, write=True, tag=OpTag.WRITE), 0.0)
        assert len(q.pending) == 3

    def test_snapshot_counts_merged_ops_individually(self):
        q = DeviceQueue("d", max_merge_blocks=8)
        q.push(op(0, 1, write=True, tag=OpTag.WRITE), 0.0)
        q.push(op(1, 1, write=True, tag=OpTag.WRITE), 0.0)
        counts = q.snapshot_tags()
        assert counts[OpTag.WRITE] == 2


class TestSnapshot:
    def test_tag_composition(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        q.push(op(0, tag=OpTag.READ), 0.0)
        q.push(op(10, write=True, tag=OpTag.WRITE), 0.0)
        q.push(op(20, write=True, tag=OpTag.PROMOTE), 0.0)
        q.push(op(30, tag=OpTag.EVICT), 0.0)
        q.push(op(40, tag=OpTag.READ), 0.0)
        assert q.snapshot_tags() == Counter(
            {OpTag.READ: 2, OpTag.WRITE: 1, OpTag.PROMOTE: 1, OpTag.EVICT: 1}
        )

    def test_inflight_not_in_snapshot(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        q.push(op(0, tag=OpTag.READ), 0.0)
        q.push(op(10, tag=OpTag.EVICT), 0.0)
        q.pop_next(1.0)
        assert q.snapshot_tags() == Counter({OpTag.EVICT: 1})


class TestStealTail:
    def test_steals_from_tail(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        ops = [op(lba=i) for i in range(5)]
        for o in ops:
            q.push(o, 0.0)
        stolen = q.steal_tail(2, 1.0)
        assert stolen == [ops[4], ops[3]]
        assert list(q.pending) == ops[:3]
        assert q.stats.stolen == 2

    def test_unstealable_ops_left_in_place(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        a = op(0)
        b = op(1, stealable=False)
        c = op(2)
        for o in (a, b, c):
            q.push(o, 0.0)
        stolen = q.steal_tail(5, 1.0)
        assert stolen == [c, a]
        assert list(q.pending) == [b]

    def test_predicate_filters(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        r = op(0, tag=OpTag.READ)
        w = op(1, write=True, tag=OpTag.WRITE)
        for o in (r, w):
            q.push(o, 0.0)
        stolen = q.steal_tail(5, 1.0, predicate=lambda o: o.tag is OpTag.WRITE)
        assert stolen == [w]
        assert list(q.pending) == [r]

    def test_steal_zero_returns_empty(self):
        q = DeviceQueue("d")
        q.push(op(0), 0.0)
        assert q.steal_tail(0, 1.0) == []

    def test_order_preserved_after_partial_steal(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        ops = [op(lba=i, stealable=(i % 2 == 0)) for i in range(6)]
        for o in ops:
            q.push(o, 0.0)
        q.steal_tail(2, 1.0)  # steals lba 4 and 2 (even, from tail)
        assert [o.lba for o in q.pending] == [0, 1, 3, 5]


class TestEstimatedWait:
    def test_position_scaled_estimates(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        for i in range(3):
            q.push(op(lba=i * 10), 0.0)
        est = q.estimated_wait(100.0)
        assert [w for _, w in est] == [100.0, 200.0, 300.0]


class TestOccupancyWindows:
    def test_window_max_tracks_peak(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        q.reset_window(0.0)
        q.push(op(0), 1.0)
        q.push(op(1), 2.0)
        o = q.pop_next(3.0)
        q.complete(o, 4.0)
        avg, peak = q.window_stats(10.0)
        assert peak == 2
        assert 0.0 < avg < 2.0

    def test_reset_window_clears_peak(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        q.reset_window(0.0)
        q.push(op(0), 1.0)
        o = q.pop_next(2.0)
        q.complete(o, 3.0)
        q.reset_window(5.0)
        avg, peak = q.window_stats(6.0)
        assert peak == 0
        assert avg == 0.0

    def test_time_weighted_average(self):
        q = DeviceQueue("d", max_merge_blocks=0)
        q.reset_window(0.0)
        q.push(op(0), 0.0)  # qsize 1 for the whole window
        avg, _ = q.window_stats(10.0)
        assert avg == 1.0
