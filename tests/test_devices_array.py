"""Unit tests for the striped disk-array model."""

import pytest

from repro.devices.array import StripedArrayModel
from repro.devices.base import StorageDevice
from repro.devices.hdd import HddConfig
from repro.io.request import DeviceOp, OpTag
from repro.sim.engine import Simulator


def read_op(lba, n=1):
    return DeviceOp(lba, n, is_write=False, tag=OpTag.READ)


class TestRouting:
    def test_stripes_round_robin(self):
        array = StripedArrayModel(n_disks=4, stripe_blocks=8)
        assert array.spindle_for(0) == 0
        assert array.spindle_for(8) == 1
        assert array.spindle_for(16) == 2
        assert array.spindle_for(24) == 3
        assert array.spindle_for(32) == 0

    def test_within_stripe_same_spindle(self):
        array = StripedArrayModel(n_disks=4, stripe_blocks=8)
        assert array.spindle_for(3) == array.spindle_for(7) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StripedArrayModel(n_disks=0)
        with pytest.raises(ValueError):
            StripedArrayModel(stripe_blocks=0)


class TestServiceBehaviour:
    def test_spindles_keep_independent_head_state(self):
        cfg = HddConfig(jitter_sigma=0.0)
        array = StripedArrayModel(n_disks=2, stripe_blocks=8, config=cfg)
        # prime spindle 0's head far from the origin (stripe 12500 → disk 0)
        array.service_time(read_op(100_000, 8), 0.0)
        # spindle 0 sequential continuation (stripe 12502 → disk 0): cheap
        t0 = array.service_time(read_op(100_016, 8), 0.0)
        # spindle 1 (stripe 25001 → disk 1) still has its head at 0: far seek
        t1 = array.service_time(read_op(200_008, 8), 0.0)
        assert t0 < t1

    def test_nominal_latencies_are_single_spindle(self):
        cfg = HddConfig(jitter_sigma=0.0)
        array = StripedArrayModel(n_disks=8, config=cfg)
        single = StripedArrayModel(n_disks=1, config=cfg)
        assert array.nominal_read_us == single.nominal_read_us
        assert array.nominal_write_us == single.nominal_write_us


class TestThroughputScaling:
    def _sweep(self, n_disks: int) -> float:
        """Time to serve 64 random reads spread across stripes."""
        sim = Simulator()
        cfg = HddConfig(jitter_sigma=0.0)
        array = StripedArrayModel(n_disks=n_disks, stripe_blocks=1, config=cfg)
        dev = StorageDevice(sim, "array", array, depth=n_disks)
        for i in range(64):
            dev.submit(read_op(i * 997))  # scattered addresses
        sim.run()
        return sim.now

    def test_more_spindles_finish_sooner(self):
        t1 = self._sweep(1)
        t4 = self._sweep(4)
        assert t4 < t1 / 2  # at least 2× speedup from 4 spindles

    def test_array_as_disk_subsystem_absorbs_bypass(self):
        """A 4-spindle subsystem absorbs a write storm a single spindle
        cannot — quantifying the disk-side headroom LBICA's bypass
        relies on."""
        def storm(n_disks):
            sim = Simulator()
            cfg = HddConfig(jitter_sigma=0.0, write_cache_slots=8, destage_us=2000.0)
            array = StripedArrayModel(n_disks=n_disks, stripe_blocks=1, config=cfg)
            dev = StorageDevice(sim, "array", array, depth=n_disks)
            for i in range(128):
                dev.submit(DeviceOp(i * 997, 1, is_write=True, tag=OpTag.WRITE))
            sim.run()
            return sim.now

        assert storm(4) < storm(1)
