"""Multi-VM composition, per-tenant accounting, and the parallel grid."""

import pytest

from repro.config import quick_config
from repro.experiments.runner import ExperimentRunner, run_grid
from repro.experiments.system import (
    ExperimentSystem,
    WORKLOADS,
    register_consolidation,
)
from repro.io.request import Request
from repro.workloads.multi_tenant import (
    MultiTenantWorkload,
    TenantSpec,
    consolidated3_workload,
)
from repro.workloads.web import web_server_workload


@pytest.fixture(scope="module")
def consolidated_result():
    """One consolidated3/wb quick run, shared across accounting tests."""
    return ExperimentRunner(quick_config()).run("consolidated3", "wb")


class TestComposition:
    def test_registered_scenarios_present(self):
        assert "consolidated3" in WORKLOADS
        assert "bootstorm_neighbors" in WORKLOADS

    def test_compose_builds_tenants(self):
        wl = consolidated3_workload(15_000.0, cache_blocks=1024)
        assert wl.tenant_count == 3
        assert wl.name == "consolidated3"
        assert [c.name for c in wl.children] == ["tpcc", "mail", "web"]

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            MultiTenantWorkload("x", [], lba_stride_blocks=1024)

    def test_nested_composition_rejected(self):
        inner = consolidated3_workload(15_000.0, cache_blocks=1024)
        with pytest.raises(ValueError):
            MultiTenantWorkload("x", [inner], lba_stride_blocks=1024)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            TenantSpec(web_server_workload, rate_scale=0.0).validate()
        with pytest.raises(ValueError):
            TenantSpec(web_server_workload, offset_intervals=-1).validate()

    def test_warm_blocks_disjoint_across_tenants(self):
        wl = consolidated3_workload(15_000.0, cache_blocks=1024)
        stride = wl.lba_stride_blocks
        regions = [
            set(range(tid * stride, (tid + 1) * stride))
            for tid in range(wl.tenant_count)
        ]
        warm = wl.warm_blocks + wl.warm_dirty_blocks
        for lba in warm:
            owners = [tid for tid, region in enumerate(regions) if lba in region]
            assert len(owners) == 1, f"warm block {lba} not in exactly one region"

    def test_phase_offset_shifts_duration(self):
        base = web_server_workload(15_000.0, cache_blocks=512)
        shifted = web_server_workload(15_000.0, cache_blocks=512)
        wl = MultiTenantWorkload(
            "pair",
            [base, shifted],
            lba_stride_blocks=512 * 256,
            offsets_us=[0.0, 10 * 15_000.0],
        )
        assert wl.duration_us == base.duration_us + 10 * 15_000.0

    def test_burst_intervals_offset_adjusted(self):
        a = web_server_workload(15_000.0, cache_blocks=512)
        b = web_server_workload(15_000.0, cache_blocks=512)
        wl = MultiTenantWorkload(
            "pair",
            [a, b],
            lba_stride_blocks=512 * 256,
            offsets_us=[0.0, 7 * 15_000.0],
        )
        bursts = set(wl.burst_intervals())
        assert set(a.burst_intervals()).issubset(bursts)
        assert all(i + 7 in bursts for i in b.burst_intervals())


class TestPerTenantAccounting:
    def test_tenants_observed(self, consolidated_result):
        assert consolidated_result.tenant_ids == [0, 1, 2]

    def test_tenant_completions_sum_to_aggregate(self, consolidated_result):
        res = consolidated_result
        assert sum(ts["completed"] for ts in res.tenant_stats.values()) == res.completed

    def test_tenant_latencies_sum_to_aggregate(self, consolidated_result):
        res = consolidated_result
        merged = sorted(
            lat for lats in res.tenant_latencies.values() for lat in lats
        )
        assert merged == sorted(res.latencies)

    def test_tenant_bypassed_sum_to_aggregate(self, consolidated_result):
        res = consolidated_result
        assert (
            sum(ts["bypassed"] for ts in res.tenant_stats.values())
            == res.bypassed_requests
        )

    def test_interval_samples_carry_tenant_breakdown(self, consolidated_result):
        samples = consolidated_result.samples
        assert sum(s.completed for s in samples) == sum(
            sum(s.tenant_completed.values()) for s in samples
        )
        busy = [s for s in samples if s.completed]
        assert busy and all(s.tenant_completed for s in busy)

    def test_single_tenant_run_uses_tenant_zero(self):
        res = ExperimentRunner(quick_config()).run("web", "wb")
        assert res.tenant_ids == [0]
        assert res.tenant_stats[0]["completed"] == res.completed

    def test_summary_and_table_mention_vms(self, consolidated_result):
        assert "vm0" in consolidated_result.summary()
        table = consolidated_result.tenant_table()
        assert "hit ratio" in table and table.count("\n") == 3

    def test_two_identical_vms_get_symmetric_latencies(self):
        cfg = quick_config()
        wl = MultiTenantWorkload.compose(
            "twins",
            [TenantSpec(web_server_workload), TenantSpec(web_server_workload)],
            cfg.interval_us,
            cache_blocks=cfg.cache_blocks,
            max_outstanding=cfg.max_outstanding,
        )
        res = ExperimentSystem(wl, "wb", cfg).run()
        assert res.tenant_ids == [0, 1]
        m0 = res.tenant_stats[0]["mean_latency"]
        m1 = res.tenant_stats[1]["mean_latency"]
        assert m0 > 0 and m1 > 0
        # identical scripts on a fair-shared cache: means agree within 25%
        assert abs(m0 - m1) / max(m0, m1) < 0.25
        c0 = res.tenant_stats[0]["completed"]
        c1 = res.tenant_stats[1]["completed"]
        assert abs(c0 - c1) / max(c0, c1) < 0.25


class TestTenantStatsLookup:
    """``tenant_stats`` must raise for an id the composition never had —
    fabricating an empty entry silently mislabels analysis code — while
    a departed tenant's id stays valid with its pre-departure counters."""

    def test_full_map_without_argument(self):
        wl = consolidated3_workload(15_000.0, cache_blocks=1024)
        stats = wl.tenant_stats()
        assert sorted(stats) == [0, 1, 2]

    def test_never_existent_tenant_raises(self):
        wl = consolidated3_workload(15_000.0, cache_blocks=1024)
        with pytest.raises(KeyError, match="tenants 0..2"):
            wl.tenant_stats(3)
        with pytest.raises(KeyError):
            wl.tenant_stats(-1)

    def test_single_tenant_lookup_matches_map(self):
        wl = consolidated3_workload(15_000.0, cache_blocks=1024)
        assert wl.tenant_stats(1) is wl.tenant_stats()[1]

    def test_departed_tenant_stats_stay_readable(self):
        wl = consolidated3_workload(15_000.0, cache_blocks=1024)
        wl.stop_tenant(2)
        stats = wl.tenant_stats(2)
        assert stats.finished
        assert wl.tenant_stats(2) is wl.children[2].stats

    def test_service_lookups_check_tenant_ids_too(self):
        wl = consolidated3_workload(15_000.0, cache_blocks=1024)
        with pytest.raises(KeyError):
            wl.tenant_region(7)
        with pytest.raises(KeyError):
            wl.tenant_warm_blocks(7)
        with pytest.raises(KeyError):
            wl.stop_tenant(7)
        lo, hi = wl.tenant_region(1)
        assert (lo, hi) == (wl.lba_stride_blocks, 2 * wl.lba_stride_blocks)


class TestConsolidatedScenarios:
    def test_lbica_beats_wb_on_consolidated3(self, consolidated_result):
        lbica = ExperimentRunner(quick_config()).run("consolidated3", "lbica")
        assert lbica.mean_latency < consolidated_result.mean_latency

    def test_bootstorm_neighbors_runs(self):
        res = ExperimentRunner(quick_config()).run("bootstorm_neighbors", "wb")
        assert res.tenant_ids == [0, 1]
        assert all(ts["completed"] > 0 for ts in res.tenant_stats.values())

    def test_register_consolidation(self):
        name = register_consolidation(["web", "web"])
        assert name in WORKLOADS
        wl = WORKLOADS[name](15_000.0, 1024, 1.0, 64)
        assert wl.tenant_count == 2
        # idempotent re-registration
        assert register_consolidation(["web", "web"]) == name

    def test_register_consolidation_unknown_rejected(self):
        with pytest.raises(ValueError):
            register_consolidation(["nope"])
        with pytest.raises(ValueError):
            register_consolidation([])

    def test_register_consolidation_rejects_multi_tenant_names(self):
        # nesting must fail at registration time, not mid-figure
        with pytest.raises(ValueError):
            register_consolidation(["consolidated3", "web"])
        name = register_consolidation(["web", "tpcc"])
        with pytest.raises(ValueError):
            register_consolidation([name])

    def test_build_rebuilds_vms_names_from_cold_registry(self):
        """A spawn-started worker never saw the parent's registration;
        the self-describing vms: name must rebuild it."""
        name = register_consolidation(["tpcc", "web"])
        WORKLOADS.pop(name)  # simulate a fresh process's registry
        system = ExperimentSystem.build(name, "wb", quick_config())
        assert system.workload.tenant_count == 2
        assert name in WORKLOADS


class TestParallelGrid:
    def test_parallel_matches_serial(self):
        cfg = quick_config()
        serial = run_grid(
            workloads=("web",), schemes=("wb", "lbica"), config=cfg, max_workers=1
        )
        parallel = run_grid(
            workloads=("web",), schemes=("wb", "lbica"), config=cfg, max_workers=2
        )
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key].summary() == parallel[key].summary()
            assert serial[key].latencies == parallel[key].latencies
            assert (
                serial[key].cache_load_series() == parallel[key].cache_load_series()
            )
            assert serial[key].tenant_stats == parallel[key].tenant_stats

    def test_parallel_populates_memo_cache(self):
        runner = ExperimentRunner(quick_config())
        grid = runner.run_many(("web",), ("wb", "sib"), max_workers=2)
        # a subsequent serial call returns the cached objects
        assert runner.run("web", "wb") is grid[("web", "wb")]

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(quick_config()).run_many(max_workers=0)


class TestRngDerivation:
    @staticmethod
    def _arrivals(n_tenants, seed, until_us=2_000.0):
        from repro.sim.engine import Simulator

        import numpy as np

        specs = [TenantSpec(web_server_workload) for _ in range(n_tenants)]
        wl = MultiTenantWorkload.compose(
            "twins", specs, 15_000.0, cache_blocks=512, max_outstanding=4096
        )
        sim = Simulator()
        arrivals: dict[int, list[float]] = {}
        wl.bind(
            sim,
            lambda r: arrivals.setdefault(r.tenant_id, []).append(r.arrival),
            np.random.default_rng(seed),
        )
        sim.run(until=until_us)
        return arrivals

    def test_reproducible_from_seed(self):
        assert self._arrivals(2, seed=9) == self._arrivals(2, seed=9)

    def test_tenants_draw_independent_streams(self):
        arrivals = self._arrivals(2, seed=9)
        assert arrivals[0] != arrivals[1]

    def test_appending_tenant_preserves_existing_streams(self):
        two = self._arrivals(2, seed=9)
        three = self._arrivals(3, seed=9)
        assert two[0] == three[0]
        assert two[1] == three[1]


class TestRequestTenantId:
    def test_default_zero(self):
        assert Request(0.0, 0, 1, False).tenant_id == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Request(0.0, 0, 1, False, tenant_id=-1)
