"""Tests for the declarative scenario layer (``repro.scenario``).

The load-bearing guarantee: a scenario expressed as data — including a
JSON round-trip — runs **bit-identically** to its code-built equivalent.
The committed golden file under ``benchmarks/golden/`` *is* the
code-built fingerprint of every canonical suite scenario, so each
canonical scenario gets one spec-built-equals-golden test.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.config import quick_config
from repro.experiments.runner import run_spec_grid
from repro.experiments.system import ExperimentSystem
from repro.scenario import (
    ScenarioError,
    ScenarioSpec,
    get_scenario,
    load_scenario,
    register_scenario,
    scenario_descriptions,
    stats_fingerprint,
)
from repro.scenario.smoke import run_smoke

_REPO = Path(__file__).resolve().parent.parent
GOLDEN = json.loads(
    (_REPO / "benchmarks" / "golden" / "suite_quick.json").read_text()
)
EXAMPLES = _REPO / "examples" / "scenarios"


def _normalized(stats: dict) -> dict:
    """Round-trip through JSON so floats/keys compare like the golden."""
    return json.loads(json.dumps(stats, sort_keys=True))


def _quick_spec(payload: dict) -> ScenarioSpec:
    """A spec from dict form, forced through a JSON round-trip first."""
    return ScenarioSpec.from_dict(json.loads(json.dumps(payload)))


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ScenarioSpec(
            name="rt",
            workload="mail",
            scheme="sib",
            base="quick",
            system={"seed": 11, "lbica": {"margin": 2.0}},
            fixed_policy=None,
            horizon_intervals=5,
            sweep_axes={"scheme": ["wb", "sib"]},
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.to_dict() == spec.to_dict()

    def test_json_round_trip_via_file(self, tmp_path):
        spec = get_scenario("consolidated3")
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        assert load_scenario(path) == spec

    def test_sweep_key_maps_to_sweep_axes(self):
        spec = _quick_spec({"name": "s", "sweep": {"scheme": ["wb", "lbica"]}})
        assert spec.sweep_axes == {"scheme": ["wb", "lbica"]}
        assert spec.to_dict()["sweep"] == {"scheme": ["wb", "lbica"]}

    def test_to_dict_is_deep_copied(self):
        spec = _quick_spec({"name": "s", "system": {"seed": 1}})
        spec.to_dict()["system"]["seed"] = 99
        assert spec.system["seed"] == 1


class TestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            {"name": "x", "bogus": 1},
            {"name": "x", "scheme": "nope"},
            {"name": "x", "base": "mega"},
            {"name": "x", "fixed_policy": "XX"},
            {"name": "x", "horizon_intervals": 0},
            {"name": "x", "horizon_intervals": -3},
            {"name": "x", "system": {"cache_bloks": 4096}},
            {"name": "x", "system": {"lbica": {"margn": 2}}},
            {"name": "x", "system": {"ssd": {"read_us": 90, "bogus": 1}}},
            {"name": "x", "workload": "no_such_workload"},
            {"name": "x", "workload": 42},
            {"name": "x", "sweep": {"name": ["a", "b"]}},
            {"name": "x", "sweep": {"scheme.sub": ["wb"]}},
            {"name": "x", "sweep": {"scheme": []}},
            {"name": "x", "sweep": {"scheme": "wb"}},
            {"bogus_only": True},
        ],
    )
    def test_rejects(self, payload):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(payload)

    def test_rejects_invalid_system_values(self):
        with pytest.raises(ValueError):
            _quick_spec({"name": "x", "system": {"cache_blocks": -1}}).validate()

    def test_rejects_malformed_inline_workload(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict(
                {"name": "x", "workload": {"name": "w", "phases": []}}
            )

    def test_vms_consolidation_names_accepted(self):
        spec = _quick_spec({"name": "x", "workload": "vms:web+web", "base": "quick"})
        assert spec.workload == "vms:web+web"


class TestConfig:
    def test_from_config_round_trips_exactly(self):
        config = quick_config(seed=23)
        spec = ScenarioSpec.from_config(config, workload="web", scheme="sib")
        assert spec.to_config() == config

    def test_base_presets(self):
        assert _quick_spec({"name": "q", "base": "quick"}).to_config() == quick_config()
        paper = _quick_spec({"name": "p"}).to_config()
        assert paper.interval_us == 50_000.0

    def test_int_widens_to_float_fields(self):
        spec = _quick_spec(
            {"name": "x", "base": "quick", "system": {"interval_us": 15000}}
        )
        config = spec.to_config()
        assert config.interval_us == 15_000.0
        assert isinstance(config.interval_us, float)
        assert config == quick_config()

    def test_nested_override_applies(self):
        spec = _quick_spec(
            {"name": "x", "system": {"lbica": {"margin": 2.5}, "hdd_disks": 4}}
        )
        config = spec.to_config()
        assert config.lbica.margin == 2.5
        assert config.hdd_disks == 4


class TestSweep:
    def test_expand_cartesian_product(self):
        spec = _quick_spec(
            {
                "name": "grid",
                "base": "quick",
                "sweep": {"workload": ["tpcc", "mail"], "scheme": ["wb", "lbica"]},
            }
        )
        grid = spec.expand()
        assert len(grid) == 4
        assert grid[0].name == "grid[workload=tpcc,scheme=wb]"
        assert all(g.sweep_axes == {} for g in grid)
        assert {(g.workload, g.scheme) for g in grid} == {
            ("tpcc", "wb"), ("tpcc", "lbica"), ("mail", "wb"), ("mail", "lbica"),
        }

    def test_sweep_dotted_system_path(self):
        spec = ScenarioSpec(name="s", base="quick")
        seeds = [3, 5]
        grid = spec.sweep({"system.seed": seeds})
        assert [g.to_config().seed for g in grid] == seeds
        assert [g.name for g in grid] == ["s[seed=3]", "s[seed=5]"]

    def test_sweep_does_not_mutate_base(self):
        spec = ScenarioSpec(name="s", base="quick")
        spec.sweep({"system.lbica.margin": [9.0]})
        assert spec.system == {}

    def test_running_unexpanded_sweep_raises(self):
        spec = _quick_spec(
            {"name": "s", "base": "quick", "sweep": {"scheme": ["wb", "sib"]}}
        )
        with pytest.raises(ScenarioError):
            spec.run()

    def test_expand_without_axes_is_identity_copy(self):
        spec = ScenarioSpec(name="solo", base="quick")
        grid = spec.expand()
        assert len(grid) == 1 and grid[0] == spec


class TestRegistry:
    def test_descriptions_cover_all(self):
        descriptions = scenario_descriptions()
        assert set(descriptions) >= {
            "fig4_single_vm", "consolidated3", "bootstorm_neighbors", "paper_grid",
        }
        assert all(descriptions.values())

    def test_get_scenario_returns_private_copy(self):
        spec = get_scenario("fig4_single_vm")
        spec.scheme = "wb"
        assert get_scenario("fig4_single_vm").scheme == "lbica"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario(get_scenario("fig4_single_vm"))

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            get_scenario("no_such_scenario")


class TestRun:
    def test_horizon_truncates(self):
        base = {"name": "h", "workload": "web", "base": "quick"}
        short = _quick_spec({**base, "horizon_intervals": 3}).run()
        assert len(short.samples) <= 3

    def test_fixed_policy_pins_controller(self):
        spec = _quick_spec(
            {
                "name": "ro",
                "workload": "web",
                "scheme": "wb",
                "base": "quick",
                "fixed_policy": "ro",
                "horizon_intervals": 5,
            }
        )
        system = spec.build()
        assert system.controller.policy.value == "RO"

    def test_experiment_system_from_spec(self):
        spec = _quick_spec({"name": "x", "workload": "web", "base": "quick"})
        system = ExperimentSystem.from_spec(spec)
        assert system.workload.name == "web"


class TestSmoke:
    def test_examples_library_smokes_clean(self):
        files = sorted(EXAMPLES.glob("*.json"))
        assert files, "examples/scenarios/ must not be empty"
        doc = run_smoke(files, horizon_intervals=2, verbose=False)
        assert doc["errors"] == {}
        assert len(doc["files"]) == len(files)
        for fingerprints in doc["files"].values():
            for fingerprint in fingerprints.values():
                assert fingerprint["completed"] >= 0

    def test_broken_file_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "bad", "scheme": "nope"}))
        doc = run_smoke([bad], horizon_intervals=2, verbose=False)
        assert str(bad) in doc["errors"]
        assert doc["files"] == {}


class TestCanonicalEquivalence:
    """One spec-equals-code-built fingerprint test per canonical suite
    scenario — the goldens are the committed code-built fingerprints."""

    def test_fig4_single_vm(self):
        spec = _quick_spec(
            {
                "name": "fig4_single_vm",
                "workload": "tpcc",
                "scheme": "lbica",
                "base": "quick",
                "system": {"seed": GOLDEN["seed"]},
            }
        )
        assert (
            _normalized(stats_fingerprint(spec.run()))
            == GOLDEN["scenarios"]["fig4_single_vm"]
        )

    def test_consolidated3_from_tenants_json(self):
        result = load_scenario(EXAMPLES / "consolidated3.json").run()
        assert (
            _normalized(stats_fingerprint(result))
            == GOLDEN["scenarios"]["consolidated3"]
        )

    def test_bootstorm_neighbors_from_tenants_json(self):
        result = load_scenario(EXAMPLES / "bootstorm_neighbors.json").run()
        assert (
            _normalized(stats_fingerprint(result))
            == GOLDEN["scenarios"]["bootstorm_neighbors"]
        )

    def test_grid_fanout_from_sweep(self):
        spec = get_scenario("paper_grid")
        spec.base = "quick"
        spec.system = {"seed": GOLDEN["seed"]}
        grid = run_spec_grid(spec.expand(), max_workers=2)
        assert len(grid) == 9
        for name, result in grid.items():
            cell = f"{result.workload}/{result.scheme}"
            assert (
                _normalized(stats_fingerprint(result))
                == GOLDEN["scenarios"]["grid_fanout"][cell]
            ), f"{name} diverges from golden {cell}"


CHURN_GOLDEN = json.loads(
    (_REPO / "benchmarks" / "golden" / "churn_quick.json").read_text()
)


class TestChurnScenarios:
    """The churn scenarios are pinned by their own committed golden:
    arrivals, departures, reclaim counters, and the SLO compliance
    series are all part of the fingerprint and must stay bit-identical
    across runs, process counts, and sessions."""

    def test_registered_builtin_matches_example_file(self):
        assert load_scenario(
            EXAMPLES / "churn_consolidated.json"
        ) == get_scenario("churn_consolidated")

    def test_churn_consolidated_matches_golden(self):
        result = load_scenario(EXAMPLES / "churn_consolidated.json").run()
        fingerprint = _normalized(stats_fingerprint(result))
        assert "slo_compliance" in fingerprint
        assert "service_stats" in fingerprint
        assert fingerprint == CHURN_GOLDEN["scenarios"]["churn_consolidated"]

    def test_churn_process_matches_golden(self):
        result = load_scenario(EXAMPLES / "churn_process.json").run()
        assert (
            _normalized(stats_fingerprint(result))
            == CHURN_GOLDEN["scenarios"]["churn_process"]
        )

    def test_churn_run_twice_bit_identical(self):
        spec = get_scenario("churn_consolidated")
        a, b = spec.run(), spec.run()
        assert stats_fingerprint(a) == stats_fingerprint(b)
        assert a.slo_series == b.slo_series
        assert a.service_stats == b.service_stats

    def test_churn_serial_vs_parallel_identical(self):
        specs = [
            get_scenario("churn_consolidated"),
            load_scenario(EXAMPLES / "churn_process.json"),
        ]
        serial = run_spec_grid(specs, max_workers=1)
        parallel = run_spec_grid(specs, max_workers=2)
        assert {n: stats_fingerprint(r) for n, r in serial.items()} == {
            n: stats_fingerprint(r) for n, r in parallel.items()
        }
        assert {n: r.slo_series for n, r in serial.items()} == {
            n: r.slo_series for n, r in parallel.items()
        }

    def test_churn_counters_reflect_lifecycles(self):
        result = get_scenario("churn_consolidated").run()
        stats = result.service_stats
        assert stats["arrivals"] == 1
        assert stats["departures"] == 1
        assert stats["departed"] == [2]
        assert stats["blocks_reclaimed"] > 0
        assert stats["blocks_rewarmed"] > 0
        # all three tenants declared SLOs; the monitor tracked each
        assert set(result.slo_stats["tenants"]) == {"0", "1", "2"}
        # the late arrival is judged over fewer intervals than tenant 0
        tenants = result.slo_stats["tenants"]
        assert tenants["1"]["intervals"] < tenants["0"]["intervals"]

    def test_non_churn_fingerprints_have_no_service_keys(self):
        spec = _quick_spec(
            {
                "name": "plain",
                "workload": "web",
                "base": "quick",
                "horizon_intervals": 2,
            }
        )
        fingerprint = stats_fingerprint(spec.run())
        assert "slo_compliance" not in fingerprint
        assert "service_stats" not in fingerprint

    def test_churn_spec_validation_errors(self):
        base = {
            "name": "x",
            "base": "quick",
            "workload": {
                "name": "w",
                "tenants": [{"workload": "web", "slo": {"bogus": 1}}],
            },
        }
        with pytest.raises(ValueError, match="unknown slo keys"):
            _quick_spec(base)
        bad_depart = json.loads(json.dumps(base))
        bad_depart["workload"]["tenants"][0] = {
            "workload": "web",
            "arrive_at_us": 100.0,
            "depart_at_us": 50.0,
        }
        with pytest.raises(ValueError, match="depart"):
            _quick_spec(bad_depart)
        churn_offset = json.loads(json.dumps(base))
        churn_offset["workload"]["tenants"][0] = {
            "workload": "web",
            "offset_intervals": 2,
        }
        churn_offset["workload"]["churn"] = {"seed": 3}
        with pytest.raises(ValueError, match="offset_intervals"):
            _quick_spec(churn_offset)


class TestSpecVsCodeBuilt:
    def test_spec_run_equals_code_built_run(self):
        # direct (non-golden) equivalence, including a system override
        config = dataclasses.replace(quick_config(3), hdd_disks=2)
        code_built = stats_fingerprint(
            ExperimentSystem.build("mail", "sib", config).run()
        )
        spec = _quick_spec(
            {
                "name": "mail_sib",
                "workload": "mail",
                "scheme": "sib",
                "base": "quick",
                "system": {"seed": 3, "hdd_disks": 2},
            }
        )
        assert stats_fingerprint(spec.run()) == code_built


class TestCodeReviewRegressions:
    def test_vms_workload_with_bad_component_rejected_at_validation(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(
                {"name": "x", "workload": "vms:nope+web", "base": "quick"}
            )

    def test_smoke_missing_file_recorded_not_raised(self, tmp_path):
        missing = tmp_path / "gone.json"
        doc = run_smoke([missing], horizon_intervals=2, verbose=False)
        assert str(missing) in doc["errors"]

    def test_sweep_kwargs_override_axes_mapping(self):
        spec = ScenarioSpec(name="s", base="quick")
        grid = spec.sweep({"scheme": ["wb"]}, scheme=["lbica"])
        assert [g.scheme for g in grid] == ["lbica"]

    def test_swept_values_are_validated_at_expansion(self):
        spec = ScenarioSpec(name="s", base="quick")
        with pytest.raises(ScenarioError):
            spec.sweep({"scheme": ["bogus"]})
        with pytest.raises(ScenarioError):
            spec.sweep({"base": ["quick", "Quick"]})

    def test_unknown_base_raises_instead_of_defaulting(self):
        spec = ScenarioSpec(name="s")
        spec.base = "Quick"  # bypass from_dict validation
        with pytest.raises(ScenarioError):
            spec.to_config()

    def test_load_scenario_wraps_spec_errors_with_path(self, tmp_path):
        path = tmp_path / "bad_inline.json"
        path.write_text(json.dumps({
            "name": "x", "base": "quick",
            "workload": {"name": "w", "phases": [
                {"label": "p", "n_intervals": 1,
                 "read_pattern": {"kind": "uniform", "start": 0, "span": 8}}
            ]},
        }))
        with pytest.raises(ScenarioError, match="bad_inline.json"):
            load_scenario(path)

    def test_leaf_type_mismatches_rejected(self):
        for system in (
            {"seed": {"foo": 1}},          # mapping onto a scalar
            {"hdd_depth": "two"},          # string onto an int
            {"interval_us": "fast"},       # string onto a float
            {"replacement": 3},            # int onto a string
            {"lbica": {"use_window_mix": "yes"}},  # string onto a bool
            {"cache_blocks": 1.5},         # float onto an int
        ):
            with pytest.raises(ScenarioError):
                _quick_spec({"name": "x", "system": system})

    def test_too_deep_sweep_path_rejected_at_expansion(self):
        spec = ScenarioSpec(name="s", base="quick")
        with pytest.raises(ScenarioError):
            spec.sweep({"system.seed.typo": [1, 2]})

    def test_duplicate_sweep_values_rejected_at_expansion(self):
        spec = ScenarioSpec(name="s", workload="web", base="quick")
        with pytest.raises(ScenarioError, match="duplicate"):
            spec.sweep({"system.seed": [1, 1]})
