"""Unit tests for the background writeback flusher."""

import pytest

from repro.cache.writeback import WritebackConfig, WritebackFlusher
from repro.io.request import Request


class TestConfig:
    def test_defaults_valid(self):
        WritebackConfig().validate()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            WritebackConfig(interval_us=0).validate()
        with pytest.raises(ValueError):
            WritebackConfig(low_watermark=0.5, high_watermark=0.2).validate()
        with pytest.raises(ValueError):
            WritebackConfig(batch=-1).validate()


class TestFlusher:
    def _dirty_fill(self, sim, controller, n):
        for lba in range(n):
            req = Request(sim.now, lba, 1, True)
            controller.submit(req)
        sim.run()

    def test_idle_below_low_watermark(self, sim, controller, store):
        cfg = WritebackConfig(
            interval_us=100.0, low_watermark=0.5, high_watermark=0.9, batch=4
        )
        flusher = WritebackFlusher(sim, controller, cfg)
        self._dirty_fill(sim, controller, 4)  # dirty ratio 4/64 < 0.5
        flusher.start()
        sim.run(until=sim.now + 1000.0)
        assert flusher.flushes_started == 0

    def test_flushes_above_watermark(self, sim, controller, store):
        cfg = WritebackConfig(
            interval_us=100.0, low_watermark=0.01, high_watermark=0.9, batch=2
        )
        flusher = WritebackFlusher(sim, controller, cfg)
        self._dirty_fill(sim, controller, 16)
        flusher.start()
        sim.run(until=sim.now + 300.0)
        assert flusher.flushes_started > 0

    def test_panic_batch_above_high_watermark(self, sim, controller, store):
        cfg = WritebackConfig(
            interval_us=100.0,
            low_watermark=0.01,
            high_watermark=0.05,
            batch=1,
            panic_batch=8,
        )
        flusher = WritebackFlusher(sim, controller, cfg)
        self._dirty_fill(sim, controller, 32)  # ratio 0.5 > high
        flusher.start()
        sim.run(until=sim.now + 150.0)
        assert flusher.flushes_started >= 8

    def test_flusher_eventually_cleans(self, sim, controller, store):
        cfg = WritebackConfig(
            interval_us=50.0, low_watermark=0.0, high_watermark=0.1, panic_batch=8
        )
        flusher = WritebackFlusher(sim, controller, cfg)
        self._dirty_fill(sim, controller, 16)
        flusher.start()
        sim.run(until=sim.now + 200_000.0)
        assert store.dirty_count == 0

    def test_start_idempotent(self, sim, controller):
        flusher = WritebackFlusher(sim, controller)
        flusher.start()
        flusher.start()
        # exactly one tick chain scheduled
        assert sim.pending_events == 1
