"""SL002 bad: iterating bare sets (hash order) in the sim core."""


def drain() -> list[int]:
    dirty = set()
    dirty.add(7)
    out = []
    for lba in dirty:
        out.append(lba)
    out.extend(x for x in {1, 2, 3})
    return out
