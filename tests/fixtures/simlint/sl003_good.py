"""SL003 good: ordering or explicit tolerance on simulated time."""


def same_tick(arrival_time: float, now: float) -> bool:
    return abs(arrival_time - now) < 1e-9


def not_yet(deadline_us: float, now: float) -> bool:
    return now < deadline_us
