"""SL008 good: explicit destinations and __main__ guards only."""

import sys


def report(message):
    print(message, file=sys.stderr)


if __name__ == "__main__":
    print("demo output is fine under a main guard")
