"""SL006 good: derive a new config instead of mutating in place."""

import dataclasses


def shrink_cache(config):
    return dataclasses.replace(config, cache_mb=64)
