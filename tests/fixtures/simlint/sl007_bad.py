"""SL007 bad: allocations and discarded handles inside a hot-path body.

Linted as module ``repro.sim.engine`` so ``Simulator.step`` matches the
hot-path allowlist.
"""


class Simulator:
    def step(self):
        def tick():
            return None

        callback = lambda: tick()  # deliberately a lambda: the SL007 target
        self.schedule(0.0, callback)
