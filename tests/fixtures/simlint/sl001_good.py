"""SL001 good: randomness via the seeded streams, time via the simulator."""

import heapq
import math


def jitter(sim, rng) -> float:
    heapq.heappush  # keep the import obviously purposeful
    return math.fsum([sim.now, rng.random()])
