"""SL008 bad: bare print() in a library module."""


def report(message):
    print(message)
