"""SL001 bad: wall-clock / ambient-RNG imports inside the sim core."""

import random
import time as clock
from datetime import datetime


def jitter() -> float:
    return random.random() + clock.time() + datetime.now().microsecond
