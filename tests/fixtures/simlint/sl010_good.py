"""SL010 good: telemetry emits behind enabled-guards in a hot-path module.

Linted as module ``repro.sim.engine``; both guard spellings — testing
the telemetry object and testing an enabled flag — satisfy the rule.
"""


class Simulator:
    def run(self):
        telemetry = self.telemetry
        while self._heap:
            if telemetry is not None:
                telemetry.hub.inc("events")
            if self._obs_enabled:
                self.hub.observe("latency", 1.0)
