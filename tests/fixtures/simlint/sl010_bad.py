"""SL010 bad: an unguarded telemetry emit inside a hot-path module.

Linted as module ``repro.sim.engine`` (on SL007's hot-path allowlist);
the hub emit in the dispatch loop runs telemetry-on or off.
"""


class Simulator:
    def run(self):
        while self._heap:
            self.telemetry.hub.inc("events")
