"""SL004 good: schemes resolve by name through the registry."""

from repro.schemes.registry import build_scheme


def build(system):
    if system.balancer.name == "lbica":
        return system.balancer
    return build_scheme("dynshare", system)
