"""SL005 bad: registration sites without a config_cls declaration."""

from repro.schemes import Scheme, register_scheme


@register_scheme
class NoopScheme(Scheme):
    name = "noop"
    description = "Does nothing."


class LateScheme(Scheme):
    name = "late"
    description = "Registered by call, still no config_cls."


register_scheme(LateScheme)
