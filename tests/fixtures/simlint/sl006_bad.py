"""SL006 bad: mutating config attributes after construction."""


def shrink_cache(system, config):
    system.config.cache_mb = 64
    config.seed += 1
