"""Ad-hoc profiling creeping into a benchmark script (SL009)."""

import cProfile
from pstats import Stats


def profile_run(fn):
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    return Stats(profiler)
