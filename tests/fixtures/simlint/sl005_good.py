"""SL005 good: every registration declares config_cls (None = config-less)."""

from repro.schemes import Scheme, register_scheme


@register_scheme
class NoopScheme(Scheme):
    name = "noop"
    description = "Does nothing."
    config_cls = None


class LateScheme(Scheme):
    name = "late"
    description = "Registered by call."
    config_cls: type | None = None


register_scheme(LateScheme)
