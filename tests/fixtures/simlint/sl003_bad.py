"""SL003 bad: exact float equality on simulated-time values."""


def same_tick(arrival_time: float, now: float) -> bool:
    return arrival_time == now


def not_yet(deadline_us: float, now: float) -> bool:
    return deadline_us != now
