"""SL007 good: hot-path body stays allocation-lean.

Linted as module ``repro.sim.engine``; helpers live at module level and
scheduling goes through the no-Event fast path.
"""


def _tick():
    return None


class Simulator:
    def step(self):
        self.schedule_call(0.0, _tick)

    def cold_path(self):
        # not on the allowlist: closures are fine here
        return lambda: _tick()
