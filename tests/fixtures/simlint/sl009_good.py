"""Timing stays profiler-free; profiles go through the harness (SL009)."""

import time


def timed_run(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
