"""SL004 bad: concrete controller classes imported around the registry."""

from repro.core.lbica import LbicaController
from repro.schemes.dynshare import DynamicShareScheme


def build(system):
    if isinstance(system.balancer, LbicaController):
        return system.balancer
    return DynamicShareScheme.from_system(system)
