"""SL002 good: sets are membership-tested or iterated sorted."""


def drain() -> list[int]:
    dirty = set()
    dirty.add(7)
    out = []
    for lba in sorted(dirty):
        out.append(lba)
    if 7 in dirty:
        out.append(7)
    return out
