"""Unit tests for the system configuration presets."""

from dataclasses import replace

import pytest

from repro.config import SystemConfig, paper_config, quick_config


class TestSystemConfig:
    def test_paper_preset_valid(self):
        paper_config().validate()

    def test_quick_preset_valid_and_faster(self):
        quick = quick_config()
        quick.validate()
        assert quick.interval_us < paper_config().interval_us

    def test_control_loops_align_to_interval(self):
        cfg = SystemConfig(interval_us=40_000.0)
        assert cfg.lbica.decision_interval_us == 40_000.0
        assert cfg.sib.check_interval_us == 10_000.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(interval_us=-1).validate()
        with pytest.raises(ValueError):
            SystemConfig(cache_blocks=0).validate()
        with pytest.raises(ValueError):
            SystemConfig(rate_scale=0).validate()
        with pytest.raises(ValueError):
            SystemConfig(drain_intervals=-1).validate()

    def test_scaled_copies(self):
        cfg = paper_config()
        half = cfg.scaled(0.5)
        assert half.rate_scale == 0.5
        assert cfg.rate_scale == 1.0  # original untouched

    def test_seed_propagates(self):
        assert paper_config(seed=99).seed == 99

    def test_config_instances_do_not_share_device_configs(self):
        a = paper_config()
        b = paper_config()
        a.ssd.read_us = 1.0
        assert b.ssd.read_us != 1.0

    def test_replace_keeps_alignment(self):
        cfg = replace(paper_config(), interval_us=20_000.0)
        assert cfg.lbica.decision_interval_us == 20_000.0
