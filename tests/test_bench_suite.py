"""Golden-stats tests for the unified benchmark suite.

The committed golden file pins the deterministic stats fingerprint of
every canonical scenario at quick scale.  Any engine change that alters
simulation results — event ordering, RNG consumption, float arithmetic —
trips these tests; a pure performance optimization must keep them green
(the ISSUE-2 "bit-identical ``RunResult`` stats" guarantee).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.config import quick_config

_REPO = Path(__file__).resolve().parent.parent
_GOLDEN_PATH = _REPO / "benchmarks" / "golden" / "suite_quick.json"

_spec = importlib.util.spec_from_file_location(
    "bench_suite", _REPO / "benchmarks" / "suite.py"
)
suite = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(suite)

GOLDEN = json.loads(_GOLDEN_PATH.read_text())


def _normalized(stats: dict) -> dict:
    """Round-trip through JSON so floats/keys compare like the on-disk golden."""
    return json.loads(json.dumps(stats, sort_keys=True))


class TestGoldenStats:
    def test_golden_covers_all_scenarios(self):
        assert set(GOLDEN["scenarios"]) == set(suite.SCENARIOS)
        assert GOLDEN["config"] == "quick"

    @pytest.mark.parametrize(
        "name",
        [
            "fig4_single_vm",
            "consolidated3",
            "bootstorm_neighbors",
            "consolidated3_partition",
            "consolidated3_dynshare",
        ],
    )
    def test_single_scenario_stats_match_golden(self, name):
        config = quick_config(GOLDEN["seed"])
        _, stats = suite.run_scenario(name, config)
        assert _normalized(stats) == GOLDEN["scenarios"][name], (
            f"{name}: RunResult stats diverge from the committed golden — "
            "either a behavior change leaked into the engine, or the golden "
            "needs a deliberate refresh via "
            "`python benchmarks/suite.py --quick --update-golden "
            "benchmarks/golden/suite_quick.json`"
        )

    def test_grid_fanout_stats_match_golden(self):
        # max_workers=2 also regression-checks that the parallel grid stays
        # bit-identical to the serial results the golden was verified against.
        config = quick_config(GOLDEN["seed"])
        _, stats = suite.run_scenario("grid_fanout", config, jobs=2)
        assert _normalized(stats) == GOLDEN["scenarios"]["grid_fanout"]


class TestSuitePlumbing:
    def test_compare_goldens_detects_divergence(self):
        doc = {
            "config": "quick",
            "seed": GOLDEN["seed"],
            "scenarios": {
                name: {"perf": {}, "stats": dict(stats)}
                for name, stats in GOLDEN["scenarios"].items()
            },
        }
        assert suite.compare_goldens(doc, GOLDEN) == []
        doc["scenarios"]["fig4_single_vm"]["stats"] = dict(
            doc["scenarios"]["fig4_single_vm"]["stats"], completed=-1
        )
        problems = suite.compare_goldens(doc, GOLDEN)
        assert any("fig4_single_vm" in p and "completed" in p for p in problems)

    def test_fingerprint_has_no_timing_fields(self):
        config = quick_config(GOLDEN["seed"])
        perf, stats = suite.run_scenario("fig4_single_vm", config)
        assert "wall_clock_s" in perf and "peak_rss_kb" in perf
        assert not any("wall" in k or "rss" in k for k in stats)
