"""Unit tests for declarative workload specs (dict / JSON)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.workloads.access_patterns import (
    HotColdPattern,
    MixPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workloads.spec import (
    SpecError,
    load_workload_spec,
    pattern_from_spec,
    workload_from_spec,
)


def valid_spec():
    return {
        "name": "spec_demo",
        "max_outstanding": 64,
        "warm": [
            {"kind": "range", "start": 0, "span": 16, "dirty": False},
            {"kind": "range", "start": 100, "span": 8, "dirty": True},
        ],
        "phases": [
            {
                "label": "burst",
                "n_intervals": 5,
                "rate_iops": 1000,
                "write_frac": 0.3,
                "burst": True,
                "read_pattern": {"kind": "uniform", "start": 0, "span": 128},
                "write_pattern": {"kind": "uniform", "start": 512, "span": 64},
            }
        ],
    }


class TestPatternSpecs:
    def test_uniform(self):
        pat = pattern_from_spec({"kind": "uniform", "start": 5, "span": 10})
        assert isinstance(pat, UniformPattern)
        assert pat.start == 5 and pat.span == 10

    def test_zipf_with_defaults(self):
        pat = pattern_from_spec({"kind": "zipf", "start": 0, "span": 50})
        assert isinstance(pat, ZipfPattern)
        assert pat.s == 1.1

    def test_hotcold(self):
        pat = pattern_from_spec(
            {
                "kind": "hotcold",
                "hot_start": 0,
                "hot_span": 10,
                "cold_start": 100,
                "cold_span": 50,
                "hot_prob": 0.8,
            }
        )
        assert isinstance(pat, HotColdPattern)
        assert pat.hot_prob == 0.8

    def test_sequential(self):
        pat = pattern_from_spec(
            {"kind": "sequential", "start": 10, "span": 100, "stride": 4}
        )
        assert isinstance(pat, SequentialPattern)
        assert pat.stride == 4

    def test_mix(self):
        pat = pattern_from_spec(
            {
                "kind": "mix",
                "components": [
                    {"weight": 0.7, "pattern": {"kind": "uniform", "start": 0, "span": 5}},
                    {"weight": 0.3, "pattern": {"kind": "uniform", "start": 50, "span": 5}},
                ],
            }
        )
        assert isinstance(pat, MixPattern)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            pattern_from_spec({"kind": "fractal", "start": 0, "span": 1})

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError):
            pattern_from_spec({"kind": "uniform", "start": 0, "span": 1, "oops": 1})

    def test_missing_keys_rejected(self):
        with pytest.raises(SpecError):
            pattern_from_spec({"kind": "uniform", "start": 0})


class TestWorkloadSpecs:
    def test_valid_spec_builds(self):
        wl = workload_from_spec(valid_spec(), interval_us=1000.0)
        assert wl.name == "spec_demo"
        assert wl.max_outstanding == 64
        assert wl.total_intervals == 5
        assert len(wl.warm_blocks) == 16
        assert len(wl.warm_dirty_blocks) == 8
        assert wl.phases[0].burst

    def test_spec_workload_generates(self):
        from repro.sim.engine import Simulator

        wl = workload_from_spec(valid_spec(), interval_us=1000.0)
        sim = Simulator()
        got = []

        def submit(req):
            got.append(req)
            wl.on_request_complete(req)

        wl.bind(sim, submit, np.random.default_rng(1))
        sim.run(until=wl.duration_us)
        assert got

    def test_size_blocks_distribution(self):
        spec = valid_spec()
        spec["phases"][0]["size_blocks"] = [[1, 0.75], [8, 0.25]]
        wl = workload_from_spec(spec, interval_us=1000.0)
        choices, probs = wl.phases[0].size_blocks
        assert choices == [1, 8]
        assert probs == [0.75, 0.25]

    def test_empty_phases_rejected(self):
        spec = valid_spec()
        spec["phases"] = []
        with pytest.raises(SpecError):
            workload_from_spec(spec, 1000.0)

    def test_unknown_top_level_key_rejected(self):
        spec = valid_spec()
        spec["surprise"] = True
        with pytest.raises(SpecError):
            workload_from_spec(spec, 1000.0)

    def test_invalid_phase_values_propagate(self):
        spec = valid_spec()
        spec["phases"][0]["write_frac"] = 2.0
        with pytest.raises(ValueError):
            workload_from_spec(spec, 1000.0)

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(valid_spec()), encoding="utf-8")
        wl = load_workload_spec(path, interval_us=1000.0)
        assert wl.name == "spec_demo"

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecError):
            load_workload_spec(path, 1000.0)

    def test_spec_runs_through_full_system(self):
        """A spec-built workload drives the whole experiment stack."""
        from repro.config import quick_config
        from repro.experiments.system import ExperimentSystem

        spec = valid_spec()
        spec["phases"][0]["n_intervals"] = 10
        cfg = quick_config()
        wl = workload_from_spec(spec, interval_us=cfg.interval_us)
        result = ExperimentSystem(wl, "wb", cfg).run()
        assert result.completed > 0
        assert len(result.samples) == 10


def tenants_spec():
    return {
        "name": "duo",
        "tenants": [
            {"workload": "web", "rate_scale": 0.75},
            {"workload": "tpcc", "rate_scale": 0.5, "offset_intervals": 4,
             "label": "oltp"},
        ],
    }


class TestTenantSpecs:
    def test_builds_multi_tenant_workload(self):
        from repro.workloads.multi_tenant import MultiTenantWorkload

        wl = workload_from_spec(tenants_spec(), 1000.0, cache_blocks=4096)
        assert isinstance(wl, MultiTenantWorkload)
        assert wl.name == "duo"
        assert wl.tenant_count == 2
        assert wl.children[1].name == "oltp"
        assert wl.offsets_us == [0.0, 4 * 1000.0]

    def test_matches_code_built_composition(self):
        from repro.workloads.multi_tenant import MultiTenantWorkload, TenantSpec
        from repro.workloads.tpcc import tpcc_workload
        from repro.workloads.web import web_server_workload

        built = workload_from_spec(tenants_spec(), 1000.0, cache_blocks=4096)
        code = MultiTenantWorkload.compose(
            "duo",
            [
                TenantSpec(web_server_workload, rate_scale=0.75),
                TenantSpec(tpcc_workload, rate_scale=0.5, offset_intervals=4,
                           label="oltp"),
            ],
            1000.0,
            cache_blocks=4096,
        )
        assert built.lba_stride_blocks == code.lba_stride_blocks
        assert built.offsets_us == code.offsets_us
        assert [c.max_outstanding for c in built.children] == [
            c.max_outstanding for c in code.children
        ]
        assert [p.rate_iops for c in built.children for p in c.phases] == [
            p.rate_iops for c in code.children for p in c.phases
        ]

    def test_inline_child_workload(self):
        spec = tenants_spec()
        spec["tenants"][0]["workload"] = valid_spec()
        wl = workload_from_spec(spec, 1000.0, cache_blocks=4096)
        assert wl.children[0].name == "spec_demo"

    def test_lba_stride_override(self):
        spec = tenants_spec()
        spec["lba_stride_blocks"] = 123456
        wl = workload_from_spec(spec, 1000.0)
        assert wl.lba_stride_blocks == 123456

    def test_unknown_tenant_key_rejected(self):
        spec = tenants_spec()
        spec["tenants"][0]["surprise"] = 1
        with pytest.raises(SpecError):
            workload_from_spec(spec, 1000.0)

    def test_unknown_workload_name_rejected(self):
        spec = tenants_spec()
        spec["tenants"][0]["workload"] = "no_such"
        with pytest.raises(SpecError):
            workload_from_spec(spec, 1000.0)

    def test_nested_tenants_rejected(self):
        spec = tenants_spec()
        spec["tenants"][0]["workload"] = tenants_spec()
        with pytest.raises(SpecError):
            workload_from_spec(spec, 1000.0)

    def test_empty_tenants_rejected(self):
        with pytest.raises(SpecError):
            workload_from_spec({"name": "x", "tenants": []}, 1000.0)


class TestRateScaleThreading:
    def test_phase_rates_scale(self):
        wl_1x = workload_from_spec(valid_spec(), 1000.0)
        wl_2x = workload_from_spec(valid_spec(), 1000.0, rate_scale=2.0)
        assert [p.rate_iops for p in wl_2x.phases] == [
            p.rate_iops * 2.0 for p in wl_1x.phases
        ]

    def test_synthetic_factories_honor_rate_scale(self):
        """The registry's synthetic factories must not silently ignore
        rate_scale (they did before the scenario refactor)."""
        from repro.experiments.system import WORKLOADS

        for name in ("random_read", "random_write", "seq_read", "seq_write",
                     "mixed_rw"):
            wl_1x = WORKLOADS[name](1000.0, 4096, 1.0, 256)
            wl_2x = WORKLOADS[name](1000.0, 4096, 2.0, 256)
            assert [p.rate_iops for p in wl_2x.phases] == [
                p.rate_iops * 2.0 for p in wl_1x.phases
            ], name

    def test_default_max_outstanding_forwarded(self):
        spec = valid_spec()
        del spec["max_outstanding"]
        wl = workload_from_spec(spec, 1000.0, max_outstanding=48)
        assert wl.max_outstanding == 48
        # the spec's own value still wins when present
        wl = workload_from_spec(valid_spec(), 1000.0, max_outstanding=48)
        assert wl.max_outstanding == 64

    def test_registered_multi_tenant_name_rejected_as_tenant(self):
        spec = tenants_spec()
        spec["tenants"][0]["workload"] = "consolidated3"
        with pytest.raises(SpecError, match="cannot nest"):
            workload_from_spec(spec, 1000.0)


class TestTraceSpecForm:
    """The ``trace:`` spec section builds streaming ReplayWorkloads."""

    @staticmethod
    def trace_file(tmp_path):
        from repro.trace.parser import save_trace
        from repro.trace.synth import synthetic_trace

        path = tmp_path / "t.trace"
        save_trace(synthetic_trace(20, seed=2), path)
        return path

    def trace_spec(self, tmp_path, **trace_keys):
        return {
            "name": "replay_test",
            "trace": {"path": str(self.trace_file(tmp_path)), **trace_keys},
        }

    def test_builds_streaming_replay(self, tmp_path, sim):
        from repro.workloads.replay import ReplayWorkload

        wl = workload_from_spec(self.trace_spec(tmp_path), 1000.0)
        assert isinstance(wl, ReplayWorkload)
        assert wl.streaming
        assert wl.name == "replay_test"
        wl.bind(sim, lambda r: None, None)
        sim.run()
        assert wl.stats.generated == 20

    def test_operators_applied(self, tmp_path, sim):
        spec = self.trace_spec(
            tmp_path, operators=[{"op": "time_compress", "factor": 2.0}]
        )
        plain = workload_from_spec(self.trace_spec(tmp_path), 1000.0)
        compressed = workload_from_spec(spec, 1000.0)
        times = {}
        for key, wl in (("plain", plain), ("fast", compressed)):
            from repro.sim.engine import Simulator

            s = Simulator()
            arrivals = []
            wl.bind(s, lambda r, s=s, a=arrivals: a.append(s.now), None)
            s.run()
            times[key] = arrivals
        assert times["fast"] == [t / 2.0 for t in times["plain"]]

    def test_interleave_builds_tenant_streams(self, tmp_path, sim):
        spec = self.trace_spec(tmp_path, interleave=2, lba_stride_blocks=4096)
        wl = workload_from_spec(spec, 1000.0)
        arrivals = []
        wl.bind(sim, lambda r: arrivals.append((r.tenant_id, r.lba)), None)
        sim.run()
        tenants = {tid for tid, _ in arrivals}
        assert tenants == {0, 1}
        assert wl.stats.generated == 40
        # tenant 1 is shifted into its own footprint
        lba0 = {lba for tid, lba in arrivals if tid == 0}
        lba1 = {lba for tid, lba in arrivals if tid == 1}
        assert lba1 == {lba + 4096 for lba in lba0}

    def test_missing_file_rejected(self, tmp_path):
        spec = {"name": "x", "trace": {"path": str(tmp_path / "nope.trace")}}
        with pytest.raises(SpecError, match="no such trace file"):
            workload_from_spec(spec, 1000.0)

    def test_unknown_adapter_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="unknown trace adapter"):
            workload_from_spec(self.trace_spec(tmp_path, adapter="fio"), 1000.0)

    def test_bad_operator_rejected_before_reading_file(self, tmp_path):
        with pytest.raises(SpecError, match="unknown trace operator"):
            workload_from_spec(
                self.trace_spec(tmp_path, operators=[{"op": "reverse"}]), 1000.0
            )

    def test_unknown_trace_key_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="unknown key"):
            workload_from_spec(self.trace_spec(tmp_path, speed=9), 1000.0)

    def test_interleave_forces_streaming(self, tmp_path):
        spec = self.trace_spec(tmp_path, interleave=2, streaming=False)
        with pytest.raises(SpecError, match="always streaming"):
            workload_from_spec(spec, 1000.0)

    def test_invalid_interleave_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="interleave"):
            workload_from_spec(self.trace_spec(tmp_path, interleave=0), 1000.0)

    def test_duration_and_chunk_forwarded(self, tmp_path):
        spec = self.trace_spec(tmp_path, duration_us=5000.0, chunk_records=7)
        wl = workload_from_spec(spec, 1000.0)
        assert wl.duration_us == 5000.0
        assert wl.chunk_records == 7

    def test_example_scenario_spec_loads(self):
        scenario = json.loads(
            Path("examples/scenarios/trace_replay.json").read_text()
        )
        wl = workload_from_spec(scenario["workload"], 1000.0)
        assert wl.streaming
