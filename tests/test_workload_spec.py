"""Unit tests for declarative workload specs (dict / JSON)."""

import json

import numpy as np
import pytest

from repro.workloads.access_patterns import (
    HotColdPattern,
    MixPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workloads.spec import (
    SpecError,
    load_workload_spec,
    pattern_from_spec,
    workload_from_spec,
)


def valid_spec():
    return {
        "name": "spec_demo",
        "max_outstanding": 64,
        "warm": [
            {"kind": "range", "start": 0, "span": 16, "dirty": False},
            {"kind": "range", "start": 100, "span": 8, "dirty": True},
        ],
        "phases": [
            {
                "label": "burst",
                "n_intervals": 5,
                "rate_iops": 1000,
                "write_frac": 0.3,
                "burst": True,
                "read_pattern": {"kind": "uniform", "start": 0, "span": 128},
                "write_pattern": {"kind": "uniform", "start": 512, "span": 64},
            }
        ],
    }


class TestPatternSpecs:
    def test_uniform(self):
        pat = pattern_from_spec({"kind": "uniform", "start": 5, "span": 10})
        assert isinstance(pat, UniformPattern)
        assert pat.start == 5 and pat.span == 10

    def test_zipf_with_defaults(self):
        pat = pattern_from_spec({"kind": "zipf", "start": 0, "span": 50})
        assert isinstance(pat, ZipfPattern)
        assert pat.s == 1.1

    def test_hotcold(self):
        pat = pattern_from_spec(
            {
                "kind": "hotcold",
                "hot_start": 0,
                "hot_span": 10,
                "cold_start": 100,
                "cold_span": 50,
                "hot_prob": 0.8,
            }
        )
        assert isinstance(pat, HotColdPattern)
        assert pat.hot_prob == 0.8

    def test_sequential(self):
        pat = pattern_from_spec(
            {"kind": "sequential", "start": 10, "span": 100, "stride": 4}
        )
        assert isinstance(pat, SequentialPattern)
        assert pat.stride == 4

    def test_mix(self):
        pat = pattern_from_spec(
            {
                "kind": "mix",
                "components": [
                    {"weight": 0.7, "pattern": {"kind": "uniform", "start": 0, "span": 5}},
                    {"weight": 0.3, "pattern": {"kind": "uniform", "start": 50, "span": 5}},
                ],
            }
        )
        assert isinstance(pat, MixPattern)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            pattern_from_spec({"kind": "fractal", "start": 0, "span": 1})

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError):
            pattern_from_spec({"kind": "uniform", "start": 0, "span": 1, "oops": 1})

    def test_missing_keys_rejected(self):
        with pytest.raises(SpecError):
            pattern_from_spec({"kind": "uniform", "start": 0})


class TestWorkloadSpecs:
    def test_valid_spec_builds(self):
        wl = workload_from_spec(valid_spec(), interval_us=1000.0)
        assert wl.name == "spec_demo"
        assert wl.max_outstanding == 64
        assert wl.total_intervals == 5
        assert len(wl.warm_blocks) == 16
        assert len(wl.warm_dirty_blocks) == 8
        assert wl.phases[0].burst

    def test_spec_workload_generates(self):
        from repro.sim.engine import Simulator

        wl = workload_from_spec(valid_spec(), interval_us=1000.0)
        sim = Simulator()
        got = []

        def submit(req):
            got.append(req)
            wl.on_request_complete(req)

        wl.bind(sim, submit, np.random.default_rng(1))
        sim.run(until=wl.duration_us)
        assert got

    def test_size_blocks_distribution(self):
        spec = valid_spec()
        spec["phases"][0]["size_blocks"] = [[1, 0.75], [8, 0.25]]
        wl = workload_from_spec(spec, interval_us=1000.0)
        choices, probs = wl.phases[0].size_blocks
        assert choices == [1, 8]
        assert probs == [0.75, 0.25]

    def test_empty_phases_rejected(self):
        spec = valid_spec()
        spec["phases"] = []
        with pytest.raises(SpecError):
            workload_from_spec(spec, 1000.0)

    def test_unknown_top_level_key_rejected(self):
        spec = valid_spec()
        spec["surprise"] = True
        with pytest.raises(SpecError):
            workload_from_spec(spec, 1000.0)

    def test_invalid_phase_values_propagate(self):
        spec = valid_spec()
        spec["phases"][0]["write_frac"] = 2.0
        with pytest.raises(ValueError):
            workload_from_spec(spec, 1000.0)

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(valid_spec()), encoding="utf-8")
        wl = load_workload_spec(path, interval_us=1000.0)
        assert wl.name == "spec_demo"

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecError):
            load_workload_spec(path, 1000.0)

    def test_spec_runs_through_full_system(self):
        """A spec-built workload drives the whole experiment stack."""
        from repro.config import quick_config
        from repro.experiments.system import ExperimentSystem

        spec = valid_spec()
        spec["phases"][0]["n_intervals"] = 10
        cfg = quick_config()
        wl = workload_from_spec(spec, interval_us=cfg.interval_us)
        result = ExperimentSystem(wl, "wb", cfg).run()
        assert result.completed > 0
        assert len(result.samples) == 10
