"""Tests for multi-seed repetition and the markdown report generator."""

import pytest

from repro.config import quick_config
from repro.experiments.repeat import RepeatedMetric, run_repeated
from repro.experiments.report_md import generate_markdown_report
from repro.experiments.runner import ExperimentRunner


class TestRepeatedMetric:
    def test_from_values(self):
        m = RepeatedMetric.from_values("x", [1.0, 2.0, 3.0])
        assert m.mean == pytest.approx(2.0)
        assert m.minimum == 1.0
        assert m.maximum == 3.0
        assert m.std > 0

    def test_single_value_zero_std(self):
        m = RepeatedMetric.from_values("x", [5.0])
        assert m.std == 0.0

    def test_format(self):
        m = RepeatedMetric.from_values("x", [1.0, 3.0])
        assert "±" in m.format()


class TestRunRepeated:
    def test_aggregates_over_seeds(self):
        result = run_repeated("web", "lbica", seeds=[1, 2, 3], config=quick_config())
        assert result.seeds == (1, 2, 3)
        assert len(result.runs) == 3
        assert result.mean_latency.mean > 0
        assert result.completed.mean > 0

    def test_seed_variation_is_bounded(self):
        """The LBICA result must be robust: relative latency spread
        across seeds stays within a sane band."""
        result = run_repeated("web", "lbica", seeds=[1, 2, 3], config=quick_config())
        assert result.coefficient_of_variation() < 1.0

    def test_lbica_beats_wb_on_every_seed(self):
        cfg = quick_config()
        seeds = [4, 5]
        lbica = run_repeated("web", "lbica", seeds, cfg)
        wb = run_repeated("web", "wb", seeds, cfg)
        for lb_run, wb_run in zip(lbica.runs, wb.runs):
            assert lb_run.mean_latency < wb_run.mean_latency

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_repeated("web", "wb", seeds=[])


class TestMarkdownReport:
    def test_report_contains_all_sections(self):
        runner = ExperimentRunner(quick_config())
        md = generate_markdown_report(runner)
        assert "## Cache and disk load (Figures 4 and 5)" in md
        assert "## Policy timelines (Figure 6)" in md
        assert "## Average latency (Figure 7)" in md
        assert "## Headline claims" in md
        # every workload appears in the tables
        for workload in ("tpcc", "mail", "web"):
            assert workload in md
        # markdown table syntax
        assert md.count("|---") >= 4
