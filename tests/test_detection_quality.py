"""Tests for the detection-quality metric and end-to-end detector scoring."""

import pytest

from repro.analysis.metrics import DetectionQuality, detection_quality
from repro.config import quick_config
from repro.experiments.system import ExperimentSystem
from repro.workloads.bootstorm import boot_storm_workload


class TestDetectionQualityMetric:
    def test_perfect_detection(self):
        q = detection_quality(detected=[5, 6, 7], scripted=[5, 6, 7, 8])
        assert q.precision == 1.0
        assert q.recall == 1.0

    def test_lagged_detection_within_slack(self):
        q = detection_quality(detected=[12], scripted=[5, 6, 7, 8], slack=10)
        assert q.precision == 1.0
        assert q.recall == 1.0

    def test_false_positive_counted(self):
        q = detection_quality(detected=[50], scripted=[5, 6, 7], slack=2)
        assert q.false_positives == 1
        assert q.precision == 0.0
        assert q.recall == 0.0

    def test_multiple_windows(self):
        scripted = [3, 4, 5, 20, 21, 22]  # two windows
        q = detection_quality(detected=[4, 100], scripted=scripted, slack=0)
        assert q.scripted_windows == 2
        assert q.detected_windows == 1
        assert q.recall == pytest.approx(0.5)

    def test_no_scripted_windows_means_trivial_recall(self):
        q = detection_quality(detected=[], scripted=[])
        assert q.recall == 1.0
        assert q.precision == 1.0

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            detection_quality([], [], slack=-1)

    def test_dataclass_fields(self):
        q = DetectionQuality(3, 1, 1, 1)
        assert q.precision == pytest.approx(0.75)


class TestEndToEndDetection:
    @pytest.mark.parametrize("workload_name", ["tpcc", "mail", "web"])
    def test_lbica_detects_every_scripted_burst(self, workload_name):
        cfg = quick_config()
        system = ExperimentSystem.build(workload_name, "lbica", cfg)
        scripted = system.workload.burst_intervals()
        result = system.run()
        detected = [d.interval_index for d in result.lbica_decisions if d.burst]
        q = detection_quality(detected, scripted, slack=30)
        assert q.recall == 1.0, (workload_name, detected, q)
        assert q.precision > 0.6, (workload_name, detected)


class TestBootStorm:
    def test_factory_validates(self):
        with pytest.raises(ValueError):
            boot_storm_workload(1000.0, n_vms=0)

    def test_storm_rate_scales_with_vms_and_caps(self):
        small = boot_storm_workload(1000.0, n_vms=4)
        big = boot_storm_workload(1000.0, n_vms=64)
        huge = boot_storm_workload(1000.0, n_vms=10_000)
        assert small.phases[0].rate_iops < big.phases[0].rate_iops
        assert huge.phases[0].rate_iops == 9000.0

    def test_lbica_assigns_wo_to_boot_storm(self):
        cfg = quick_config()
        workload = boot_storm_workload(cfg.interval_us, cache_blocks=cfg.cache_blocks)
        result = ExperimentSystem(workload, "lbica", cfg).run()
        assigned = [p.policy.value for p in result.policy_log[1:]]
        assert "WO" in assigned, result.policy_log

    def test_lbica_beats_wb_on_boot_storm(self):
        cfg = quick_config()

        def run(scheme):
            workload = boot_storm_workload(
                cfg.interval_us, cache_blocks=cfg.cache_blocks
            )
            return ExperimentSystem(workload, scheme, cfg).run()

        assert run("lbica").mean_latency < run("wb").mean_latency
