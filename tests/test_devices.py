"""Unit tests for the SSD/HDD service models and the device server loop."""

import numpy as np
import pytest

from repro.devices.base import StorageDevice
from repro.devices.hdd import HddConfig, HddModel
from repro.devices.presets import samsung_863a_like, seagate_7200_like
from repro.devices.ssd import SsdConfig, SsdModel
from repro.io.request import DeviceOp, OpTag
from repro.sim.engine import Simulator


def read_op(lba=0, n=1):
    return DeviceOp(lba, n, is_write=False, tag=OpTag.READ)


def write_op(lba=0, n=1):
    return DeviceOp(lba, n, is_write=True, tag=OpTag.WRITE)


class TestSsdModel:
    def test_read_latency_flat(self):
        m = SsdModel(SsdConfig(jitter_sigma=0.0))
        assert m.service_time(read_op(), 0.0) == m.config.read_us
        assert m.service_time(read_op(lba=10**6), 1e6) == m.config.read_us

    def test_write_cost_rises_under_pressure(self):
        cfg = SsdConfig(jitter_sigma=0.0)
        m = SsdModel(cfg)
        first = m.service_time(write_op(), 0.0)
        # hammer writes at the same instant: bucket grows, no decay
        for _ in range(500):
            m.service_time(write_op(), 0.0)
        later = m.service_time(write_op(), 0.0)
        assert first == cfg.write_us
        assert later > first
        assert later <= cfg.cliff_write_us + cfg.per_block_us

    def test_write_pressure_decays_over_time(self):
        cfg = SsdConfig(jitter_sigma=0.0)
        m = SsdModel(cfg)
        for _ in range(500):
            m.service_time(write_op(), 0.0)
        hot = m.current_write_cost(0.0)
        cooled = m.current_write_cost(cfg.gc_decay_us * 10)
        assert cooled < hot
        assert cooled == pytest.approx(cfg.write_us, rel=0.03)

    def test_multiblock_transfer_cost(self):
        cfg = SsdConfig(jitter_sigma=0.0)
        m = SsdModel(cfg)
        single = m.service_time(read_op(n=1), 0.0)
        multi = m.service_time(read_op(n=9), 0.0)
        assert multi == pytest.approx(single + 8 * cfg.per_block_us)

    def test_jitter_applied_with_rng(self):
        rng = np.random.default_rng(1)
        m = SsdModel(SsdConfig(jitter_sigma=0.2), rng=rng)
        times = {m.service_time(read_op(), 0.0) for _ in range(10)}
        assert len(times) > 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SsdConfig(read_us=-1).validate()
        with pytest.raises(ValueError):
            SsdConfig(cliff_write_us=1.0, write_us=2.0).validate()
        with pytest.raises(ValueError):
            SsdConfig(gc_knee_blocks=0).validate()


class TestHddModel:
    def test_random_read_pays_seek_and_rotation(self):
        cfg = HddConfig(jitter_sigma=0.0)
        m = HddModel(cfg)
        t = m.service_time(read_op(lba=10**6), 0.0)
        assert t == pytest.approx(
            cfg.avg_seek_us + cfg.rotation_us / 2 + cfg.transfer_us_per_block
        )

    def test_sequential_streak_is_cheap(self):
        cfg = HddConfig(jitter_sigma=0.0)
        m = HddModel(cfg)
        m.service_time(read_op(lba=1000, n=8), 0.0)
        streak = m.service_time(read_op(lba=1008, n=8), 0.0)
        assert streak == pytest.approx(8 * cfg.transfer_us_per_block)

    def test_far_jump_breaks_streak(self):
        cfg = HddConfig(jitter_sigma=0.0)
        m = HddModel(cfg)
        m.service_time(read_op(lba=1000), 0.0)
        far = m.service_time(read_op(lba=10**6), 0.0)
        assert far > 1000.0

    def test_cached_write_is_fast_until_cache_fills(self):
        cfg = HddConfig(jitter_sigma=0.0, write_cache_slots=4, destage_us=1e9)
        m = HddModel(cfg)
        fast = [m.service_time(write_op(lba=10**6 * (i + 1)), 0.0) for i in range(4)]
        slow = m.service_time(write_op(lba=10**8), 0.0)
        assert all(t == pytest.approx(cfg.cached_write_us) for t in fast)
        assert slow > cfg.cached_write_us * 5

    def test_write_cache_drains_over_time(self):
        cfg = HddConfig(jitter_sigma=0.0, write_cache_slots=4, destage_us=1000.0)
        m = HddModel(cfg)
        for i in range(4):
            m.service_time(write_op(lba=10**6 * (i + 1)), 0.0)
        assert m.write_cache_fill == pytest.approx(1.0)
        # after 4 destage periods the cache is empty again
        t = m.service_time(write_op(lba=10**8), 4000.0)
        assert t == pytest.approx(cfg.cached_write_us)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            HddConfig(avg_seek_us=-1).validate()
        with pytest.raises(ValueError):
            HddConfig(destage_us=0).validate()


class TestPresets:
    def test_presets_construct_and_validate(self):
        ssd = samsung_863a_like()
        hdd = seagate_7200_like()
        assert ssd.nominal_read_us < hdd.nominal_read_us
        assert ssd.config.cliff_write_us > ssd.config.write_us

    def test_preset_isolation(self):
        # mutating one instance's config must not leak into the preset
        a = samsung_863a_like()
        a.config.read_us = 1.0
        b = samsung_863a_like()
        assert b.config.read_us != 1.0


class TestStorageDevice:
    def test_serves_in_fifo_order_depth_1(self):
        sim = Simulator()
        dev = StorageDevice(sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)), depth=1)
        done = []
        for i in range(3):
            dev.submit(
                DeviceOp(
                    i * 100, 1, is_write=False, tag=OpTag.READ,
                    on_complete=lambda o: done.append(o.lba),
                )
            )
        sim.run()
        assert done == [0, 100, 200]
        assert dev.stats.reads == 3

    def test_depth_allows_parallel_service(self):
        sim = Simulator()
        cfg = SsdConfig(jitter_sigma=0.0)
        deep = StorageDevice(sim, "d2", SsdModel(cfg), depth=4)
        for i in range(4):
            deep.submit(read_op(lba=i * 100))
        sim.run()
        assert sim.now == pytest.approx(cfg.read_us)  # all in parallel

    def test_queue_time_is_eq1(self):
        sim = Simulator()
        dev = StorageDevice(sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)))
        for i in range(5):
            dev.submit(read_op(lba=i * 100))
        assert dev.queue_time() == pytest.approx(dev.qsize * dev.avg_latency)
        assert dev.qsize == 5

    def test_latency_ewma_converges_to_service_time(self):
        sim = Simulator()
        cfg = SsdConfig(jitter_sigma=0.0)
        dev = StorageDevice(sim, "ssd", SsdModel(cfg), ewma_alpha=0.5)
        for i in range(20):
            dev.submit(read_op(lba=i * 100))
        sim.run()
        assert dev.read_latency == pytest.approx(cfg.read_us, rel=0.01)

    def test_pause_dispatch_delays_service(self):
        sim = Simulator()
        cfg = SsdConfig(jitter_sigma=0.0)
        dev = StorageDevice(sim, "ssd", SsdModel(cfg))
        dev.pause_dispatch(1000.0)
        done = []
        dev.submit(
            DeviceOp(0, 1, is_write=False, tag=OpTag.READ,
                     on_complete=lambda o: done.append(sim.now))
        )
        sim.run()
        assert done[0] == pytest.approx(1000.0 + cfg.read_us)

    def test_observer_sees_all_transitions(self):
        sim = Simulator()
        dev = StorageDevice(sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)))
        events = []
        dev.add_observer(lambda op, action: events.append(action))
        dev.submit(read_op())
        sim.run()
        assert events == ["queue", "issue", "complete"]

    def test_merged_op_completions_chain(self):
        sim = Simulator()
        dev = StorageDevice(sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)))
        done = []
        a = DeviceOp(0, 1, is_write=True, tag=OpTag.WRITE,
                     on_complete=lambda o: done.append("a"))
        b = DeviceOp(1, 1, is_write=True, tag=OpTag.WRITE,
                     on_complete=lambda o: done.append("b"))
        dev.pause_dispatch(10.0)  # keep both pending so they can merge
        dev.submit(a)
        dev.submit(b)  # merges into a
        sim.run()
        assert sorted(done) == ["a", "b"]
        assert dev.stats.writes == 1  # a single physical operation

    def test_invalid_depth_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            StorageDevice(sim, "x", SsdModel(), depth=0)
