"""Unit tests for the WB and SIB baselines."""

import pytest

from repro.baselines.sib import SibConfig, SibController
from repro.baselines.wb import WbBaseline
from repro.cache.write_policy import WritePolicy
from repro.io.request import Request


class TestWbBaseline:
    def test_noop(self, sim, controller):
        wb = WbBaseline(sim, controller)
        wb.start()
        assert sim.pending_events == 0
        assert controller.policy is WritePolicy.WB


class TestSibConfig:
    def test_defaults_valid(self):
        SibConfig().validate()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SibConfig(check_interval_us=0).validate()
        with pytest.raises(ValueError):
            SibConfig(scan_overhead_us_per_op=-1).validate()
        with pytest.raises(ValueError):
            SibConfig(max_bypass_per_round=0).validate()
        with pytest.raises(ValueError):
            SibConfig(margin=0.9).validate()


@pytest.fixture
def fast_disk_setup(sim):
    """A system whose disk is fast enough that a loaded SSD queue is the
    Eq. 1 bottleneck (under WT the HDD mirror traffic would otherwise
    dominate — the very pathology the paper attributes to SIB)."""
    from repro.cache.controller import CacheController
    from repro.cache.store import CacheStore
    from repro.devices.base import StorageDevice
    from repro.devices.hdd import HddConfig, HddModel
    from repro.devices.ssd import SsdConfig, SsdModel

    ssd = StorageDevice(
        sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0, write_us=500.0)), depth=1
    )
    hdd = StorageDevice(
        sim,
        "hdd",
        HddModel(
            HddConfig(
                jitter_sigma=0.0,
                avg_seek_us=50.0,
                rotation_us=50.0,
                cached_write_us=50.0,
            )
        ),
        depth=4,
    )
    store = CacheStore(256, associativity=8)
    controller = CacheController(sim, ssd, hdd, store)
    return ssd, hdd, controller


class TestSibController:
    def _build(self, sim, controller, ssd, hdd, **kw):
        defaults = dict(
            check_interval_us=500.0,
            min_cache_qtime_us=0.0,
            scan_overhead_us_per_op=1.0,
        )
        defaults.update(kw)
        return SibController(sim, controller, ssd, hdd, SibConfig(**defaults))

    def test_start_pins_wt_mode(self, sim, controller, ssd, hdd):
        sib = self._build(sim, controller, ssd, hdd)
        sib.start()
        assert controller.policy is WritePolicy.WT
        assert controller.behavior.promote_on_miss  # default: promoting WT

    def test_strict_wt_wo_mode(self, sim, controller, ssd, hdd):
        sib = self._build(sim, controller, ssd, hdd, promote_on_miss=False)
        sib.start()
        assert not controller.behavior.promote_on_miss

    def test_bypasses_when_cache_is_bottleneck(self, sim, fast_disk_setup):
        ssd, hdd, controller = fast_disk_setup
        sib = self._build(sim, controller, ssd, hdd)
        sib.start()
        reqs = [Request(0.0, 100 + i, 1, True) for i in range(40)]
        for r in reqs:
            controller.submit(r)
        sim.run(until=500.0)
        assert sib.rounds, "SIB should have acted on the loaded cache queue"
        assert sib.total_bypassed > 0

    def test_charges_scan_overhead(self, sim, fast_disk_setup):
        ssd, hdd, controller = fast_disk_setup
        sib = self._build(sim, controller, ssd, hdd, scan_overhead_us_per_op=5.0)
        sib.start()
        for i in range(30):
            controller.submit(Request(0.0, 100 + i, 1, True))
        sim.run(until=500.0)
        assert sib.total_overhead_us > 0
        assert sib.rounds[0].overhead_us == pytest.approx(
            5.0 * sib.rounds[0].pending, rel=0.5
        )

    def test_idle_when_disk_is_bottleneck(self, sim, controller, ssd, hdd):
        sib = self._build(sim, controller, ssd, hdd)
        sib.start()
        # reads all miss in an empty cache → the (slow) disk queue fills,
        # cache stays near-empty: SIB must not act
        for i in range(20):
            controller.submit(Request(0.0, 10_000 + i * 100, 1, False))
        sim.run(until=500.0)
        assert sib.total_bypassed == 0

    def test_wt_mirror_loads_both_queues(self, sim, controller, ssd, hdd):
        """The paper's SIB criticism: under WT, writes fill both queues
        simultaneously, leaving no room to balance."""
        sib = self._build(sim, controller, ssd, hdd)
        sib.start()
        for i in range(40):
            controller.submit(Request(0.0, 100 + i, 1, True))
        # mirrored: both queues see all the writes
        assert ssd.queue.stats.enqueued >= 40
        assert hdd.queue.stats.enqueued >= 40
        sim.run(until=500.0)
        assert sib.total_bypassed == 0  # disk queue dominates → no room

    def test_start_idempotent(self, sim, controller, ssd, hdd):
        sib = self._build(sim, controller, ssd, hdd)
        sib.start()
        sib.start()
        assert sim.pending_events == 1

    def test_bypassed_requests_complete(self, sim, fast_disk_setup):
        ssd, hdd, controller = fast_disk_setup
        sib = self._build(sim, controller, ssd, hdd)
        sib.start()
        reqs = [Request(0.0, 100 + i, 1, True) for i in range(40)]
        for r in reqs:
            controller.submit(r)
        # run(until=...) because SIB's periodic tick reschedules forever
        sim.run(until=200_000.0)
        assert all(r.done for r in reqs)
