"""Tests for streaming trace replay: chunked scheduling, equivalence, edges."""

import pytest

from repro.config import quick_config
from repro.experiments.system import ExperimentSystem
from repro.io.request import OpTag
from repro.scenario.fingerprint import stats_fingerprint
from repro.sim.engine import Simulator
from repro.trace.parser import TraceParseError, iter_trace
from repro.trace.records import TraceRecord
from repro.trace.synth import synthetic_trace
from repro.workloads.replay import CHUNK_RECORDS, ReplayWorkload


def rec(time, lba=0, n=1, is_write=False, action="Q", tag=None, op_id=0):
    if tag is None:
        tag = OpTag.WRITE if is_write else OpTag.READ
    return TraceRecord(time, "ssd", action, tag, is_write, lba, n, op_id)


class TestModeSelection:
    def test_list_defaults_to_materialized(self):
        wl = ReplayWorkload([rec(1.0)])
        assert not wl.streaming
        assert len(wl.records) == 1

    def test_generator_defaults_to_streaming(self):
        wl = ReplayWorkload(iter([rec(1.0)]))
        assert wl.streaming

    def test_list_can_be_forced_streaming(self):
        wl = ReplayWorkload([rec(1.0)], streaming=True)
        assert wl.streaming
        assert not hasattr(wl, "records")

    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            ReplayWorkload()
        with pytest.raises(ValueError, match="exactly one"):
            ReplayWorkload([rec(1.0)], streams=[[rec(1.0)]])

    def test_streams_cannot_be_materialized(self):
        with pytest.raises(ValueError, match="always streaming"):
            ReplayWorkload(streams=[[rec(1.0)]], streaming=False)

    def test_chunk_records_validated(self):
        with pytest.raises(ValueError):
            ReplayWorkload(iter([]), chunk_records=0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ReplayWorkload(iter([]), duration_us=-1.0)


class TestStreamingExecution:
    def test_arrivals_match_materialized(self, sim):
        records = [rec(10.0 * i, lba=i, op_id=i) for i in range(10)]
        streamed = []
        wl = ReplayWorkload(iter(records), chunk_records=3)
        wl.bind(sim, lambda r: streamed.append((sim.now, r.lba)), None)
        sim.run()
        assert streamed == [(10.0 * i, i) for i in range(10)]
        assert wl.stats.generated == 10
        assert wl.stats.finished

    def test_multiple_chunks_refill(self, sim):
        n = CHUNK_RECORDS + 100
        wl = ReplayWorkload(synthetic_trace(n, seed=3))
        count = [0]

        def sink(request):
            count[0] += 1

        wl.bind(sim, sink, None)
        sim.run()
        assert count[0] == n
        assert wl.stats.finished

    def test_skipped_counted_lazily(self, sim):
        records = [
            rec(1.0),
            rec(2.0, action="D"),  # dispatch: skipped
            rec(3.0, tag=OpTag.PROMOTE, is_write=True),  # cache traffic
            rec(4.0),
        ]
        wl = ReplayWorkload(iter(records))
        wl.bind(sim, lambda r: None, None)
        sim.run()
        assert wl.stats.generated == 2
        assert wl.stats.skipped == 2

    def test_time_scale_applied(self, sim):
        wl = ReplayWorkload(iter([rec(100.0)]), time_scale=0.5)
        arrivals = []
        wl.bind(sim, lambda r: arrivals.append(sim.now), None)
        sim.run()
        assert arrivals == [50.0]

    def test_late_bind_clamps_to_floor(self, sim):
        """Arrivals before bind-time are clamped, not scheduled in the past."""
        sim.schedule_at(500.0, lambda: None)
        sim.run()
        wl = ReplayWorkload(iter([rec(100.0), rec(600.0)]))
        arrivals = []
        wl.bind(sim, lambda r: arrivals.append(sim.now), None)
        sim.run()
        assert arrivals == [500.0, 600.0]

    def test_empty_streaming_trace(self, sim):
        wl = ReplayWorkload(iter([]))
        wl.bind(sim, lambda r: None, None)
        assert wl.stats.finished
        assert wl.duration_us == 0.0


class TestChunkAtomicity:
    def test_parse_error_mid_chunk_schedules_nothing_from_it(self, sim, tmp_path):
        """A malformed line surfacing mid-chunk must not leave a partial
        chunk scheduled: complete chunks replay, the failing chunk is
        atomic."""
        path = tmp_path / "broken.trace"
        good = "\n".join(f"{10.0 * (i + 1)} ssd Q R R {i} 1 {i}" for i in range(6))
        path.write_text(good + "\nthis line is garbage\n")
        wl = ReplayWorkload(iter_trace(path), chunk_records=4)
        arrivals = []
        wl.bind(sim, lambda r: arrivals.append(r.lba), None)
        with pytest.raises(TraceParseError) as err:
            sim.run()
        # chunk 1 (records 0-3) replayed; chunk 2 hit the bad line while
        # being pulled, so records 4-5 never became arrivals
        assert arrivals == [0, 1, 2, 3]
        assert err.value.lineno == 7
        assert err.value.path == str(path)

    def test_error_in_first_chunk_fails_at_bind(self, sim, tmp_path):
        path = tmp_path / "broken.trace"
        path.write_text("garbage\n")
        wl = ReplayWorkload(iter_trace(path))
        with pytest.raises(TraceParseError):
            wl.bind(sim, lambda r: None, None)
        sim.run()
        assert sim.events_processed == 0  # nothing was scheduled

    def test_unsorted_across_chunk_boundary_rejected(self, sim):
        records = [rec(10.0), rec(20.0), rec(5.0), rec(30.0)]
        wl = ReplayWorkload(iter(records), chunk_records=2)
        wl.bind(sim, lambda r: None, None)
        with pytest.raises(ValueError, match="chunk boundary"):
            sim.run()

    def test_unsorted_within_chunk_tolerated(self, sim):
        """Within a chunk the pull sorts, so local jitter is fine."""
        records = [rec(20.0, op_id=0), rec(10.0, op_id=1)]
        wl = ReplayWorkload(iter(records), chunk_records=4)
        arrivals = []
        wl.bind(sim, lambda r: arrivals.append(sim.now), None)
        sim.run()
        assert arrivals == [10.0, 20.0]


class TestDuration:
    def test_streaming_duration_unknown_until_exhausted(self):
        wl = ReplayWorkload(synthetic_trace(CHUNK_RECORDS * 2, seed=1))
        with pytest.raises(ValueError, match="duration_us"):
            wl.duration_us

    def test_explicit_duration_wins(self):
        wl = ReplayWorkload(synthetic_trace(10, seed=1), duration_us=123.0)
        assert wl.duration_us == 123.0

    def test_single_chunk_trace_knows_duration_after_bind(self, sim):
        wl = ReplayWorkload(iter([rec(10.0), rec(40.0)]), chunk_records=16)
        wl.bind(sim, lambda r: None, None)
        sim.run()
        assert wl.duration_us == 40.0

    def test_materialized_duration_still_computed(self):
        assert ReplayWorkload([rec(40.0), rec(10.0)]).duration_us == 40.0


class TestMultiTenantStreams:
    def test_streams_tag_tenant_ids(self, sim):
        a = [rec(0.0, lba=1), rec(20.0, lba=2)]
        b = [rec(10.0, lba=100), rec(30.0, lba=200)]
        wl = ReplayWorkload(streams=[iter(a), iter(b)])
        arrivals = []
        wl.bind(sim, lambda r: arrivals.append((sim.now, r.tenant_id)), None)
        sim.run()
        assert arrivals == [(0.0, 0), (10.0, 1), (20.0, 0), (30.0, 1)]
        assert wl.stats.generated == 4

    def test_streams_skip_counting_covers_all_streams(self, sim):
        a = [rec(0.0), rec(1.0, action="D")]
        b = [rec(0.5, action="C")]
        wl = ReplayWorkload(streams=[iter(a), iter(b)])
        wl.bind(sim, lambda r: None, None)
        sim.run()
        assert wl.stats.generated == 1
        assert wl.stats.skipped == 2


class TestStreamedEqualsMaterialized:
    def test_stats_fingerprint_identical(self):
        """The tentpole guarantee: streamed and materialized replay of the
        same trace produce bit-identical run statistics."""
        cfg = quick_config(7)
        horizon = 3_000 * 50.0

        def run(workload):
            return ExperimentSystem(workload, "lbica", cfg).run(until_us=horizon)

        materialized = run(ReplayWorkload(list(synthetic_trace(3_000, seed=7))))
        streamed = run(
            ReplayWorkload(synthetic_trace(3_000, seed=7), chunk_records=256)
        )
        assert stats_fingerprint(streamed) == stats_fingerprint(materialized)
        assert streamed.workload_stats == materialized.workload_stats

    def test_run_result_reports_skipped_records(self):
        cfg = quick_config(7)
        records = [rec(50.0, n=8), rec(60.0, action="D", n=8), rec(70.0, n=8)]
        wl = ReplayWorkload(iter(records), duration_us=100.0)
        result = ExperimentSystem(wl, "wb", cfg).run(until_us=5_000.0)
        assert result.workload_stats["generated"] == 2
        assert result.workload_stats["skipped"] == 1

    def test_non_replay_runs_omit_skipped_key(self):
        """Keeps every committed golden fingerprint byte-identical."""
        from repro.workloads.synthetic import mixed_read_write_workload

        cfg = quick_config()
        wl = mixed_read_write_workload(
            cfg.interval_us, n_intervals=2, cache_blocks=cfg.cache_blocks
        )
        result = ExperimentSystem(wl, "wb", cfg).run()
        assert "skipped" not in result.workload_stats


class TestConstantMemory:
    def test_rss_independent_of_trace_length(self):
        """Replaying 8x the records must not grow resident memory by more
        than noise: the streaming chunker holds one chunk, never the
        trace."""
        import re
        from pathlib import Path

        status = Path("/proc/self/status")
        if not status.exists():
            pytest.skip("no /proc/self/status on this platform")

        def rss_kb():
            match = re.search(r"VmRSS:\s+(\d+) kB", status.read_text())
            assert match is not None
            return int(match.group(1))

        def replay(n):
            sim = Simulator()
            wl = ReplayWorkload(synthetic_trace(n, seed=5), duration_us=n * 75.0)
            wl.bind(sim, lambda r: None, None)
            sim.run()
            assert wl.stats.generated == n

        replay(50_000)  # warm up allocator pools and code paths
        before = rss_kb()
        replay(400_000)
        grown = rss_kb() - before
        assert grown < 32_768, f"streaming replay grew RSS by {grown} kB"
