"""Property-based tests (hypothesis) on core data-structure invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.store import CacheStore
from repro.core.characterization import QueueMix, WorkloadCharacterizer, WorkloadGroup
from repro.io.device_queue import DeviceQueue
from repro.io.request import DeviceOp, OpTag
from repro.sim.engine import Simulator
from repro.trace.iostat import eq1_queue_time

# ---------------------------------------------------------------------------
# Cache store invariants
# ---------------------------------------------------------------------------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert_dirty", "invalidate", "lookup", "clean"]),
        st.integers(min_value=0, max_value=255),
    ),
    max_size=200,
)


@given(ops=ops_strategy, repl=st.sampled_from(["lru", "fifo", "clock", "lfu"]))
@settings(max_examples=60, deadline=None)
def test_store_invariants_under_random_ops(ops, repl):
    """Residency ≤ capacity; dirty ⊆ resident; per-set bounds hold."""
    store = CacheStore(32, associativity=4, replacement=repl)
    now = 0.0
    for action, lba in ops:
        now += 1.0
        if action == "insert":
            store.insert(lba, now)
        elif action == "insert_dirty":
            store.insert(lba, now, dirty=True)
        elif action == "invalidate":
            store.invalidate(lba)
        elif action == "lookup":
            store.lookup(lba, now)
        elif action == "clean":
            store.mark_clean(lba)

        assert 0 <= store.occupied <= store.capacity_blocks
        assert 0 <= store.dirty_count <= store.occupied

    # recount from scratch: cached counters must agree with reality
    resident = list(store)
    assert len(resident) == store.occupied
    assert sum(1 for b in resident if b.dirty) == store.dirty_count
    # no duplicate tags
    lbas = [b.lba for b in resident]
    assert len(lbas) == len(set(lbas))
    # every block lives in its home set
    for block in resident:
        assert store.set_index(block.lba) < store.num_sets


@given(
    lbas=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300)
)
@settings(max_examples=40, deadline=None)
def test_store_insert_is_idempotent_on_occupancy(lbas):
    """Inserting the same set of addresses twice never grows occupancy."""
    store = CacheStore(64, associativity=8)
    for lba in lbas:
        store.insert(lba, 0.0)
    first = store.occupied
    for lba in lbas:
        store.insert(lba, 1.0)
    assert store.occupied <= first + 0  # idempotent w.r.t. residency count


# ---------------------------------------------------------------------------
# Device queue invariants
# ---------------------------------------------------------------------------

queue_ops = st.lists(
    st.tuples(
        st.sampled_from(["push_r", "push_w", "pop", "steal"]),
        st.integers(min_value=0, max_value=1000),
    ),
    max_size=150,
)


@given(ops=queue_ops, merge=st.sampled_from([0, 8, 32]))
@settings(max_examples=60, deadline=None)
def test_queue_conservation(ops, merge):
    """Every logical op is eventually accounted: merged + pending +
    dispatched + stolen == enqueued."""
    q = DeviceQueue("d", max_merge_blocks=merge)
    now = 0.0
    inflight = []
    for action, lba in ops:
        now += 1.0
        if action == "push_r":
            q.push(DeviceOp(lba, 1, is_write=False, tag=OpTag.READ), now)
        elif action == "push_w":
            q.push(DeviceOp(lba, 1, is_write=True, tag=OpTag.WRITE), now)
        elif action == "pop":
            op = q.pop_next(now)
            if op is not None:
                inflight.append(op)
        elif action == "steal":
            q.steal_tail(lba % 4, now)
        assert q.qsize == len(q.pending) + len(q.inflight)

    s = q.stats
    logical_pending = sum(1 + len(o.merged) for o in q.pending)
    logical_inflight = sum(1 + len(o.merged) for o in inflight)
    logical_stolen = s.stolen  # stolen counts physical ops
    # merged ops are absorbed, not lost
    assert (
        logical_pending + logical_inflight
        + sum(1 + len(o2.merged) for o2 in [])  # placeholder for clarity
        <= s.enqueued
    )
    assert s.dispatched == len(inflight)
    assert logical_pending + logical_inflight >= 0
    # physical conservation: pending + inflight + stolen + merged == enqueued
    assert len(q.pending) + len(inflight) + s.stolen + s.merged == s.enqueued


@given(
    n=st.integers(min_value=0, max_value=50),
    k=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=40, deadline=None)
def test_steal_tail_never_reorders_head(n, k):
    q = DeviceQueue("d", max_merge_blocks=0)
    for i in range(n):
        q.push(DeviceOp(i * 10, 1, is_write=True, tag=OpTag.WRITE), 0.0)
    q.steal_tail(k, 1.0)
    remaining = [o.lba for o in q.pending]
    assert remaining == sorted(remaining)
    assert remaining == [i * 10 for i in range(len(remaining))]


# ---------------------------------------------------------------------------
# Eq. 1 and classifier properties
# ---------------------------------------------------------------------------


@given(
    q1=st.integers(min_value=0, max_value=10_000),
    q2=st.integers(min_value=0, max_value=10_000),
    lat=st.floats(min_value=0.001, max_value=10_000.0),
)
def test_eq1_monotone_in_queue_size(q1, q2, lat):
    if q1 <= q2:
        assert eq1_queue_time(q1, lat) <= eq1_queue_time(q2, lat)


@given(
    r=st.integers(min_value=0, max_value=1000),
    w=st.integers(min_value=0, max_value=1000),
    p=st.integers(min_value=0, max_value=1000),
    e=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_classifier_total_and_membership(r, w, p, e):
    """The classifier always returns a defined group and the mix always
    normalizes to 1 (when non-empty)."""
    counts = Counter(
        {OpTag.READ: r, OpTag.WRITE: w, OpTag.PROMOTE: p, OpTag.EVICT: e}
    )
    mix = QueueMix.from_counts(counts)
    total = r + w + p + e
    assert mix.total == total
    if total:
        assert abs(mix.r + mix.w + mix.p + mix.e - 1.0) < 1e-9
    group = WorkloadCharacterizer().classify(mix)
    assert isinstance(group, WorkloadGroup)


@given(
    r=st.integers(min_value=0, max_value=100),
    w=st.integers(min_value=0, max_value=100),
    p=st.integers(min_value=0, max_value=100),
    e=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_classifier_scale_invariant(r, w, p, e):
    """Scaling all counts by a constant never changes the group."""
    clf = WorkloadCharacterizer()
    c1 = Counter({OpTag.READ: r, OpTag.WRITE: w, OpTag.PROMOTE: p, OpTag.EVICT: e})
    c2 = Counter(
        {OpTag.READ: 7 * r, OpTag.WRITE: 7 * w, OpTag.PROMOTE: 7 * p, OpTag.EVICT: 7 * e}
    )
    if sum(c1.values()) >= clf.config.min_queue_ops:
        assert clf.classify_counts(c1) == clf.classify_counts(c2)


# ---------------------------------------------------------------------------
# Simulator determinism
# ---------------------------------------------------------------------------


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
@settings(max_examples=40, deadline=None)
def test_simulator_order_is_deterministic(delays):
    def run_once():
        sim = Simulator()
        order = []
        for i, d in enumerate(delays):
            sim.schedule(d, order.append, i)
        sim.run()
        return order

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Datapath conservation: every request completes, under any policy schedule
# ---------------------------------------------------------------------------

request_script = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "policy_wb", "policy_wt", "policy_ro", "policy_wo"]),
        st.integers(min_value=0, max_value=500),
    ),
    min_size=1,
    max_size=80,
)


@given(script=request_script)
@settings(max_examples=40, deadline=None)
def test_controller_conservation_under_policy_churn(script):
    """Every submitted request completes exactly once, and the store's
    invariants hold, no matter how the write policy flips mid-stream."""
    from repro.cache.controller import CacheController
    from repro.cache.store import CacheStore
    from repro.cache.write_policy import WritePolicy
    from repro.devices.base import StorageDevice
    from repro.devices.hdd import HddConfig, HddModel
    from repro.devices.ssd import SsdConfig, SsdModel
    from repro.io.request import Request

    sim = Simulator()
    ssd = StorageDevice(sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)))
    hdd = StorageDevice(sim, "hdd", HddModel(HddConfig(jitter_sigma=0.0)))
    store = CacheStore(32, associativity=4)
    controller = CacheController(sim, ssd, hdd, store)
    completions: list[int] = []
    controller.add_completion_hook(lambda r: completions.append(r.req_id))

    submitted = []
    policies = {
        "policy_wb": WritePolicy.WB,
        "policy_wt": WritePolicy.WT,
        "policy_ro": WritePolicy.RO,
        "policy_wo": WritePolicy.WO,
    }
    for action, lba in script:
        if action in policies:
            controller.set_policy(policies[action])
            continue
        req = Request(sim.now, lba * 7, 1, is_write=(action == "write"))
        submitted.append(req)
        controller.submit(req)
    sim.run()

    assert all(r.done for r in submitted)
    assert sorted(completions) == sorted(r.req_id for r in submitted)
    assert len(completions) == len(set(completions))  # exactly once
    assert store.occupied <= store.capacity_blocks
    assert store.dirty_count <= store.occupied
