"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_targets_accepted(self):
        parser = build_parser()
        for target in ("fig4", "fig5", "fig6", "fig7", "headline", "ablation", "all"):
            args = parser.parse_args([target])
            assert args.target == target

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.workloads == ["tpcc", "mail", "web"]
        assert args.out is None
        assert not args.quick
        assert args.seed == 7

    def test_options(self):
        args = build_parser().parse_args(
            ["fig6", "--workloads", "mail", "--quick", "--seed", "3", "--out", "x"]
        )
        assert args.workloads == ["mail"]
        assert args.quick
        assert args.seed == 3
        assert args.out == "x"


class TestListWorkloads:
    def test_lists_every_registered_workload(self, capsys):
        from repro.experiments.system import WORKLOADS

        code = main(["--list-workloads"])
        out = capsys.readouterr().out
        assert code == 0
        for name in WORKLOADS:
            assert name in out
        # each line carries a real one-line description
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == len(WORKLOADS)
        assert all(len(l.split(None, 1)) == 2 for l in lines)

    def test_target_still_required_without_flag(self):
        with pytest.raises(SystemExit):
            main([])


class TestMain:
    def test_fig7_quick_single_workload(self, capsys, tmp_path):
        code = main(
            ["fig7", "--quick", "--quiet", "--workloads", "web", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fig7 shape checks" in out
        assert (tmp_path / "fig7.txt").exists()

    def test_fig6_quick(self, capsys):
        code = main(["fig6", "--quick", "--quiet", "--workloads", "web"])
        out = capsys.readouterr().out
        assert code == 0
        assert "policy assignments" in out

    def test_headline_quick(self, capsys):
        code = main(["headline", "--quick", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "headline claims" in out
