"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_targets_accepted(self):
        parser = build_parser()
        for target in ("fig4", "fig5", "fig6", "fig7", "headline", "ablation", "all"):
            args = parser.parse_args([target])
            assert args.target == target

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.workloads == ["tpcc", "mail", "web"]
        assert args.out is None
        assert not args.quick
        assert args.seed is None  # resolved to 7 in main()

    def test_options(self):
        args = build_parser().parse_args(
            ["fig6", "--workloads", "mail", "--quick", "--seed", "3", "--out", "x"]
        )
        assert args.workloads == ["mail"]
        assert args.quick
        assert args.seed == 3
        assert args.out == "x"


class TestListWorkloads:
    def test_lists_every_registered_workload(self, capsys):
        from repro.experiments.system import WORKLOADS

        code = main(["--list-workloads"])
        out = capsys.readouterr().out
        assert code == 0
        for name in WORKLOADS:
            assert name in out
        # each line carries a real one-line description
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == len(WORKLOADS)
        assert all(len(l.split(None, 1)) == 2 for l in lines)

    def test_target_still_required_without_flag(self):
        with pytest.raises(SystemExit):
            main([])


class TestMain:
    def test_fig7_quick_single_workload(self, capsys, tmp_path):
        code = main(
            ["fig7", "--quick", "--quiet", "--workloads", "web", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fig7 shape checks" in out
        assert (tmp_path / "fig7.txt").exists()

    def test_fig6_quick(self, capsys):
        code = main(["fig6", "--quick", "--quiet", "--workloads", "web"])
        out = capsys.readouterr().out
        assert code == 0
        assert "policy assignments" in out

    def test_headline_quick(self, capsys):
        code = main(["headline", "--quick", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "headline claims" in out


class TestScenarioFlags:
    def test_list_scenarios(self, capsys):
        from repro.scenario import SCENARIOS

        code = main(["--list-scenarios"])
        out = capsys.readouterr().out
        assert code == 0
        for name in SCENARIOS:
            assert name in out

    def test_dump_scenario_round_trips(self, capsys):
        import json

        from repro.scenario import ScenarioSpec, get_scenario

        code = main(["--dump-scenario", "consolidated3"])
        out = capsys.readouterr().out
        assert code == 0
        assert ScenarioSpec.from_dict(json.loads(out)) == get_scenario(
            "consolidated3"
        )

    def test_dump_unknown_scenario_fails(self, capsys):
        code = main(["--dump-scenario", "no_such"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown scenario" in err

    def test_scenario_file_runs(self, capsys, tmp_path):
        import json

        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli_smoke",
                    "workload": "web",
                    "scheme": "wb",
                    "base": "quick",
                    "horizon_intervals": 3,
                }
            )
        )
        code = main(["--scenario", str(path), "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "=== cli_smoke ===" in out
        assert "fingerprint:" in out

    def test_scenario_multi_tenant_prints_tenant_table(self, capsys, tmp_path):
        import json

        path = tmp_path / "mt.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli_mt",
                    "base": "quick",
                    "horizon_intervals": 8,
                    "workload": {
                        "name": "duo",
                        "tenants": [
                            {"workload": "web"},
                            {"workload": "tpcc", "rate_scale": 0.5},
                        ],
                    },
                }
            )
        )
        code = main(["--scenario", str(path), "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hit ratio" in out  # tenant table header

    def test_scenario_bad_file_fails(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "bogus": 1}')
        code = main(["--scenario", str(path), "--quiet"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown keys" in err

    def test_scenario_missing_file_fails(self, capsys, tmp_path):
        code = main(["--scenario", str(tmp_path / "nope.json"), "--quiet"])
        assert code == 2

    def test_unknown_workload_exits_2(self, capsys):
        code = main(["fig4", "--quick", "--workloads", "nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown workload" in err

    def test_vms_style_workload_name_accepted(self, capsys):
        code = main(["fig7", "--quick", "--quiet", "--workloads", "vms:web+web"])
        assert code == 0

    def test_vms_style_workload_with_bad_component_exits_2(self, capsys):
        code = main(["fig4", "--quick", "--workloads", "vms:nope+web"])
        err = capsys.readouterr().err
        assert code == 2
        assert "nope" in err

    def test_scenario_duplicate_sweep_names_exit_2(self, capsys, tmp_path):
        import json

        path = tmp_path / "dup.json"
        path.write_text(json.dumps({
            "name": "dup", "workload": "web", "base": "quick",
            "sweep": {"system.seed": [1, 1]},
        }))
        code = main(["--scenario", str(path), "--quiet"])
        err = capsys.readouterr().err
        assert code == 2
        assert "duplicate" in err

    def test_scenario_malformed_inline_workload_exits_2(self, capsys, tmp_path):
        import json

        path = tmp_path / "badwl.json"
        path.write_text(json.dumps({
            "name": "x", "base": "quick",
            "workload": {"name": "w", "phases": [{"label": "p"}]},
        }))
        code = main(["--scenario", str(path), "--quiet"])
        err = capsys.readouterr().err
        assert code == 2
        assert "badwl.json" in err

    def test_scenario_honors_quick_and_seed_flags(self, capsys, tmp_path):
        import json

        path = tmp_path / "paper_base.json"
        path.write_text(json.dumps({
            "name": "flags", "workload": "web", "scheme": "wb",
            "horizon_intervals": 3,
        }))  # base defaults to "paper"
        code = main(["--scenario", str(path), "--quick", "--seed", "11",
                     "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        # quick base + seed 11 produce a different run than paper/seed-7;
        # cheap sanity: the run completed at quick scale in 3 intervals
        assert "=== flags ===" in out

    def test_scenario_combined_with_target_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig4", "--scenario", str(tmp_path / "x.json")])
        with pytest.raises(SystemExit):
            main(["fig4", "--dump-scenario", "consolidated3"])
