"""Unit tests for metrics, series, reports, and ASCII plotting."""

import json
import math

import pytest

from repro.analysis.ascii_plot import ascii_bar_chart, ascii_line_chart
from repro.analysis.metrics import (
    LatencySummary,
    latency_summary,
    load_reduction,
    mean_over_intervals,
    percentile,
)
from repro.analysis.report import comparison_table, format_table
from repro.analysis.series import IntervalSeries, series_from_samples, write_series_csv
from repro.trace.iostat import IntervalSample


def sample(index=0, cache_qtime=100.0, disk_qtime=50.0, avg_latency=10.0):
    return IntervalSample(
        index=index,
        t_start=index * 100.0,
        t_end=(index + 1) * 100.0,
        ssd_qsize_max=5,
        ssd_qsize_avg=2.0,
        hdd_qsize_max=1,
        hdd_qsize_avg=0.5,
        ssd_latency=20.0,
        hdd_latency=50.0,
        cache_qtime=cache_qtime,
        disk_qtime=disk_qtime,
        completed=10,
        reads=6,
        writes=4,
        bypassed=0,
        avg_latency=avg_latency,
        max_latency=avg_latency * 3,
    )


class TestMetrics:
    def test_percentile(self):
        vals = list(range(1, 101))
        assert percentile(vals, 50) == pytest.approx(50.5)
        with pytest.raises(ValueError):
            percentile(vals, 101)

    def test_percentile_empty_is_nan(self):
        # an empty population has no percentiles: nan, not a fake 0.0
        # that would read as "zero latency" in reports
        assert math.isnan(percentile([], 50))
        assert math.isnan(percentile([], 99))

    def test_latency_summary(self):
        s = latency_summary([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.maximum == 4.0
        assert s.as_dict()["p50"] == pytest.approx(2.5)

    def test_latency_summary_empty(self):
        s = latency_summary([])
        assert s.count == 0
        assert s.mean == 0.0

    def test_latency_summary_from_dict_round_trip(self):
        s = latency_summary([1.0, 2.0, 3.0, 4.0, 100.0])
        assert LatencySummary.from_dict(s.as_dict()) == s
        # exact through a JSON round-trip too (how the run store uses it)
        assert LatencySummary.from_dict(json.loads(json.dumps(s.as_dict()))) == s

    def test_latency_summary_from_dict_strict(self):
        good = latency_summary([1.0, 2.0]).as_dict()
        with pytest.raises(ValueError):
            LatencySummary.from_dict("not a mapping")
        with pytest.raises(ValueError):
            LatencySummary.from_dict({**good, "extra": 1.0})
        missing = dict(good)
        missing.pop("p95")
        with pytest.raises(ValueError):
            LatencySummary.from_dict(missing)
        with pytest.raises(ValueError):
            LatencySummary.from_dict({**good, "count": 2.5})
        with pytest.raises(ValueError):
            LatencySummary.from_dict({**good, "count": -1})
        with pytest.raises(ValueError):
            LatencySummary.from_dict({**good, "mean": "fast"})

    def test_load_reduction(self):
        assert load_reduction([100.0] * 4, [50.0] * 4) == pytest.approx(0.5)
        assert load_reduction([0.0], [10.0]) == 0.0  # zero baseline guard
        # negative = treated is worse
        assert load_reduction([50.0], [100.0]) == pytest.approx(-1.0)

    def test_load_reduction_interval_subset(self):
        base = [100.0, 0.0, 100.0, 0.0]
        treat = [50.0, 0.0, 50.0, 0.0]
        assert load_reduction(base, treat, intervals=[0, 2]) == pytest.approx(0.5)

    def test_mean_over_intervals_out_of_range_raises(self):
        with pytest.raises(IndexError):
            mean_over_intervals([1.0, 2.0], intervals=[0, 5])

    def test_mean_over_intervals_negative_index_raises(self):
        with pytest.raises(IndexError):
            mean_over_intervals([1.0, 2.0], intervals=[-1])


class TestSeries:
    def test_from_samples(self):
        samples = [sample(i, cache_qtime=float(i)) for i in range(5)]
        series = series_from_samples(samples, "cache_qtime")
        assert series.values == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert series.mean == 2.0
        assert series.maximum == 4.0

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            series_from_samples([], "nope")

    def test_smoothing_preserves_length(self):
        series = IntervalSeries("s", [0.0, 10.0, 0.0, 10.0, 0.0])
        sm = series.smoothed(3)
        assert len(sm) == 5
        assert max(sm.values) < 10.0

    def test_restricted(self):
        series = IntervalSeries("s", [1.0, 2.0, 3.0])
        assert series.restricted([0, 2, 9]).values == [1.0, 3.0]

    def test_csv_round_trip(self, tmp_path):
        a = IntervalSeries("a", [1.0, 2.0])
        b = IntervalSeries("b", [3.0])
        path = tmp_path / "out.csv"
        write_series_csv(path, [a, b])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "interval,a,b"
        assert lines[1] == "0,1.000,3.000"
        assert lines[2] == "1,2.000,"

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "x.csv", [])


class TestAsciiPlots:
    def test_line_chart_renders(self):
        chart = ascii_line_chart(
            {"wb": [1.0, 5.0, 2.0], "lbica": [0.5, 1.0, 0.5]},
            title="t",
            width=30,
            height=8,
        )
        assert "t" in chart
        assert "*" in chart and "+" in chart
        assert "wb" in chart and "lbica" in chart

    def test_line_chart_validations(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": []})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [1.0]}, width=2)

    def test_bar_chart_renders(self):
        chart = ascii_bar_chart({"TPCC": {"WB": 100.0, "LBICA": 25.0}})
        assert "TPCC WB" in chart
        assert chart.count("#") > 0

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["x", 1.5], ["yy", 2]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "1.500" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_comparison_table(self):
        out = comparison_table({"m": ("30%", "44%", "direction holds")})
        assert "paper" in out and "44%" in out
