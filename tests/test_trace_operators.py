"""Tests for composable trace operators and their spec-facing registry."""

import pytest

from repro.io.request import OpTag
from repro.trace.operators import (
    OPERATORS,
    apply_operator_specs,
    compile_operator,
    interleave,
    lba_shift,
    operator_names,
    rate_multiply,
    slice_trace,
    time_compress,
)
from repro.trace.records import TraceRecord


def rec(time, lba=0, op_id=0, is_write=False):
    tag = OpTag.WRITE if is_write else OpTag.READ
    return TraceRecord(time, "ssd", "Q", tag, is_write, lba, 8, op_id)


RECS = [rec(0.0, lba=10, op_id=0), rec(100.0, lba=20, op_id=1), rec(200.0, lba=30, op_id=2)]


class TestTimeCompress:
    def test_divides_timestamps(self):
        assert [r.time for r in time_compress(RECS, 2.0)] == [0.0, 50.0, 100.0]

    def test_preserves_everything_else(self):
        out = list(time_compress(RECS, 4.0))
        assert [r.lba for r in out] == [10, 20, 30]
        assert [r.op_id for r in out] == [0, 1, 2]

    def test_invalid_factor_raises_eagerly(self):
        """Validation happens at the call, not at first next()."""
        with pytest.raises(ValueError):
            time_compress(RECS, 0)
        with pytest.raises(ValueError):
            time_compress(RECS, -1.0)


class TestRateMultiply:
    def test_interpolates_copies(self):
        out = [r.time for r in rate_multiply(RECS, 2)]
        assert out == [0.0, 50.0, 100.0, 150.0, 200.0, 200.0]

    def test_duration_preserved(self):
        out = list(rate_multiply(RECS, 4))
        assert len(out) == 12
        assert out[0].time == RECS[0].time
        assert out[-1].time == RECS[-1].time

    def test_factor_one_is_identity(self):
        assert list(rate_multiply(RECS, 1)) == RECS

    def test_empty_input(self):
        assert list(rate_multiply([], 3)) == []

    def test_unsorted_input_raises(self):
        bad = [rec(100.0), rec(50.0)]
        with pytest.raises(ValueError, match="time-sorted"):
            list(rate_multiply(bad, 2))

    def test_invalid_factor_raises_eagerly(self):
        with pytest.raises(ValueError):
            rate_multiply(RECS, 0)
        with pytest.raises(ValueError):
            rate_multiply(RECS, 1.5)


class TestSlice:
    def test_window(self):
        out = list(slice_trace(RECS, start_us=50.0, stop_us=200.0))
        assert [r.time for r in out] == [100.0]

    def test_rebase(self):
        out = list(slice_trace(RECS, start_us=100.0, rebase=True))
        assert [r.time for r in out] == [0.0, 100.0]

    def test_stops_at_first_past_stop(self):
        """Iteration must not consume the stream past the window."""
        consumed = []

        def source():
            for r in RECS:
                consumed.append(r.op_id)
                yield r

        list(slice_trace(source(), stop_us=100.0))
        assert consumed == [0, 1]  # op 2 never pulled

    def test_invalid_window_raises_eagerly(self):
        with pytest.raises(ValueError):
            slice_trace(RECS, start_us=100.0, stop_us=100.0)


class TestLbaShift:
    def test_shifts(self):
        assert [r.lba for r in lba_shift(RECS, 1000)] == [1010, 1020, 1030]

    def test_zero_is_identity(self):
        assert list(lba_shift(RECS, 0)) == RECS

    def test_negative_raises_eagerly(self):
        with pytest.raises(ValueError):
            lba_shift(RECS, -1)


class TestInterleave:
    def test_tags_stream_index_as_tenant(self):
        a = [rec(0.0, op_id=0), rec(20.0, op_id=1)]
        b = [rec(10.0, op_id=0), rec(30.0, op_id=1)]
        out = list(interleave([a, b]))
        assert [(r.time, tid) for r, tid in out] == [
            (0.0, 0),
            (10.0, 1),
            (20.0, 0),
            (30.0, 1),
        ]

    def test_ties_break_by_stream_index(self):
        a = [rec(5.0, op_id=0)]
        b = [rec(5.0, op_id=0)]
        out = list(interleave([b, a]))
        assert [tid for _, tid in out] == [0, 1]

    def test_deterministic(self):
        def streams():
            return [[rec(float(i * 3 + s)) for i in range(4)] for s in range(3)]

        assert list(interleave(streams())) == list(interleave(streams()))

    def test_single_stream(self):
        out = list(interleave([RECS]))
        assert [tid for _, tid in out] == [0, 0, 0]
        assert [r for r, _ in out] == RECS


class TestOperatorRegistry:
    def test_names(self):
        assert set(operator_names()) == set(OPERATORS)
        assert "time_compress" in operator_names()

    def test_compile_and_apply(self):
        transform = compile_operator({"op": "time_compress", "factor": 2.0})
        assert [r.time for r in transform(RECS)] == [0.0, 50.0, 100.0]

    def test_unknown_operator(self):
        with pytest.raises(ValueError, match="repro.trace.operators"):
            compile_operator({"op": "reverse"})

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            compile_operator({"op": "time_compress", "factor": 2.0, "speed": 9})

    def test_missing_required_parameter(self):
        with pytest.raises(ValueError, match="time_compress"):
            compile_operator({"op": "time_compress"})

    def test_non_mapping_spec(self):
        with pytest.raises(ValueError, match="'op' key"):
            compile_operator(["time_compress"])

    def test_apply_operator_specs_composes_in_order(self):
        out = list(
            apply_operator_specs(
                RECS,
                [
                    {"op": "time_compress", "factor": 2.0},
                    {"op": "slice", "stop_us": 100.0},
                    {"op": "lba_shift", "blocks": 5},
                ],
            )
        )
        assert [(r.time, r.lba) for r in out] == [(0.0, 15), (50.0, 25)]

    def test_pipeline_is_lazy(self):
        """Composed specs must not consume the stream until iterated."""
        pulled = []

        def source():
            for r in RECS:
                pulled.append(r.op_id)
                yield r

        stream = apply_operator_specs(source(), [{"op": "lba_shift", "blocks": 1}])
        assert pulled == []
        next(stream)
        assert pulled == [0]
