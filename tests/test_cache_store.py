"""Unit tests for the set-associative cache store and replacement policies."""

import pytest

from repro.cache.replacement import (
    ClockPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    make_replacement_policy,
)
from repro.cache.store import CacheStore


class TestConstruction:
    def test_geometry(self):
        store = CacheStore(64, associativity=8)
        assert store.num_sets == 8
        assert store.capacity_blocks == 64

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheStore(0)
        with pytest.raises(ValueError):
            CacheStore(10, associativity=3)
        with pytest.raises(ValueError):
            CacheStore(8, associativity=0)

    def test_unknown_replacement_rejected(self):
        with pytest.raises(ValueError):
            CacheStore(8, associativity=8, replacement="magic")


class TestLookupInsert:
    def test_miss_then_hit(self):
        store = CacheStore(64)
        assert store.lookup(5, 0.0) is None
        store.insert(5, 1.0)
        assert store.lookup(5, 2.0) is not None
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_peek_does_not_count(self):
        store = CacheStore(64)
        store.insert(5, 0.0)
        store.peek(5)
        store.peek(6)
        assert store.stats.lookups == 0

    def test_insert_existing_refreshes_in_place(self):
        store = CacheStore(64)
        store.insert(5, 0.0)
        block, eviction = store.insert(5, 1.0, dirty=True)
        assert eviction is None
        assert block.dirty
        assert store.occupied == 1
        assert store.dirty_count == 1

    def test_eviction_on_full_set(self):
        store = CacheStore(16, associativity=2)
        # lbas in the same set: lba % num_sets == const
        s = store.num_sets
        store.insert(0, 0.0)
        store.insert(s, 1.0)
        _, eviction = store.insert(2 * s, 2.0)
        assert eviction is not None
        assert eviction.lba == 0  # LRU
        assert not eviction.was_dirty
        assert store.occupied == 2

    def test_dirty_eviction_reported(self):
        store = CacheStore(16, associativity=2)
        s = store.num_sets
        store.insert(0, 0.0, dirty=True)
        store.insert(s, 1.0)
        _, eviction = store.insert(2 * s, 2.0)
        assert eviction.was_dirty
        assert store.stats.dirty_evictions == 1
        assert store.dirty_count == 0

    def test_lru_access_protects_block(self):
        store = CacheStore(16, associativity=2)
        s = store.num_sets
        store.insert(0, 0.0)
        store.insert(s, 1.0)
        store.lookup(0, 2.0)  # touch 0 → LRU victim is now s
        _, eviction = store.insert(2 * s, 3.0)
        assert eviction.lba == s


class TestInvalidate:
    def test_invalidate_resident(self):
        store = CacheStore(64)
        store.insert(7, 0.0, dirty=True)
        assert store.invalidate(7)
        assert 7 not in store
        assert store.dirty_count == 0
        assert store.stats.invalidations == 1

    def test_invalidate_absent_is_noop(self):
        store = CacheStore(64)
        assert not store.invalidate(9)


class TestDirtyTracking:
    def test_mark_dirty_and_clean(self):
        store = CacheStore(64)
        store.insert(3, 0.0)
        store.mark_dirty(3)
        assert store.dirty_count == 1
        store.mark_clean(3)
        assert store.dirty_count == 0

    def test_mark_on_absent_is_noop(self):
        store = CacheStore(64)
        store.mark_dirty(99)
        store.mark_clean(99)
        assert store.dirty_count == 0

    def test_double_mark_is_idempotent(self):
        store = CacheStore(64)
        store.insert(3, 0.0)
        store.mark_dirty(3)
        store.mark_dirty(3)
        assert store.dirty_count == 1

    def test_dirty_blocks_listing_with_limit(self):
        store = CacheStore(64)
        for lba in range(10):
            store.insert(lba, 0.0, dirty=(lba % 2 == 0))
        dirty = store.dirty_blocks()
        assert sorted(dirty) == [0, 2, 4, 6, 8]
        assert len(store.dirty_blocks(limit=2)) == 2

    def test_ratios(self):
        store = CacheStore(10, associativity=10)
        for lba in range(5):
            store.insert(lba, 0.0, dirty=True)
        assert store.occupancy == pytest.approx(0.5)
        assert store.dirty_ratio == pytest.approx(0.5)


class TestReplacementPolicies:
    def _fill_and_evict(self, policy_name):
        store = CacheStore(4, associativity=4, replacement=policy_name)
        for lba in range(0, 4):
            store.insert(lba * store.num_sets, float(lba))
        return store

    def test_factory_names(self):
        for name, cls in (
            ("lru", LruPolicy),
            ("fifo", FifoPolicy),
            ("clock", ClockPolicy),
            ("lfu", LfuPolicy),
        ):
            assert isinstance(make_replacement_policy(name), cls)

    def test_fifo_ignores_access(self):
        store = CacheStore(2, associativity=2, replacement="fifo")
        store.insert(0, 0.0)
        store.insert(2, 1.0)
        store.lookup(0, 2.0)  # access does not protect under FIFO
        _, eviction = store.insert(4, 3.0)
        assert eviction.lba == 0

    def test_lru_protects_accessed(self):
        store = CacheStore(2, associativity=2, replacement="lru")
        store.insert(0, 0.0)
        store.insert(2, 1.0)
        store.lookup(0, 2.0)
        _, eviction = store.insert(4, 3.0)
        assert eviction.lba == 2

    def test_clock_all_ref_set_evicts_first_scanned(self):
        # classic CLOCK: when every ref bit is set, the sweep clears them
        # all and the hand evicts where it started
        store = CacheStore(2, associativity=2, replacement="clock")
        store.insert(0, 0.0)
        store.insert(2, 1.0)
        _, eviction = store.insert(4, 3.0)
        assert eviction.lba == 0

    def test_clock_gives_second_chance(self):
        store = CacheStore(2, associativity=2, replacement="clock")
        store.insert(0, 0.0)
        store.insert(2, 1.0)
        # hand has passed block 2 (ref cleared); block 0 was just touched
        store.peek(2).ref = False
        store.lookup(0, 2.0)  # ref bit set on 0
        _, eviction = store.insert(4, 3.0)
        assert eviction.lba == 2

    def test_lfu_evicts_least_frequent(self):
        store = CacheStore(2, associativity=2, replacement="lfu")
        store.insert(0, 0.0)
        store.insert(2, 1.0)
        for t in range(5):
            store.lookup(0, 2.0 + t)
        _, eviction = store.insert(4, 10.0)
        assert eviction.lba == 2

    def test_all_policies_never_exceed_capacity(self):
        for name in ("lru", "fifo", "clock", "lfu"):
            store = CacheStore(16, associativity=4, replacement=name)
            for lba in range(200):
                store.insert(lba, float(lba))
            assert store.occupied <= 16
